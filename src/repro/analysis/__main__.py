"""Command-line entry point for replint (``python -m repro.analysis``)."""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Sequence

from . import ALL_RULES, error_count, lint_paths, render_human, render_json
from .framework import apply_baseline, load_baseline, write_baseline
from .rules_wire import write_schema


def _default_paths() -> list[str]:
    # Prefer the engine/server tree when run from a repo checkout; fixture
    # and test files exercise deliberate violations and are linted only by
    # their own test suite.
    for candidate in ("src/repro", "src"):
        if os.path.isdir(candidate):
            return [candidate]
    return ["."]


def _changed_paths() -> list[str] | None:
    """Python files modified/added per ``git status --porcelain``
    (``--changed`` mode); ``None`` when git is unavailable."""
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    out: list[str] = []
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        status, rest = line[:2], line[3:]
        if "D" in status:
            continue
        # Renames are reported as "old -> new"; lint the new path.
        if " -> " in rest:
            rest = rest.split(" -> ", 1)[1]
        path = rest.strip().strip('"')
        if path.endswith(".py") and os.path.exists(path):
            out.append(path)
    return sorted(set(out))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="replint: AST-based invariant checks for the repro tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files modified per `git status --porcelain` "
        "(pre-commit mode; positional paths are ignored)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in a baseline snapshot "
        "(rule+path+message identity, line-number free)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="snapshot the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--write-schema",
        metavar="PROTOCOL_PY",
        default=None,
        help="regenerate protocol_schema.json next to the given protocol module",
    )
    parser.add_argument(
        "--write-lock-graph",
        action="store_true",
        help="recompute the whole-program lock-order graph and write "
        "lock_graph.json (the runtime sentinel's rank table)",
    )
    return parser


def _write_lock_graph(paths: Sequence[str]) -> int:
    from .callgraph import CallGraph
    from .flow.lockgraph import ProgramLockAnalysis, default_lock_graph_path
    from .framework import collect_files

    files = collect_files(paths, root=os.getcwd())
    analysis = ProgramLockAnalysis(files, CallGraph.build(files))
    graph = analysis.lock_graph
    cycles = graph.cycles()
    if cycles:
        for cycle in cycles:
            print(f"replint: lock-order cycle: {' -> '.join(cycle)}",
                  file=sys.stderr)
        print("replint: refusing to write a cyclic lock graph "
              "(fix the cycle or extend the exemptions)", file=sys.stderr)
        return 1
    path = default_lock_graph_path()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph.render_json())
    print(f"replint: wrote {path} "
          f"({len(graph.nodes)} classes, {len(graph.order_edges())} edges)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  [{rule.severity}] "
                  f"{rule.name}: {rule.description}")
        return 0

    if args.write_schema is not None:
        try:
            schema_path = write_schema(args.write_schema)
        except (OSError, SyntaxError) as exc:
            print(f"replint: cannot write schema: {exc}", file=sys.stderr)
            return 2
        print(f"replint: wrote {schema_path}")
        return 0

    if args.write_lock_graph:
        return _write_lock_graph(
            list(args.paths) if args.paths else _default_paths())

    rules = ALL_RULES
    if args.rules:
        wanted = {code.strip().upper() for code in args.rules.split(",") if code.strip()}
        rules = tuple(rule for rule in ALL_RULES if rule.code in wanted)
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print(
                f"replint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    if args.changed:
        changed = _changed_paths()
        if changed is None:
            print("replint: --changed requires git", file=sys.stderr)
            return 2
        if not changed:
            print("replint: clean (no changed python files)")
            return 0
        paths = changed
    else:
        paths = list(args.paths) if args.paths else _default_paths()

    findings = lint_paths(paths, rules=rules)

    if args.write_baseline is not None:
        try:
            write_baseline(findings, args.write_baseline)
        except OSError as exc:
            print(f"replint: cannot write baseline: {exc}", file=sys.stderr)
            return 2
        print(f"replint: wrote {args.write_baseline} "
              f"({len(findings)} finding(s) recorded)")
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"replint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, baseline)

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings))
    # Warnings alone do not gate the build; only error-tier findings
    # (including PARSE failures) flip the exit code.
    return 1 if error_count(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
