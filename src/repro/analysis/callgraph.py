"""A deliberately simple name-based call graph for replint's lock rules.

The graph is built once per lint run and shared by RL001/RL002.  Edges are
resolved by name with three precision aids that match how the engine is
written (unique class names, conventional ``self`` receivers, locals
constructed in place):

- constructor calls (``_Parser(...)``) link to the class ``__init__``;
- ``self.method()`` links into the enclosing class;
- locals assigned from a constructor (``parser = _Parser(...)``) carry the
  class type, so ``parser.parse()`` resolves precisely;
- bare names prefer a same-module function before falling back globally;
- attribute calls on unknown receivers fall back to every known def of that
  name, except for method names shared with builtin containers (``get``,
  ``items``, ``append``...) which would drown the graph in false edges.

Lock state is tracked while the body of each function is walked: ``with
x.read_lock():`` / ``with x.write_lock():`` push an ``rwlock`` guard, ``with
x.read_latch(...):`` / ``x.write_latch(...):`` / ``x.ddl_latch():`` push a
``latch`` guard (the per-table latch hierarchy, see
``repro.engine.latches``), ``with x._lock:`` pushes a ``pool`` guard (the
BufferPool / PageFile / stats internal mutex convention), and every call
site records the guard stack held at that point.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

from .framework import SourceFile

RWLOCK_GUARD = "rwlock"
LATCH_GUARD = "latch"
POOL_GUARD = "pool"

#: ``with``-context method names that acquire statement latches.
#: ``catalog_latch`` is the MVCC reader guard (shared catalog, no table
#: latch — snapshot pins protect the pages); ``_mvcc_select_guard`` is
#: the SqlSession helper that resolves a SELECT plan to its statement
#: guard (catalog latch, index-plan table latch, or the parallel
#: coordinator's own brief all-table latch), so a ``with`` on it is a
#: statement guard by construction.
LATCH_METHODS = frozenset({"read_latch", "write_latch", "ddl_latch",
                           "catalog_latch", "_mvcc_select_guard"})

#: Method names that collide with builtin container/str/regex APIs; an
#: attribute call on an *unknown* receiver with one of these names is far more
#: likely a dict/list/str operation than an engine method, so no edge is made.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "discard",
        "encode",
        "endswith",
        "execute",
        "extend",
        "format",
        "get",
        "group",
        "index",
        "items",
        "join",
        "keys",
        "lower",
        "lstrip",
        "match",
        "open",
        "pop",
        "popleft",
        "put",
        "read",
        "remove",
        "replace",
        "rstrip",
        "search",
        "sort",
        "split",
        "splitlines",
        "startswith",
        "strip",
        "update",
        "upper",
        "values",
        "wait",
        "write",
    }
)


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str
    line: int
    col: int  # 1-based column of the call expression
    is_attr: bool
    receiver: str | None  # "self", a local variable name, or None
    receiver_class: str | None  # resolved class for typed receivers
    is_ctor: bool
    held: tuple[str, ...]  # guard kinds held lexically at the call site

    @property
    def guarded(self) -> bool:
        """Whether a statement-level guard (the coarse RWLock or a
        table-latch set) is held at this call site."""
        return RWLOCK_GUARD in self.held or LATCH_GUARD in self.held


@dataclasses.dataclass
class LockEvent:
    """A ``with``-statement lock acquisition inside a function body."""

    kind: str  # RWLOCK_GUARD, LATCH_GUARD or POOL_GUARD
    line: int
    col: int  # 1-based column of the context expression
    held_before: tuple[str, ...]
    detail: str  # source-ish description of the context expression


@dataclasses.dataclass
class FunctionInfo:
    """A module-level function or a direct class method."""

    path: str
    display_path: str
    module: str
    class_name: str | None
    name: str
    line: int
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    lock_events: list[LockEvent] = dataclasses.field(default_factory=list)

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def label(self) -> str:
        return f"{self.qualname} ({self.display_path}:{self.line})"

    @property
    def acquires_rwlock(self) -> bool:
        return any(event.kind == RWLOCK_GUARD for event in self.lock_events)

    @property
    def acquires_latch(self) -> bool:
        return any(event.kind == LATCH_GUARD for event in self.lock_events)


def _guard_kind(expr: ast.expr) -> tuple[str, str] | None:
    """Classify a ``with`` context expression as a lock guard, if it is one."""

    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in ("read_lock", "write_lock"):
            return RWLOCK_GUARD, expr.func.attr
        if expr.func.attr in LATCH_METHODS:
            return LATCH_GUARD, expr.func.attr
    if isinstance(expr, ast.Attribute) and expr.attr == "_lock":
        return POOL_GUARD, "._lock"
    return None


class _BodyWalker:
    """Walk a function body in statement order, tracking the guard stack."""

    def __init__(self, info: FunctionInfo, class_names: frozenset[str]) -> None:
        self.info = info
        self.class_names = class_names
        self.held: list[str] = []
        self.local_types: dict[str, str] = {}

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are analysed on their own terms
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._record_local_type(stmt)
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._expr(expr)
            elif isinstance(expr, ast.stmt):
                self._stmt(expr)
            elif isinstance(expr, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(expr):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._expr(sub)

    def _with(self, stmt: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in stmt.items:
            guard = _guard_kind(item.context_expr)
            self._expr(item.context_expr)
            if guard is not None:
                kind, detail = guard
                self.info.lock_events.append(
                    LockEvent(
                        kind=kind,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset + 1,
                        held_before=tuple(self.held),
                        detail=detail,
                    )
                )
                self.held.append(kind)
                pushed += 1
        self.walk(stmt.body)
        for _ in range(pushed):
            self.held.pop()

    def _record_local_type(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        value = stmt.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in self.class_names
        ):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = value.func.id

    def _expr(self, expr: ast.expr) -> None:
        if isinstance(expr, ast.Call):
            self._call(expr)
            for arg in expr.args:
                self._expr(arg)
            for kw in expr.keywords:
                self._expr(kw.value)
            return
        if isinstance(expr, ast.Lambda):
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _call(self, call: ast.Call) -> None:
        func = call.func
        held = tuple(self.held)
        if isinstance(func, ast.Name):
            self.info.calls.append(
                CallSite(
                    name=func.id,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    is_attr=False,
                    receiver=None,
                    receiver_class=None,
                    is_ctor=func.id in self.class_names,
                    held=held,
                )
            )
        elif isinstance(func, ast.Attribute):
            receiver: str | None = None
            receiver_class: str | None = None
            value = func.value
            if isinstance(value, ast.Name):
                receiver = value.id
                receiver_class = self.local_types.get(value.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in self.class_names
            ):
                receiver_class = value.func.id
            self._expr(value)
            self.info.calls.append(
                CallSite(
                    name=func.attr,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    is_attr=True,
                    receiver=receiver,
                    receiver_class=receiver_class,
                    is_ctor=False,
                    held=held,
                )
            )


class CallGraph:
    """All module-level functions and direct class methods, with call edges."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self.classes: dict[str, dict[str, FunctionInfo]] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}

    @classmethod
    def build(cls, files: Sequence[SourceFile]) -> "CallGraph":
        graph = cls()
        collected: list[tuple[FunctionInfo, ast.FunctionDef | ast.AsyncFunctionDef]] = []
        for source in files:
            if source.tree is None:
                continue
            module = source.display_path
            for node in source.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        path=source.path,
                        display_path=source.display_path,
                        module=module,
                        class_name=None,
                        name=node.name,
                        line=node.lineno,
                    )
                    graph._register(info)
                    collected.append((info, node))
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            info = FunctionInfo(
                                path=source.path,
                                display_path=source.display_path,
                                module=module,
                                class_name=node.name,
                                name=item.name,
                                line=item.lineno,
                            )
                            graph._register(info)
                            collected.append((info, item))
        class_names = frozenset(graph.classes)
        for info, node in collected:
            walker = _BodyWalker(info, class_names)
            walker.walk(node.body)
        return graph

    def _register(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self.by_name.setdefault(info.name, []).append(info)
        if info.class_name is not None:
            self.classes.setdefault(info.class_name, {})[info.name] = info
        else:
            self.module_functions[(info.module, info.name)] = info

    def resolve(self, call: CallSite, caller: FunctionInfo) -> list[FunctionInfo]:
        """Candidate callees for a call site; empty when unresolvable."""

        if call.is_ctor:
            methods = self.classes.get(call.name, {})
            init = methods.get("__init__")
            return [init] if init is not None else []
        if not call.is_attr:
            local = self.module_functions.get((caller.module, call.name))
            if local is not None:
                return [local]
            return [
                info
                for info in self.by_name.get(call.name, [])
                if info.class_name is None
            ]
        if call.receiver == "self" and caller.class_name is not None:
            method = self.classes.get(caller.class_name, {}).get(call.name)
            if method is not None:
                return [method]
            # self.<name>() with no such method: the attribute is a stored
            # callable or a subclass hook; fall through to global matching.
        if call.receiver_class is not None:
            method = self.classes.get(call.receiver_class, {}).get(call.name)
            return [method] if method is not None else []
        if call.name in AMBIGUOUS_METHOD_NAMES:
            return []
        return list(self.by_name.get(call.name, []))

    def iter_methods(self, class_name: str) -> Iterator[FunctionInfo]:
        yield from self.classes.get(class_name, {}).values()
