"""T-SQL-style surface: per-type function schemas and the array-notation
pre-parser.

The generated schemas are importable directly::

    from repro.tsql import FloatArray, FloatArrayMax, IntArray

    a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
    FloatArray.Item_1(a, 3)     # -> 4.0

See :data:`repro.tsql.namespaces.NAMESPACES` for the full registry and
:mod:`repro.tsql.parser` for the ``a[1:6, 2]`` syntactic sugar.
"""

from . import parser
from .mathfuncs import MATH_EXPORTS, attach_math_functions
from .namespaces import NAMESPACES, ArrayNamespace, FromString, namespace_for

__all__ = ["NAMESPACES", "ArrayNamespace", "namespace_for", "FromString",
           "parser", "MATH_EXPORTS", "attach_math_functions"] \
    + sorted(NAMESPACES)

# Export every generated schema (FloatArray, FloatArrayMax, IntArray,
# IntArrayMax, BigIntArray, ...) as a module attribute, mirroring the SQL
# schema names from the paper.
globals().update(NAMESPACES)
