"""Math-library UDFs on the T-SQL schemas (paper Section 5.3).

The paper exposes LAPACK and FFTW directly from T-SQL::

    DECLARE @ft VARBINARY(MAX)
    SET @ft = FloatArrayMax.FFTForward(@a)

This module attaches those functions to every floating/complex schema:

=================  =====================================================
Function           Meaning
=================  =====================================================
``FFTForward``     N-D forward DFT; returns a complex array blob
``FFTInverse``     Inverse DFT (complex input)
``PowerSpectrum``  ``|FFT|^2`` as a real array
``SvdValues``      Singular values of a matrix (``*gesvd``, values only)
``SvdU/SvdVT``     The U / V^T factors of the thin SVD
``Lstsq``          Least squares solve ``A x ~ b``
``MaskedLstsq``    Least squares over unmasked rows only
``Nnls``           Non-negative least squares (Lawson-Hanson)
``MatMul``         Matrix / matrix-vector product
``Transpose``      Matrix transpose
=================  =====================================================

Results follow the invoking schema's storage class; complex results go
to the matching complex schema's blob format (``FFTForward`` on
``FloatArray`` returns a ``ComplexArray`` blob, exactly as the native
library would hand back a complex buffer).

Integer schemas do not receive these functions — the paper's math layer
is floating-point only.
"""

from __future__ import annotations

from ..core import ops as _ops
from ..core.header import STORAGE_SHORT
from ..core.sqlarray import SqlArray
from ..mathlib import fftw as _fftw
from ..mathlib import lapack as _lapack
from ..mathlib.nnls import nnls_arrays as _nnls_arrays
from .namespaces import NAMESPACES, ArrayNamespace

__all__ = ["attach_math_functions", "MATH_EXPORTS"]

#: Math functions exported to SQL, with their argument counts.
MATH_EXPORTS = {
    "FFTForward": 1,
    "FFTInverse": 1,
    "PowerSpectrum": 1,
    "SvdValues": 1,
    "SvdU": 1,
    "SvdVT": 1,
    "Lstsq": 2,
    "MaskedLstsq": 3,
    "Nnls": 2,
    "NnlsResidual": 2,
    "MatMul": 2,
    "Transpose": 1,
}


def _attach(ns: ArrayNamespace) -> None:
    """Generate the math methods for one schema."""

    def out_same(arr: SqlArray) -> bytes:
        return ns._out(arr)

    def out_typed(arr: SqlArray) -> bytes:
        """Serialize keeping the result's own element type but this
        schema's storage class (complex results from real schemas)."""
        if arr.storage != ns.storage:
            arr = (_ops.to_short(arr) if ns.storage == STORAGE_SHORT
                   else _ops.to_max(arr))
        return arr.to_blob()

    def FFTForward(blob: bytes) -> bytes:
        """Forward DFT of the array; returns a complex array blob."""
        return out_typed(_fftw.fft_forward(ns._wrap(blob)))

    def FFTInverse(blob: bytes) -> bytes:
        """Inverse DFT (this schema must be complex)."""
        return out_typed(_fftw.fft_inverse(ns._wrap(blob)))

    def PowerSpectrum(blob: bytes) -> bytes:
        """``|FFT|^2`` as a float64 array blob."""
        return out_typed(_fftw.power_spectrum(ns._wrap(blob)))

    def SvdValues(blob: bytes) -> bytes:
        """Singular values of a matrix, descending (``*gesvd``)."""
        return out_typed(_lapack.svd_values(ns._wrap(blob)))

    def SvdU(blob: bytes) -> bytes:
        """U factor of the thin SVD."""
        u, _s, _vt = _lapack.gesvd(ns._wrap(blob))
        return out_typed(u)

    def SvdVT(blob: bytes) -> bytes:
        """V^T factor of the thin SVD."""
        _u, _s, vt = _lapack.gesvd(ns._wrap(blob))
        return out_typed(vt)

    def Lstsq(a: bytes, b: bytes) -> bytes:
        """Least squares solution of ``A x ~ b``."""
        return out_typed(_lapack.solve_lstsq(ns._wrap(a), ns._wrap(b)))

    def MaskedLstsq(a: bytes, b: bytes, mask: bytes) -> bytes:
        """Least squares restricted to rows with nonzero mask."""
        return out_typed(_lapack.masked_lstsq(
            ns._wrap(a), ns._wrap(b), SqlArray.from_blob(mask)))

    def Nnls(a: bytes, b: bytes) -> bytes:
        """Non-negative least squares solution vector."""
        x, _rnorm = _nnls_arrays(ns._wrap(a), ns._wrap(b))
        return out_typed(x)

    def NnlsResidual(a: bytes, b: bytes) -> float:
        """Residual 2-norm of the NNLS solution."""
        _x, rnorm = _nnls_arrays(ns._wrap(a), ns._wrap(b))
        return rnorm

    def MatMul(a: bytes, b: bytes) -> bytes:
        """Matrix (or matrix-vector) product."""
        return out_typed(_lapack.matmul(ns._wrap(a), ns._wrap(b)))

    def Transpose(blob: bytes) -> bytes:
        """Matrix transpose."""
        return out_same(_lapack.transpose(ns._wrap(blob)))

    local = locals()
    for name in MATH_EXPORTS:
        setattr(ns, name, local[name])


def attach_math_functions() -> list[str]:
    """Attach the math UDFs to every floating and complex schema.

    Returns the schema names that received them.  Idempotent.
    """
    attached = []
    for ns in NAMESPACES.values():
        if ns.dtype.is_integer:
            continue
        _attach(ns)
        attached.append(ns.name)
    return attached


# The schemas ship with the math layer attached, like the paper's
# library deploys its LAPACK/FFTW wrappers with the array assembly.
attach_math_functions()
