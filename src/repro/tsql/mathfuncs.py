"""Math-library UDFs on the T-SQL schemas (paper Section 5.3).

The paper exposes LAPACK and FFTW directly from T-SQL::

    DECLARE @ft VARBINARY(MAX)
    SET @ft = FloatArrayMax.FFTForward(@a)

This module attaches those functions to every floating/complex schema:

=================  =====================================================
Function           Meaning
=================  =====================================================
``FFTForward``     N-D forward DFT; returns a complex array blob
``FFTInverse``     Inverse DFT (complex input)
``PowerSpectrum``  ``|FFT|^2`` as a real array
``SvdValues``      Singular values of a matrix (``*gesvd``, values only)
``SvdU/SvdVT``     The U / V^T factors of the thin SVD
``Lstsq``          Least squares solve ``A x ~ b``
``MaskedLstsq``    Least squares over unmasked rows only
``Nnls``           Non-negative least squares (Lawson-Hanson)
``MatMul``         Matrix / matrix-vector product
``Transpose``      Matrix transpose
=================  =====================================================

Results follow the invoking schema's storage class; complex results go
to the matching complex schema's blob format (``FFTForward`` on
``FloatArray`` returns a ``ComplexArray`` blob, exactly as the native
library would hand back a complex buffer).

Integer schemas do not receive these functions — the paper's math layer
is floating-point only.
"""

from __future__ import annotations

import numpy as np

from ..core import ops as _ops
from ..core.header import STORAGE_SHORT, decode_header, encode_header
from ..core.sqlarray import SqlArray
from ..mathlib import fftw as _fftw
from ..mathlib import lapack as _lapack
from ..mathlib.nnls import nnls_arrays as _nnls_arrays
from .namespaces import (
    MAX_INDEX_N,
    MAX_VECTOR_N,
    NAMESPACES,
    ArrayNamespace,
    _as_int_vector,
)

__all__ = ["attach_math_functions", "attach_vector_kernels",
           "MATH_EXPORTS"]

#: Math functions exported to SQL, with their argument counts.
MATH_EXPORTS = {
    "FFTForward": 1,
    "FFTInverse": 1,
    "PowerSpectrum": 1,
    "SvdValues": 1,
    "SvdU": 1,
    "SvdVT": 1,
    "Lstsq": 2,
    "MaskedLstsq": 3,
    "Nnls": 2,
    "NnlsResidual": 2,
    "MatMul": 2,
    "Transpose": 1,
}


def _attach(ns: ArrayNamespace) -> None:
    """Generate the math methods for one schema."""

    def out_same(arr: SqlArray) -> bytes:
        return ns._out(arr)

    def out_typed(arr: SqlArray) -> bytes:
        """Serialize keeping the result's own element type but this
        schema's storage class (complex results from real schemas)."""
        if arr.storage != ns.storage:
            arr = (_ops.to_short(arr) if ns.storage == STORAGE_SHORT
                   else _ops.to_max(arr))
        return arr.to_blob()

    def FFTForward(blob: bytes) -> bytes:
        """Forward DFT of the array; returns a complex array blob."""
        return out_typed(_fftw.fft_forward(ns._wrap(blob)))

    def FFTInverse(blob: bytes) -> bytes:
        """Inverse DFT (this schema must be complex)."""
        return out_typed(_fftw.fft_inverse(ns._wrap(blob)))

    def PowerSpectrum(blob: bytes) -> bytes:
        """``|FFT|^2`` as a float64 array blob."""
        return out_typed(_fftw.power_spectrum(ns._wrap(blob)))

    def SvdValues(blob: bytes) -> bytes:
        """Singular values of a matrix, descending (``*gesvd``)."""
        return out_typed(_lapack.svd_values(ns._wrap(blob)))

    def SvdU(blob: bytes) -> bytes:
        """U factor of the thin SVD."""
        u, _s, _vt = _lapack.gesvd(ns._wrap(blob))
        return out_typed(u)

    def SvdVT(blob: bytes) -> bytes:
        """V^T factor of the thin SVD."""
        _u, _s, vt = _lapack.gesvd(ns._wrap(blob))
        return out_typed(vt)

    def Lstsq(a: bytes, b: bytes) -> bytes:
        """Least squares solution of ``A x ~ b``."""
        return out_typed(_lapack.solve_lstsq(ns._wrap(a), ns._wrap(b)))

    def MaskedLstsq(a: bytes, b: bytes, mask: bytes) -> bytes:
        """Least squares restricted to rows with nonzero mask."""
        return out_typed(_lapack.masked_lstsq(
            ns._wrap(a), ns._wrap(b), SqlArray.from_blob(mask)))

    def Nnls(a: bytes, b: bytes) -> bytes:
        """Non-negative least squares solution vector."""
        x, _rnorm = _nnls_arrays(ns._wrap(a), ns._wrap(b))
        return out_typed(x)

    def NnlsResidual(a: bytes, b: bytes) -> float:
        """Residual 2-norm of the NNLS solution."""
        _x, rnorm = _nnls_arrays(ns._wrap(a), ns._wrap(b))
        return rnorm

    def MatMul(a: bytes, b: bytes) -> bytes:
        """Matrix (or matrix-vector) product."""
        return out_typed(_lapack.matmul(ns._wrap(a), ns._wrap(b)))

    def Transpose(blob: bytes) -> bytes:
        """Matrix transpose."""
        return out_same(_lapack.transpose(ns._wrap(blob)))

    local = locals()
    for name in MATH_EXPORTS:
        fn = local[name]
        # Symbolic identity for cross-process plan pickling (see
        # repro.engine.parallel).
        fn._sql_schema = ns.name
        fn._sql_name = name
        setattr(ns, name, fn)


def _item_kernel(ns: ArrayNamespace, n_idx: int):
    """Batch kernel for ``Item_N``: one strided gather over a run of
    same-shape blobs instead of one header decode + frombuffer per row.

    Follows the :class:`~repro.engine.executor.ScalarUdf` kernel
    contract — it receives equal-length argument arrays with no NULL
    lanes and returns a length-n value array, or ``None`` to decline
    the batch (mixed shapes, type mismatches, out-of-bounds indices),
    in which case the executor falls back to the per-row function and
    its exact error semantics.
    """
    dt = np.dtype(ns.dtype.numpy_dtype).newbyteorder("<")

    def kernel(args):
        blobs, *index_args = args
        if blobs.dtype != object or not len(blobs):
            return None
        first = blobs[0]
        if type(first) is not bytes:
            return None
        try:
            header = decode_header(first)
        except Exception:
            return None
        if (header.dtype.code != ns.dtype.code
                or header.storage != ns.storage
                or header.rank != n_idx):
            return None
        length = len(first)
        if (length - header.data_offset) % dt.itemsize:
            return None
        prefix = first[:header.data_offset]
        for b in blobs:
            if (type(b) is not bytes or len(b) != length
                    or b[:header.data_offset] != prefix):
                return None
        n = len(blobs)
        flat = np.zeros(n, dtype=np.int64)
        stride = 1
        for a, dim in zip(index_args, header.shape):
            if a.dtype == object:
                try:
                    a = np.array([int(v) for v in a.tolist()],
                                 dtype=np.int64)
                except (TypeError, ValueError, OverflowError):
                    return None
            elif a.dtype.kind == "f":
                if not np.isfinite(a).all():
                    return None
                a = np.trunc(a).astype(np.int64)
            elif a.dtype.kind in "iu":
                a = a.astype(np.int64)
            else:
                return None
            if ((a < 0) | (a >= dim)).any():
                return None  # the per-row path raises BoundsError
            flat += a * stride
            stride *= dim
        raw = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        data = raw.reshape(n, length)[:, header.data_offset:]
        return data.view(dt)[np.arange(n), flat]

    return kernel


def _vector_kernel(ns: ArrayNamespace, n_values: int):
    """Batch kernel for ``Vector_N``: encode the shared header once and
    pack all n blobs from one ``(n, N)`` element matrix."""
    dt = np.dtype(ns.dtype.numpy_dtype).newbyteorder("<")

    def kernel(args):
        n = len(args[0])
        cols = []
        try:
            for a in args:
                if ns.dtype.is_integer:
                    # Per-element int() keeps the row path's truncation
                    # and out-of-range OverflowError semantics.
                    a = np.array([int(v) for v in a.tolist()], dtype=dt)
                elif a.dtype == object:
                    cast = complex if ns.dtype.is_complex else float
                    a = np.array([cast(v) for v in a.tolist()], dtype=dt)
                else:
                    a = a.astype(dt)
                cols.append(a)
        except Exception:
            return None
        head = encode_header(ns.storage, ns.dtype, (n_values,))
        data = np.ascontiguousarray(np.stack(cols, axis=1)).tobytes()
        step = n_values * dt.itemsize
        out = np.empty(n, dtype=object)
        for i in range(n):
            out[i] = head + data[i * step:(i + 1) * step]
        return out

    return kernel


def _subarray_kernel(ns: ArrayNamespace):
    """Batch kernel for ``Subarray``: when a run of rows shares one
    array shape and one (offset, size, collapse) window — the common
    "slice the same band out of every spectrum" query — decode the
    window's flat element positions once and gather them from all rows
    with a single fancy index, instead of decode + slice + re-encode
    per row.

    The per-row function is still run once, on the first row, and its
    output is compared byte-for-byte against the gathered result; any
    disagreement (or any irregularity in the batch: mixed shapes,
    differing windows, non-blob cells) declines the batch and the
    executor falls back to the exact per-row path.
    """
    dt = np.dtype(ns.dtype.numpy_dtype).newbyteorder("<")

    def uniform_blob(col):
        """The single bytes value a column holds, or None if mixed."""
        if col.dtype != object or not len(col):
            return None
        value = col[0]
        if type(value) is not bytes:
            return None
        for item in col:
            if item != value:
                return None
        return value

    def kernel(args):
        if len(args) not in (3, 4):
            return None
        blobs = args[0]
        if blobs.dtype != object or not len(blobs):
            return None
        first = blobs[0]
        if type(first) is not bytes:
            return None
        try:
            header = decode_header(first)
        except Exception:
            return None
        if (header.dtype.code != ns.dtype.code
                or header.storage != ns.storage):
            return None
        length = len(first)
        if (length - header.data_offset) % dt.itemsize:
            return None
        prefix = first[:header.data_offset]
        for b in blobs:
            if (type(b) is not bytes or len(b) != length
                    or b[:header.data_offset] != prefix):
                return None
        off_blob = uniform_blob(args[1])
        size_blob = uniform_blob(args[2])
        if off_blob is None or size_blob is None:
            return None
        collapse = 0
        if len(args) == 4:
            flags = args[3].tolist()
            if any(f != flags[0] for f in flags[1:]):
                return None
            try:
                collapse = int(flags[0])
            except (TypeError, ValueError):
                return None
        try:
            reference = ArrayNamespace.Subarray(
                ns, first, off_blob, size_blob, collapse)
            offsets = _as_int_vector(off_blob, "offset")
            sizes = _as_int_vector(size_blob, "size")
        except Exception:
            return None  # per-row path raises the canonical error
        if len(offsets) != len(header.shape) or \
                len(sizes) != len(offsets):
            return None
        count = 1
        for dim in header.shape:
            count *= dim
        grid = np.arange(count, dtype=np.int64).reshape(
            header.shape, order="F")
        try:
            window = grid[tuple(slice(o, o + s)
                                for o, s in zip(offsets, sizes))]
        except Exception:
            return None
        flat = window.reshape(-1, order="F")
        n = len(blobs)
        raw = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        elems = raw.reshape(n, length)[:, header.data_offset:].view(dt)
        gathered = np.ascontiguousarray(elems[:, flat])
        step = flat.size * dt.itemsize
        out_header = reference[:len(reference) - step]
        data = gathered.tobytes()
        if out_header + data[:step] != reference:
            return None  # layout surprise: trust the per-row path
        out = np.empty(n, dtype=object)
        out[0] = reference
        for i in range(1, n):
            out[i] = out_header + data[i * step:(i + 1) * step]
        return out

    return kernel


def _instance_subarray(ns: ArrayNamespace):
    """A per-instance ``Subarray`` wrapper that can carry a batch
    kernel (bound methods reject attribute assignment) and a symbolic
    identity for cross-process plan pickling."""

    def Subarray(blob, offset, size, collapse=0):
        return ArrayNamespace.Subarray(ns, blob, offset, size, collapse)

    Subarray.__name__ = "Subarray"
    Subarray.__doc__ = ArrayNamespace.Subarray.__doc__
    Subarray._sql_schema = ns.name
    Subarray._sql_name = "Subarray"
    Subarray.vectorized = _subarray_kernel(ns)
    return Subarray


def attach_vector_kernels() -> list[str]:
    """Attach batch kernels to every schema's ``Item_N``/``Vector_N``
    and ``Subarray``.

    :class:`~repro.engine.executor.ScalarUdf` discovers the kernels via
    the callables' ``vectorized`` attribute, so SQL queries using these
    functions run columnar under the vector engine.  Returns the schema
    names touched.  Idempotent.
    """
    attached = []
    for ns in NAMESPACES.values():
        for n in range(1, MAX_INDEX_N + 1):
            getattr(ns, f"Item_{n}").vectorized = _item_kernel(ns, n)
        for n in range(1, MAX_VECTOR_N + 1):
            getattr(ns, f"Vector_{n}").vectorized = _vector_kernel(ns, n)
        ns.Subarray = _instance_subarray(ns)
        attached.append(ns.name)
    return attached


def attach_math_functions() -> list[str]:
    """Attach the math UDFs to every floating and complex schema.

    Returns the schema names that received them.  Idempotent.
    """
    attached = []
    for ns in NAMESPACES.values():
        if ns.dtype.is_integer:
            continue
        _attach(ns)
        attached.append(ns.name)
    return attached


# The schemas ship with the math layer attached, like the paper's
# library deploys its LAPACK/FFTW wrappers with the array assembly.
attach_math_functions()
attach_vector_kernels()
