"""Array-notation pre-parser — the syntactic sugar the paper asks for.

Section 8 of the paper concludes that "a syntactic sugar to T-SQL and a
pre-parser would be desirable that translates a special flavor of SQL
designed for array notation to standard T-SQL with function calls".
This module implements that pre-parser for the expression language:

=====================  ==============================================
Array expression       Translation
=====================  ==============================================
``a[3]``               ``FloatArray.Item_1(@a, 3)``
``m[1, 0]``            ``FloatArray.Item_2(@m, 1, 0)``
``a[1:6]``             ``FloatArray.Subarray(@a, Vector(1), Vector(5))``
``c[0:5, 2:4, 1:2]``   ``...Subarray(@c, Vector(0,2,1), Vector(5,2,1))``
``a[2] := 4.5``        ``FloatArray.UpdateItem_1(@a, 2, 4.5)``
``a + b``, ``a * 2``   ``Add`` / ``Scale`` calls
``sum(a)``, ``dot(a, b)``  aggregate / product calls
=====================  ==============================================

Slices use Python-style half-open ``start:stop`` bounds.  The parser both
*translates* (producing the T-SQL call text, so it can be used as a
pre-processor in front of a SQL connection) and *evaluates* (against an
environment of named blobs, so the sugar also works directly in Python).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from ..core import ops as _ops
from ..core.errors import ArrayError
from ..core.sqlarray import SqlArray

__all__ = ["ArrayExpressionError", "parse", "evaluate", "translate"]


class ArrayExpressionError(ArrayError):
    """Raised for syntax or evaluation errors in array expressions."""


_TOKEN_RE = re.compile(r"""
    (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
              |\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<assign>:=)
  | (?P<op>[\[\]():,+\-*/])
  | (?P<ws>\s+)
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ArrayExpressionError(
                f"unexpected character {text[pos]!r} at position {pos}")
        kind = m.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


# -- AST ------------------------------------------------------------------


@dataclass(frozen=True)
class _Num:
    value: float | int


@dataclass(frozen=True)
class _Var:
    name: str


@dataclass(frozen=True)
class _Index:
    target: "_Node"
    indices: tuple  # ints/_Node for items; (lo, hi) tuples for slices


@dataclass(frozen=True)
class _Bin:
    op: str
    left: "_Node"
    right: "_Node"


@dataclass(frozen=True)
class _Neg:
    operand: "_Node"


@dataclass(frozen=True)
class _Call:
    func: str
    args: tuple


@dataclass(frozen=True)
class _Assign:
    target: _Index
    value: "_Node"


_Node = object


class _Parser:
    """Recursive-descent parser for the array expression grammar."""

    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._i = 0

    def _peek(self) -> _Token:
        return self._tokens[self._i]

    def _next(self) -> _Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def _expect(self, text: str) -> _Token:
        tok = self._next()
        if tok.text != text:
            raise ArrayExpressionError(
                f"expected {text!r} at position {tok.pos}, "
                f"got {tok.text!r}")
        return tok

    def parse(self) -> _Node:
        node = self._expr()
        if self._peek().kind == "assign":
            if not isinstance(node, _Index) or any(
                    isinstance(i, tuple) for i in node.indices):
                raise ArrayExpressionError(
                    "only item references (a[i, j]) can be assigned")
            self._next()
            value = self._expr()
            node = _Assign(node, value)
        tok = self._peek()
        if tok.kind != "eof":
            raise ArrayExpressionError(
                f"unexpected {tok.text!r} at position {tok.pos}")
        return node

    def _expr(self) -> _Node:
        node = self._term()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            node = _Bin(op, node, self._term())
        return node

    def _term(self) -> _Node:
        node = self._unary()
        while self._peek().text in ("*", "/"):
            op = self._next().text
            node = _Bin(op, node, self._unary())
        return node

    def _unary(self) -> _Node:
        if self._peek().text == "-":
            self._next()
            return _Neg(self._unary())
        return self._postfix()

    def _postfix(self) -> _Node:
        node = self._primary()
        while self._peek().text == "[":
            self._next()
            indices = [self._index_part()]
            while self._peek().text == ",":
                self._next()
                indices.append(self._index_part())
            self._expect("]")
            node = _Index(node, tuple(indices))
        return node

    def _index_part(self):
        lo = self._expr()
        if self._peek().text == ":":
            self._next()
            hi = self._expr()
            return (lo, hi)
        return lo

    def _primary(self) -> _Node:
        tok = self._next()
        if tok.kind == "number":
            text = tok.text
            value = float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
            return _Num(value)
        if tok.kind == "name":
            if self._peek().text == "(":
                self._next()
                args = []
                if self._peek().text != ")":
                    args.append(self._expr())
                    while self._peek().text == ",":
                        self._next()
                        args.append(self._expr())
                self._expect(")")
                return _Call(tok.text.lower(), tuple(args))
            return _Var(tok.text)
        if tok.text == "(":
            node = self._expr()
            self._expect(")")
            return node
        raise ArrayExpressionError(
            f"unexpected {tok.text!r} at position {tok.pos}")


def parse(text: str) -> _Node:
    """Parse an array expression into an AST (mostly useful for tests
    and for :func:`translate`)."""
    return _Parser(text).parse()


# -- evaluation -------------------------------------------------------------


_AGG_FUNCS = {"sum", "mean", "min", "max", "std"}


def _eval(node: _Node, env: dict):
    if isinstance(node, _Num):
        return node.value
    if isinstance(node, _Var):
        try:
            value = env[node.name]
        except KeyError:
            raise ArrayExpressionError(f"unknown name {node.name!r}")
        if isinstance(value, (bytes, bytearray)):
            return SqlArray.from_blob(value)
        return value
    if isinstance(node, _Neg):
        operand = _eval(node.operand, env)
        if isinstance(operand, SqlArray):
            return _ops.negate(operand)
        return -operand
    if isinstance(node, _Bin):
        left = _eval(node.left, env)
        right = _eval(node.right, env)
        return _apply_bin(node.op, left, right)
    if isinstance(node, _Index):
        target = _eval(node.target, env)
        if not isinstance(target, SqlArray):
            raise ArrayExpressionError("indexing a non-array value")
        return _apply_index(target, node.indices, env)
    if isinstance(node, _Call):
        args = [_eval(a, env) for a in node.args]
        return _apply_call(node.func, args)
    if isinstance(node, _Assign):
        target = _eval(node.target.target, env)
        if not isinstance(target, SqlArray):
            raise ArrayExpressionError("assigning into a non-array value")
        indices = [int(_eval(i, env)) for i in node.target.indices]
        value = _eval(node.value, env)
        return _ops.update_item(target, indices, value)
    raise ArrayExpressionError(f"cannot evaluate node {node!r}")


def _apply_index(target: SqlArray, indices, env):
    has_slice = any(isinstance(i, tuple) for i in indices)
    if not has_slice:
        return _ops.item(target, *[int(_eval(i, env)) for i in indices])
    offsets, sizes = [], []
    for part in indices:
        if isinstance(part, tuple):
            lo = int(_eval(part[0], env))
            hi = int(_eval(part[1], env))
            if hi <= lo:
                raise ArrayExpressionError(
                    f"empty slice [{lo}:{hi}] in subarray expression")
            offsets.append(lo)
            sizes.append(hi - lo)
        else:
            offsets.append(int(_eval(part, env)))
            sizes.append(1)
    # Mixed item/slice indexing collapses the singleton dimensions, the
    # way the paper retrieves matrix columns.
    return _ops.subarray(target, offsets, sizes, collapse=has_slice and
                         any(s == 1 for s in sizes))


def _apply_bin(op: str, left, right):
    both_arrays = isinstance(left, SqlArray) and isinstance(right, SqlArray)
    if both_arrays:
        table = {"+": _ops.add, "-": _ops.subtract, "*": _ops.multiply,
                 "/": _ops.divide}
        return table[op](left, right)
    if isinstance(left, SqlArray) or isinstance(right, SqlArray):
        arr, scalar = ((left, right) if isinstance(left, SqlArray)
                       else (right, left))
        if op == "+":
            return _ops.shift(arr, scalar)
        if op == "*":
            return _ops.scale(arr, scalar)
        if op == "-":
            if isinstance(left, SqlArray):
                return _ops.shift(arr, -scalar)
            return _ops.shift(_ops.negate(arr), scalar)
        if op == "/":
            if isinstance(left, SqlArray):
                return _ops.scale(arr, 1.0 / scalar)
            raise ArrayExpressionError("scalar / array is not defined")
    table = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
             "*": lambda a, b: a * b, "/": lambda a, b: a / b}
    return table[op](left, right)


def _apply_call(func: str, args):
    if func in _AGG_FUNCS:
        if len(args) != 1 or not isinstance(args[0], SqlArray):
            raise ArrayExpressionError(f"{func}() takes one array argument")
        return _ops.aggregate_all(args[0], func)
    if func == "dot":
        if len(args) != 2:
            raise ArrayExpressionError("dot() takes two array arguments")
        return _ops.dot(args[0], args[1])
    if func == "reshape":
        if len(args) < 2 or not isinstance(args[0], SqlArray):
            raise ArrayExpressionError(
                "reshape() takes an array and dimension sizes")
        return _ops.reshape(args[0], [int(a) for a in args[1:]])
    raise ArrayExpressionError(f"unknown function {func!r}")


def evaluate(text: str, env: dict):
    """Evaluate an array expression against named values.

    ``env`` maps names to blobs (``bytes``), :class:`SqlArray` values, or
    scalars.  Returns a scalar or a :class:`SqlArray`.
    """
    return _eval(parse(text), env)


# -- translation to T-SQL ------------------------------------------------------


def _schema_of(env_types: dict, name: str) -> str:
    try:
        return env_types[name]
    except KeyError:
        raise ArrayExpressionError(
            f"no declared schema for variable {name!r}")


def _translate(node: _Node, env_types: dict) -> tuple[str, str | None]:
    """Return ``(sql_text, schema)`` where schema is the array schema the
    expression produces, or None for scalars."""
    if isinstance(node, _Num):
        return repr(node.value), None
    if isinstance(node, _Var):
        schema = env_types.get(node.name)
        return f"@{node.name}", schema
    if isinstance(node, _Neg):
        text, schema = _translate(node.operand, env_types)
        if schema:
            return f"{schema}.Scale({text}, -1)", schema
        return f"-{text}", None
    if isinstance(node, _Index):
        target_text, schema = _translate(node.target, env_types)
        if schema is None:
            raise ArrayExpressionError("indexing a scalar expression")
        has_slice = any(isinstance(i, tuple) for i in node.indices)
        if not has_slice:
            parts = [_translate(i, env_types)[0] for i in node.indices]
            n = len(parts)
            return (f"{schema}.Item_{n}({target_text}, "
                    f"{', '.join(parts)})", None)
        offsets, sizes = [], []
        for part in node.indices:
            if isinstance(part, tuple):
                lo = _translate(part[0], env_types)[0]
                hi = _translate(part[1], env_types)[0]
                offsets.append(lo)
                sizes.append(f"{hi} - {lo}")
            else:
                offsets.append(_translate(part, env_types)[0])
                sizes.append("1")
        n = len(offsets)
        off = f"IntArray.Vector_{n}({', '.join(offsets)})"
        size = f"IntArray.Vector_{n}({', '.join(sizes)})"
        return (f"{schema}.Subarray({target_text}, {off}, {size}, 1)",
                schema)
    if isinstance(node, _Bin):
        lt, ls = _translate(node.left, env_types)
        rt, rs = _translate(node.right, env_types)
        if ls and rs:
            name = {"+": "Add", "-": "Subtract", "*": "Multiply",
                    "/": "Divide"}[node.op]
            return f"{ls}.{name}({lt}, {rt})", ls
        if ls or rs:
            schema = ls or rs
            arr, scal = (lt, rt) if ls else (rt, lt)
            if node.op == "*":
                return f"{schema}.Scale({arr}, {scal})", schema
            if node.op == "/" and ls:
                return f"{schema}.Scale({arr}, 1.0 / ({scal}))", schema
            raise ArrayExpressionError(
                f"array {node.op} scalar has no single-call translation; "
                "rewrite with Scale/Shift")
        return f"({lt} {node.op} {rt})", None
    if isinstance(node, _Call):
        args = [_translate(a, env_types) for a in node.args]
        if node.func in _AGG_FUNCS:
            text, schema = args[0]
            if schema is None:
                raise ArrayExpressionError(
                    f"{node.func}() takes an array argument")
            return f"{schema}.{node.func.capitalize()}({text})", None
        if node.func == "dot":
            (at, aschema), (bt, _bs) = args
            return f"{aschema}.Dot({at}, {bt})", None
        if node.func == "reshape":
            (at, aschema), *dims = args
            n = len(dims)
            vec = f"IntArray.Vector_{n}({', '.join(d[0] for d in dims)})"
            return f"{aschema}.Reshape({at}, {vec})", aschema
        raise ArrayExpressionError(f"unknown function {node.func!r}")
    if isinstance(node, _Assign):
        target_text, schema = _translate(node.target.target, env_types)
        parts = [_translate(i, env_types)[0] for i in node.target.indices]
        value_text, _ = _translate(node.value, env_types)
        n = len(parts)
        return (f"{schema}.UpdateItem_{n}({target_text}, "
                f"{', '.join(parts)}, {value_text})", schema)
    raise ArrayExpressionError(f"cannot translate node {node!r}")


def translate(text: str, schemas: dict[str, str]) -> str:
    """Translate an array expression to T-SQL function-call text.

    ``schemas`` declares the array schema of each variable, e.g.
    ``{"a": "FloatArray", "m": "FloatArrayMax"}``; variables not listed
    are treated as scalars.

    >>> translate("m[1, 0]", {"m": "FloatArray"})
    'FloatArray.Item_2(@m, 1, 0)'
    """
    sql, _schema = _translate(parse(text), schemas)
    return sql
