"""The T-SQL-style function surface.

The paper organizes its functions "under separate schemas by underlying
data-type and storage class ... Functions acting on short (on-page)
arrays of type INT are under the schema ``IntArray``, the ones acting on
max arrays (out-of-page) are under ``IntArrayMax``" (Section 5.1), and —
because SQL Server UDFs cannot take a variable number of parameters —
many functions "have numbered versions (denoted with an underscore and a
number) accepting a certain number of parameters".

This module generates those schemas.  Each schema is an
:class:`ArrayNamespace` whose methods take and return binary blobs
(``bytes``) and plain scalars, exactly like the ``VARBINARY`` values the
T-SQL functions exchange::

    from repro.tsql import FloatArray, IntArray

    a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
    FloatArray.Item_1(a, 3)                     # -> 4.0
    m = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4)
    FloatArray.Item_2(m, 1, 0)                  # -> 0.2 (column major)
    b = FloatArray.Subarray(a, IntArray.Vector_1(1),
                            IntArray.Vector_1(3), 0)

One namespace pair (short + max) exists per element type, produced from
the dtype registry — the Python equivalent of the paper's per-type
C++/CLI template instantiation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core import aggregates as _agg
from ..core import ops as _ops
from ..core.dtypes import ALL_DTYPES, INT32, ArrayDType
from ..core.errors import ShapeError
from ..core.header import STORAGE_MAX, STORAGE_SHORT
from ..core.sqlarray import SqlArray

__all__ = ["ArrayNamespace", "NAMESPACES", "namespace_for", "FromString"]

#: Highest N for which Vector_N / Item_N / UpdateItem_N ... variants are
#: generated.  The paper generates fixed numbered variants because T-SQL
#: lacks varargs; six matches the short-array index limit.
MAX_VECTOR_N = 10
MAX_MATRIX_N = 4
MAX_INDEX_N = 6


def _as_int_vector(blob: bytes, what: str) -> list[int]:
    """Decode an integer vector argument (the paper passes offsets and
    sizes as ``IntArray`` vectors)."""
    arr = SqlArray.from_blob(blob)
    if arr.rank != 1 or not arr.dtype.is_integer:
        raise ShapeError(f"{what} must be a one-dimensional integer array")
    return [int(v) for v in arr.to_numpy()]


class ArrayNamespace:
    """One T-SQL schema: all array functions for one element type and
    one storage class.

    Instances are available as module attributes of :mod:`repro.tsql`
    (``FloatArray``, ``FloatArrayMax``, ``IntArray``, ...) and in the
    :data:`NAMESPACES` registry.
    """

    def __init__(self, dtype: ArrayDType, storage: int):
        self.dtype = dtype
        self.storage = storage
        suffix = "" if storage == STORAGE_SHORT else "Max"
        self.name = dtype.schema_name + suffix

    def __repr__(self) -> str:
        return f"<schema {self.name}>"

    # -- internal helpers -------------------------------------------------

    def _wrap(self, blob: bytes) -> SqlArray:
        """Decode a blob and enforce this schema's type and storage class
        (the runtime mismatch checks of paper Section 3.5)."""
        arr = SqlArray.from_blob(blob)
        arr.require_dtype(self.dtype)
        arr.require_storage(self.storage)
        return arr

    def _out(self, arr: SqlArray) -> bytes:
        """Serialize a result in this schema's type and storage class."""
        if arr.dtype.code != self.dtype.code:
            arr = _ops.convert(arr, self.dtype)
        if arr.storage != self.storage:
            arr = (_ops.to_short(arr) if self.storage == STORAGE_SHORT
                   else _ops.to_max(arr))
        return arr.to_blob()

    def _scalar(self, value):
        """Coerce a scalar argument to this schema's element kind."""
        if self.dtype.is_complex:
            return complex(value)
        if self.dtype.is_integer:
            return int(value)
        return float(value)

    # -- construction ------------------------------------------------------

    def Vector(self, values) -> bytes:
        """Create a vector from any sequence of scalars (varargs-free
        convenience the T-SQL side lacks)."""
        return self._out(SqlArray.from_values(
            [self._scalar(v) for v in values], self.dtype, self.storage))

    def Matrix(self, values, rows: int, cols: int) -> bytes:
        """Create a ``rows x cols`` matrix from scalars listed in
        column-major order."""
        arr = np.array([self._scalar(v) for v in values],
                       dtype=self.dtype.numpy_dtype)
        if arr.size != rows * cols:
            raise ShapeError(
                f"{arr.size} elements cannot fill a {rows}x{cols} matrix")
        return self._out(SqlArray.from_numpy(
            arr.reshape((rows, cols), order="F"), self.dtype, self.storage))

    def Zeros(self, *dims: int) -> bytes:
        """Create a zero-filled array of the given dimension sizes."""
        return self._out(SqlArray.zeros(
            [int(d) for d in dims], self.dtype, self.storage))

    def Fill(self, value, *dims: int) -> bytes:
        """Create an array of the given dimension sizes filled with
        ``value``."""
        return self._out(SqlArray.filled(
            [int(d) for d in dims], self._scalar(value), self.dtype,
            self.storage))

    # -- shape introspection ------------------------------------------------

    def Rank(self, blob: bytes) -> int:
        """Number of dimensions."""
        return self._wrap(blob).rank

    def Count(self, blob: bytes) -> int:
        """Total number of elements."""
        return self._wrap(blob).count

    def DimSize(self, blob: bytes, axis: int) -> int:
        """Size of one dimension."""
        arr = self._wrap(blob)
        axis = int(axis)
        if not 0 <= axis < arr.rank:
            from ..core.errors import BoundsError
            raise BoundsError(f"axis {axis} out of range for rank {arr.rank}")
        return arr.shape[axis]

    def Dims(self, blob: bytes) -> bytes:
        """Dimension sizes as an ``IntArray`` vector (the "simple T-SQL
        interface to access the dimensions/sizes" requirement)."""
        arr = self._wrap(blob)
        return SqlArray.from_values(arr.shape, INT32,
                                    STORAGE_SHORT).to_blob()

    # -- element and window access -------------------------------------------

    def Item(self, blob: bytes, indices: bytes):
        """Read one element addressed by an ``IntArray`` index vector
        (the any-rank variant of ``Item_k``)."""
        arr = self._wrap(blob)
        return _ops.item(arr, *_as_int_vector(indices, "index"))

    def UpdateItem(self, blob: bytes, indices: bytes, value) -> bytes:
        """Replace one element addressed by an index vector."""
        arr = self._wrap(blob)
        return self._out(_ops.update_item(
            arr, _as_int_vector(indices, "index"), self._scalar(value)))

    def Subarray(self, blob: bytes, offset: bytes, size: bytes,
                 collapse: int = 0) -> bytes:
        """Extract a contiguous window; ``offset`` and ``size`` are
        ``IntArray`` vectors and ``collapse`` drops length-1 dimensions
        when nonzero (paper Section 5.1)."""
        arr = self._wrap(blob)
        return self._out(_ops.subarray(
            arr, _as_int_vector(offset, "offset"),
            _as_int_vector(size, "size"), bool(collapse)))

    def Reshape(self, blob: bytes, dims: bytes) -> bytes:
        """Recast dimensions without changing the element count or
        order."""
        arr = self._wrap(blob)
        return self._out(_ops.reshape(arr, _as_int_vector(dims, "dims")))

    # -- raw binary and string conversion -------------------------------------

    def Raw(self, blob: bytes) -> bytes:
        """Strip the header; return bare column-major elements."""
        return _ops.raw(self._wrap(blob))

    def Cast(self, raw: bytes, dims: bytes) -> bytes:
        """Prefix raw consecutive numbers with a header so they can be
        treated as an array of this schema's type."""
        shape = _as_int_vector(dims, "dims")
        return self._out(_ops.cast_raw(raw, self.dtype, shape, self.storage))

    def ToString(self, blob: bytes) -> str:
        """Render as an array literal string."""
        return _ops.to_string(self._wrap(blob))

    def ToShort(self, blob: bytes) -> bytes:
        """Convert to the short (on-page) storage class."""
        arr = SqlArray.from_blob(blob)
        arr.require_dtype(self.dtype)
        return _ops.to_short(arr).to_blob()

    def ToMax(self, blob: bytes) -> bytes:
        """Convert to the max (out-of-page) storage class."""
        arr = SqlArray.from_blob(blob)
        arr.require_dtype(self.dtype)
        return _ops.to_max(arr).to_blob()

    def ConvertTo(self, blob: bytes, type_name: str) -> bytes:
        """Convert the element type (e.g. ``'float32'``, ``'bigint'``),
        keeping this storage class."""
        arr = self._wrap(blob)
        out = _ops.convert(arr, type_name)
        if self.storage == STORAGE_SHORT:
            out = _ops.to_short(out)
        else:
            out = _ops.to_max(out)
        return out.to_blob()

    # -- table conversion -------------------------------------------------------

    def ToTable(self, blob: bytes) -> Iterator[tuple]:
        """Yield ``(i0, ..., value)`` rows — the table-valued function."""
        return _ops.to_table(self._wrap(blob))

    def Concat(self, rows, dims: bytes) -> bytes:
        """Assemble an array from ``(index_vector_blob, value)`` rows —
        the reader-based table-to-array conversion the paper recommends
        over the UDA (Section 4.2).

        Regular inputs (every index blob the same shape/type, in-range
        indices, no duplicates) are assembled with one bulk decode and
        a single scatter; anything irregular falls back to the per-row
        reader and its exact error semantics.
        """
        shape = _as_int_vector(dims, "dims")
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        fast = self._concat_vectorized(rows, shape)
        if fast is not None:
            return fast

        def decoded():
            for index_blob, value in rows:
                yield _as_int_vector(index_blob, "row index"), value

        return self._out(_agg.concat_reader(decoded(), shape, self.dtype))

    def _concat_vectorized(self, rows, shape) -> bytes | None:
        """Bulk Concat over a regular row set; None declines to the
        per-row reader."""
        from ..core.header import decode_header

        if not rows or not shape:
            return None
        first = rows[0]
        if not (isinstance(first, (tuple, list)) and len(first) == 2):
            return None
        first_idx = first[0]
        if type(first_idx) is not bytes:
            return None
        try:
            header = decode_header(first_idx)
        except Exception:
            return None
        if (header.rank != 1 or not header.dtype.is_integer
                or tuple(header.shape) != (len(shape),)):
            return None
        idt = np.dtype(header.dtype.numpy_dtype).newbyteorder("<")
        length = len(first_idx)
        prefix = first_idx[:header.data_offset]
        if length - header.data_offset != len(shape) * idt.itemsize:
            return None
        blobs = []
        values = []
        for row in rows:
            if not (isinstance(row, (tuple, list)) and len(row) == 2):
                return None
            index_blob, value = row
            if (type(index_blob) is not bytes
                    or len(index_blob) != length
                    or index_blob[:header.data_offset] != prefix):
                return None
            blobs.append(index_blob)
            values.append(value)
        raw = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        idx = raw.reshape(len(blobs), length)[:, header.data_offset:] \
            .view(idt).astype(np.int64)
        dims_arr = np.array(shape, dtype=np.int64)
        if ((idx < 0) | (idx >= dims_arr)).any():
            return None  # the reader raises the canonical BoundsError
        flat = np.ravel_multi_index(tuple(idx.T), tuple(shape),
                                    order="F")
        if len(np.unique(flat)) != len(flat):
            # Duplicate cells: sequential accumulation is last-write-
            # wins, which a single scatter does not guarantee.
            return None
        try:
            vals = np.asarray(values).astype(self.dtype.numpy_dtype,
                                             casting="unsafe")
        except Exception:
            return None
        total = int(np.prod(dims_arr))
        cells = np.zeros(total, dtype=self.dtype.numpy_dtype)
        cells[flat] = vals
        return self._out(SqlArray.from_numpy(
            cells.reshape(tuple(shape), order="F"), self.dtype))

    # -- aggregates and arithmetic ------------------------------------------------

    def Sum(self, blob: bytes):
        """Sum of all elements."""
        return _ops.aggregate_all(self._wrap(blob), "sum")

    def Mean(self, blob: bytes):
        """Mean of all elements."""
        return _ops.aggregate_all(self._wrap(blob), "mean")

    def Min(self, blob: bytes):
        """Minimum element."""
        return _ops.aggregate_all(self._wrap(blob), "min")

    def Max(self, blob: bytes):
        """Maximum element."""
        return _ops.aggregate_all(self._wrap(blob), "max")

    def Std(self, blob: bytes):
        """Population standard deviation of all elements."""
        return _ops.aggregate_all(self._wrap(blob), "std")

    def SumAxis(self, blob: bytes, axis: int) -> bytes:
        """Sum over one dimension (Section 2.2's "summation over certain
        axes")."""
        return self._out(_ops.aggregate_axis(self._wrap(blob), "sum",
                                             int(axis)))

    def MeanAxis(self, blob: bytes, axis: int) -> bytes:
        """Mean over one dimension."""
        return self._out(_ops.aggregate_axis(self._wrap(blob), "mean",
                                             int(axis)))

    def Add(self, a: bytes, b: bytes) -> bytes:
        """Element-wise sum of two same-shape arrays."""
        return self._out(_ops.add(self._wrap(a), self._wrap(b)))

    def Subtract(self, a: bytes, b: bytes) -> bytes:
        """Element-wise difference."""
        return self._out(_ops.subtract(self._wrap(a), self._wrap(b)))

    def Multiply(self, a: bytes, b: bytes) -> bytes:
        """Element-wise product."""
        return self._out(_ops.multiply(self._wrap(a), self._wrap(b)))

    def Divide(self, a: bytes, b: bytes) -> bytes:
        """Element-wise division."""
        return self._out(_ops.divide(self._wrap(a), self._wrap(b)))

    def Scale(self, blob: bytes, factor) -> bytes:
        """Multiply every element by a scalar."""
        return self._out(_ops.scale(self._wrap(blob), self._scalar(factor)))

    def Dot(self, a: bytes, b: bytes):
        """Dot product of two vectors."""
        return _ops.dot(self._wrap(a), self._wrap(b))


def _attach_numbered_variants(ns: ArrayNamespace) -> None:
    """Generate the ``_N`` function variants the paper describes.

    ``Vector_N`` takes N scalars; ``Matrix_N`` takes N*N scalars for an
    N-by-N matrix ("the Matrix_2 function creates a 2-by-2 matrix from
    the listed four elements"); ``Item_N`` / ``UpdateItem_N`` take N
    separate index arguments; ``Zeros_N`` / ``Fill_N`` take N dimension
    sizes.
    """

    def make_vector(n):
        def vector(*values):
            if len(values) != n:
                raise ShapeError(f"Vector_{n} takes exactly {n} values, "
                                 f"got {len(values)}")
            return ns.Vector(values)
        vector.__name__ = f"Vector_{n}"
        vector.__doc__ = f"Create a {n}-element vector from {n} scalars."
        return vector

    def make_matrix(n):
        def matrix(*values):
            if len(values) != n * n:
                raise ShapeError(f"Matrix_{n} takes exactly {n * n} "
                                 f"values, got {len(values)}")
            return ns.Matrix(values, n, n)
        matrix.__name__ = f"Matrix_{n}"
        matrix.__doc__ = (f"Create a {n}-by-{n} matrix from {n * n} "
                          "scalars in column-major order.")
        return matrix

    def make_item(n):
        def item(blob, *indices):
            if len(indices) != n:
                raise ShapeError(f"Item_{n} takes exactly {n} indices, "
                                 f"got {len(indices)}")
            return _ops.item(ns._wrap(blob), *[int(i) for i in indices])
        item.__name__ = f"Item_{n}"
        item.__doc__ = f"Read one element of a {n}-dimensional array."
        return item

    def make_update(n):
        def update_item(blob, *args):
            if len(args) != n + 1:
                raise ShapeError(f"UpdateItem_{n} takes {n} indices and a "
                                 f"value, got {len(args)} arguments")
            *indices, value = args
            return ns._out(_ops.update_item(
                ns._wrap(blob), [int(i) for i in indices],
                ns._scalar(value)))
        update_item.__name__ = f"UpdateItem_{n}"
        update_item.__doc__ = (f"Replace one element of a {n}-dimensional "
                               "array; returns the new blob.")
        return update_item

    def make_zeros(n):
        def zeros(*dims):
            if len(dims) != n:
                raise ShapeError(f"Zeros_{n} takes exactly {n} dimension "
                                 f"sizes, got {len(dims)}")
            return ns.Zeros(*dims)
        zeros.__name__ = f"Zeros_{n}"
        zeros.__doc__ = f"Create a zero-filled {n}-dimensional array."
        return zeros

    def make_fill(n):
        def fill(value, *dims):
            if len(dims) != n:
                raise ShapeError(f"Fill_{n} takes a value and {n} "
                                 f"dimension sizes, got {len(dims)} sizes")
            return ns.Fill(value, *dims)
        fill.__name__ = f"Fill_{n}"
        fill.__doc__ = (f"Create a {n}-dimensional array filled with a "
                        "constant.")
        return fill

    def attach(fn):
        # Symbolic identity for cross-process plan pickling: the
        # parallel engine ships closures as (schema, name) pairs and
        # re-resolves them in the worker (see repro.engine.parallel).
        fn._sql_schema = ns.name
        fn._sql_name = fn.__name__
        setattr(ns, fn.__name__, fn)

    for n in range(1, MAX_VECTOR_N + 1):
        attach(make_vector(n))
    for n in range(1, MAX_MATRIX_N + 1):
        attach(make_matrix(n))
    for n in range(1, MAX_INDEX_N + 1):
        attach(make_item(n))
        attach(make_update(n))
        attach(make_zeros(n))
        attach(make_fill(n))


def _build_namespaces() -> dict[str, ArrayNamespace]:
    spaces = {}
    for dtype in ALL_DTYPES:
        for storage in (STORAGE_SHORT, STORAGE_MAX):
            ns = ArrayNamespace(dtype, storage)
            _attach_numbered_variants(ns)
            spaces[ns.name] = ns
    return spaces


#: Registry of every generated schema, keyed by schema name
#: (``"FloatArray"``, ``"FloatArrayMax"``, ``"IntArray"``, ...).
NAMESPACES = _build_namespaces()


def namespace_for(dtype: ArrayDType | str, storage: int) -> ArrayNamespace:
    """Look up the schema for an element type and storage class."""
    from ..core.dtypes import dtype_by_name
    adt = dtype_by_name(dtype) if isinstance(dtype, str) else dtype
    suffix = "" if storage == STORAGE_SHORT else "Max"
    return NAMESPACES[adt.schema_name + suffix]


def FromString(text: str) -> bytes:
    """Parse an array literal (the element type is in the literal, so
    this lives outside the per-type schemas)."""
    return _ops.from_string(text).to_blob()
