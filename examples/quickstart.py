#!/usr/bin/env python
"""Quickstart: the array library in five minutes.

Covers the requirements list from Section 1 of the paper: creating
arrays, reading dimensions, extracting items and subsets, aggregates,
reshape, math-library calls, and the same operations through a real SQL
interface (SQLite UDFs).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SqlArray, ops
from repro.mathlib import fft_forward, fft_inverse, gesvd
from repro.sqlbind import connect
from repro.tsql import FloatArray, FloatArrayMax, IntArray


def main():
    print("=== 1. Creating arrays (T-SQL style) ===")
    # DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1, 2, 3, 4, 5)
    a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
    print("Vector_5       ->", FloatArray.ToString(a))
    # SELECT FloatArray.Item_1(@a, 3)
    print("Item_1(a, 3)   ->", FloatArray.Item_1(a, 3))

    m = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4)
    print("Matrix_2       ->", FloatArray.ToString(m))
    print("Item_2(m, 1,0) ->", FloatArray.Item_2(m, 1, 0),
          "(column-major, like LAPACK)")

    print("\n=== 2. Dimensions, subsets, aggregates ===")
    cube = SqlArray.from_numpy(
        np.arange(6 * 6 * 6, dtype="f8").reshape(6, 6, 6)).to_blob()
    print("Rank:", FloatArrayMax.Rank(FloatArray.ToMax(cube)),
          " Dims:", IntArray.ToString(FloatArray.Dims(cube)))
    window = FloatArray.Subarray(cube, IntArray.Vector_3(1, 1, 1),
                                 IntArray.Vector_3(2, 2, 2), 0)
    print("2x2x2 window sum:", FloatArray.Sum(window))
    print("Mean over axis 0 ->",
          FloatArray.ToString(FloatArray.MeanAxis(window, 0)))

    print("\n=== 3. Reshape / raw / string round trips ===")
    v = FloatArray.Vector_6(*range(6))
    m23 = FloatArray.Reshape(v, IntArray.Vector_2(2, 3))
    print("reshape(v, 2x3) ->", FloatArray.ToString(m23))
    raw = FloatArray.Raw(v)
    print("Raw() strips the 24-byte header:", len(raw), "bytes")
    back = FloatArray.Cast(raw, IntArray.Vector_1(6))
    assert back == v

    print("\n=== 4. Math library support (Section 3.6) ===")
    matrix = SqlArray.from_numpy(
        np.random.default_rng(0).standard_normal((5, 3)))
    u, s, vt = gesvd(matrix)
    print("gesvd singular values:", np.round(s.to_numpy(), 3))
    signal = SqlArray.from_numpy(np.sin(np.linspace(0, 8 * np.pi, 64)))
    spectrum = fft_forward(signal)
    peak = int(np.argmax(np.abs(spectrum.to_numpy()[:32])))
    print(f"FFT peak at mode {peak} (expected 4)")
    roundtrip = fft_inverse(spectrum).to_numpy().real
    print("FFT round-trip error:",
          float(np.abs(roundtrip - signal.to_numpy()).max()))

    print("\n=== 5. The same arrays in SQL (SQLite binding) ===")
    conn = connect()
    conn.execute("CREATE TABLE obs (id INTEGER PRIMARY KEY, v BLOB)")
    rng = np.random.default_rng(1)
    for i in range(100):
        conn.execute("INSERT INTO obs VALUES (?, ?)",
                     (i, conn.store_array(rng.standard_normal(5))))
    total, biggest = conn.execute(
        "SELECT SUM(FloatArray_Item_1(v, 0)), MAX(FloatArray_Max(v)) "
        "FROM obs").fetchone()
    print(f"SUM of first components over 100 rows: {total:.3f}")
    print(f"Largest element anywhere: {biggest:.3f}")
    avg = conn.execute("SELECT FloatArray_AvgAgg(v) FROM obs").fetchone()[0]
    print("Element-wise average vector:",
          np.round(conn.load_array(avg), 3))

    print("\n=== 6. Array-notation sugar (the Section 8 pre-parser) ===")
    from repro.tsql.parser import evaluate, translate
    env = {"a": a, "m": m}
    print("evaluate('sum(a[1:4]) / 3') ->",
          evaluate("sum(a[1:4]) / 3", env))
    print("translate('m[1, 0]')        ->",
          translate("m[1, 0]", {"m": "FloatArray"}))

    print("\nDone.")


if __name__ == "__main__":
    main()
