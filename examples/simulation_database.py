#!/usr/bin/env python
"""Simulation databases end to end: the storage plans of Sections 2.1
and 2.3 working together.

* A multi-snapshot turbulence series with queries at arbitrary
  positions *and times* (the public JHU-style service), plus
  sub-domain grabs reassembled from partial blob reads.
* The N-body particle database: z-order bucket rows of array blobs in
  SQLite, spatial box retrieval touching only overlapping buckets, and
  per-particle trajectory extraction across snapshots.

Run:  python examples/simulation_database.py
"""

import numpy as np

from repro.science.nbody import ParticleDatabase, ZeldovichSimulation
from repro.science.turbulence import (
    BlobPartitioner,
    SnapshotSeries,
    TemporalQueryService,
    extract_subdomain,
    make_field,
)
from repro.sqlbind import connect


def turbulence_part():
    print("=== Turbulence: time-dependent service + sub-domain grabs "
          "===")
    series = SnapshotSeries(BlobPartitioner(32, 16, 4))
    for step in range(5):
        series.add_snapshot(0.5 * step, make_field(32, seed=step))
    print(f"stored {series.n_snapshots} snapshots at times "
          f"{series.times}")

    svc = TemporalQueryService(series, kernel="lagrange6",
                               time_interp="pchip")
    rng = np.random.default_rng(0)
    box = series.store_at(0).box_size
    positions = rng.random((500, 3)) * box
    times = rng.uniform(0.0, 2.0, 500)
    velocities, stats = svc.query(positions, times)
    print(f"interpolated {stats.particles} (position, time) pairs; "
          f"read {stats.bytes_read / 1e6:.2f} MB "
          f"(whole blobs: {stats.full_blob_bytes / 1e6:.1f} MB)")

    data, sstats = extract_subdomain(series.store_at(2),
                                     (4, 8, 2), (28, 24, 30))
    print(f"sub-domain grab {data.shape[1:]} voxels x "
          f"{data.shape[0]} components: {sstats.blobs_opened} blobs, "
          f"{sstats.bytes_read / 1024:.0f} kB read "
          f"({sstats.savings_factor:.1f}x less than full blobs)")


def mhd_part():
    print("\n=== MHD snapshot: 8 components per voxel ===")
    from repro.science.turbulence import (BlobPartitioner,
                                          MemoryBlobBackend,
                                          ParticleQueryService,
                                          TurbulenceStore,
                                          make_mhd_field)
    field = make_mhd_field(16, seed=8)
    store = TurbulenceStore(BlobPartitioner(16, 8, 4),
                            MemoryBlobBackend())
    store.load_field(field)
    svc = ParticleQueryService(store, "lagrange4")
    pos = np.random.default_rng(2).random((100, 3)) * field.box_size
    values, _stats = svc.query(pos, n_components=8)
    names = ["u", "v", "w", "p", "Bx", "By", "Bz", "pB"]
    rms = " ".join(f"{n}={values[:, i].std():.2f}"
                   for i, n in enumerate(names))
    print(f"  interpolated all 8 MHD components; rms: {rms}")


def nbody_part():
    print("\n=== N-body: bucketed particle database in SQLite ===")
    conn = connect()
    pdb = ParticleDatabase(conn, cells_per_axis=4)
    for sim_id in (0, 1):
        sim = ZeldovichSimulation(particles_per_axis=14, box_size=100.0,
                                  spectral_index=-3.0, seed=sim_id,
                                  sim_id=sim_id)
        for step, growth in enumerate([1.0, 1.5, 2.0, 2.5]):
            pdb.store_snapshot(sim.snapshot(growth, step=step))
    n_rows = conn.execute(
        "SELECT COUNT(*) FROM particle_buckets").fetchone()[0]
    n_particles = conn.execute(
        "SELECT SUM(BigIntArray_Count(ids)) FROM particle_buckets"
    ).fetchone()[0]
    print(f"{n_rows} bucket rows hold {n_particles} particle records "
          "(2 simulations x 4 snapshots)")

    lo, hi = (20.0, 20.0, 20.0), (60.0, 60.0, 60.0)
    ids, pos, _vel = pdb.particles_in_box(0, 3, lo, hi)
    touched = pdb.buckets_touched_by_box(0, 3, lo, hi)
    print(f"box query: {len(ids)} particles from {touched} of "
          f"{pdb.bucket_count(0, 3)} buckets")

    steps, track = pdb.particle_track(0, 777)
    diff = np.abs(track[-1] - track[0])
    diff = np.minimum(diff, 100.0 - diff)  # minimum image on the torus
    print(f"particle 777 tracked over steps "
          f"{[int(s) for s in steps]}; comoving drift "
          f"{np.linalg.norm(diff):.2f}")

    # The bucket blobs are ordinary SQL arrays: aggregate in SQL.
    mean_speed = conn.execute(
        "SELECT AVG(FloatArray_Max(vel)) FROM particle_buckets "
        "WHERE sim = 0 AND step = 3").fetchone()[0]
    print(f"SQL-side aggregate over velocity arrays: "
          f"AVG(max component) = {mean_speed:.3f}")


def main():
    turbulence_part()
    mhd_part()
    nbody_part()


if __name__ == "__main__":
    main()
