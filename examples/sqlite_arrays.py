#!/usr/bin/env python
"""Arrays inside a real SQL engine: the SQLite binding in depth.

Demonstrates the whole T-SQL surface of the paper running as SQLite
UDFs: per-type schemas, construction, subsetting, updates, aggregates
(including the ``Concat`` UDA and ``GROUP BY`` composites), string
literals, and partial reads of stored arrays through incremental blob
handles.

Run:  python examples/sqlite_arrays.py
"""

import numpy as np

from repro.core.partial import read_subarray
from repro.sqlbind import connect


def main():
    conn = connect()
    print(f"Registered {conn.registered_functions} array UDFs on the "
          "connection\n")

    print("=== Per-type schemas, like the paper's "
          "IntArray / FloatArray / ...Max ===")
    for expr in [
            "FloatArray_ToString(FloatArray_Vector_3(1.5, 2.5, 3.5))",
            "IntArray_ToString(IntArray_Vector_4(1, 2, 3, 4))",
            "BigIntArray_Sum(BigIntArray_Vector_2(10000000000, 1))",
            "TinyIntArray_ToString(TinyIntArray_Vector_3(1, 2, 3))",
    ]:
        print(f"  {expr}\n    -> "
              f"{conn.execute('SELECT ' + expr).fetchone()[0]}")

    print("\n=== The paper's Subarray example, in SQL ===")
    conn.execute("CREATE TABLE cubes (id INTEGER PRIMARY KEY, a BLOB)")
    conn.execute("INSERT INTO cubes VALUES (1, ?)",
                 (conn.store_array(np.arange(10 ** 3, dtype="f8")
                                   .reshape(10, 10, 10)),))
    row = conn.execute(
        "SELECT FloatArrayMax_Subarray(FloatArray_ToMax(a), "
        "IntArray_Vector_3(1, 4, 4), IntArray_Vector_3(5, 5, 5), 0) "
        "FROM cubes WHERE id = 1").fetchone()[0]
    print("  5x5x5 window:", conn.load_array(row).shape,
          "sum =", conn.load_array(row).sum())

    print("\n=== Row-by-row data -> arrays: the Concat aggregate ===")
    conn.execute("CREATE TABLE samples (ix BLOB, v REAL)")
    rng = np.random.default_rng(0)
    grid = rng.standard_normal((4, 4))
    for (i, j), val in np.ndenumerate(grid):
        conn.execute("INSERT INTO samples VALUES "
                     "(IntArray_Vector_2(?, ?), ?)",
                     (i, j, float(val)))
    blob = conn.execute(
        "SELECT FloatArray_ConcatAgg(IntArray_Vector_2(4, 4), ix, v) "
        "FROM samples").fetchone()[0]
    print("  assembled:", conn.load_array(blob).shape,
          "max error:",
          float(np.abs(conn.load_array(blob) - grid).max()))

    print("\n=== Composite spectra with GROUP BY + AvgAgg ===")
    conn.execute("CREATE TABLE spec (zbin INTEGER, flux BLOB)")
    for zbin in (0, 1):
        for _ in range(20):
            flux = (zbin + 1) * 10 + rng.standard_normal(8)
            conn.execute("INSERT INTO spec VALUES (?, ?)",
                         (zbin, conn.store_array(flux)))
    for zbin, blob in conn.execute(
            "SELECT zbin, FloatArray_AvgAgg(flux) FROM spec "
            "GROUP BY zbin ORDER BY zbin"):
        print(f"  zbin {zbin}: composite mean = "
              f"{conn.load_array(blob).mean():.2f}")

    print("\n=== Array literals ===")
    blob = conn.execute(
        "SELECT Array_FromString('int32[2,2]{1,2,3,4}')").fetchone()[0]
    print("  parsed:", conn.load_array(blob).tolist(),
          "(column-major fill)")

    print("\n=== Partial reads of a stored array "
          "(incremental blob IO) ===")
    big = np.arange(40 ** 3, dtype="f8").reshape(40, 40, 40)
    conn.execute("INSERT INTO cubes VALUES (2, ?)",
                 (conn.store_array(big),))
    with conn.open_array_blob("cubes", "a", 2) as stream:
        window = read_subarray(stream, (10, 10, 10), (8, 8, 8))
        print(f"  read 8^3 window from a {big.nbytes / 1e6:.1f} MB "
              f"array touching only {stream.bytes_read / 1024:.1f} kB")
        assert np.array_equal(window.to_numpy(),
                              big[10:18, 10:18, 10:18])

    print("\n=== Errors surface as SQL errors ===")
    import sqlite3
    try:
        conn.execute("SELECT FloatArray_Item_1("
                     "FloatArray_Vector_2(1, 2), 9)").fetchone()
    except sqlite3.OperationalError as exc:
        print("  OperationalError:", exc)


if __name__ == "__main__":
    main()
