#!/usr/bin/env python
"""The turbulence particle-query service (paper Section 2.1), end to end.

Builds a synthetic isotropic-turbulence snapshot, partitions it into
z-order blobs with ghost zones (the paper's (64+8)^3 layout, scaled
down), loads the blobs into the storage-engine database as out-of-page
rows, and serves a batch of particle interpolation queries — reading
only each particle's kernel neighbourhood through partial blob reads.

The closing comparison quantifies the paper's motivating observation:
"Accessing the whole blob (6 MB) for an 8-point 3D interpolation is
obviously overkill."

Run:  python examples/turbulence_service.py
"""

import numpy as np

from repro.engine import Database
from repro.science.turbulence import (
    BlobPartitioner,
    EngineBlobBackend,
    ParticleQueryService,
    TurbulenceStore,
    make_field,
)


def main():
    grid, cube, ghost = 64, 16, 4
    print(f"Generating a {grid}^3 isotropic turbulence snapshot ...")
    field = make_field(grid_size=grid, seed=42)

    print(f"Partitioning into ({cube}+{2 * ghost})^3 z-order blobs ...")
    db = Database()
    backend = EngineBlobBackend(db)
    store = TurbulenceStore(BlobPartitioner(grid, cube, ghost), backend)
    n_blobs = store.load_field(field)
    blob_bytes = backend.open(backend.keys()[0]).length()
    print(f"  {n_blobs} blobs, {blob_bytes / 1024:.0f} kB each "
          f"(the paper's blobs are ~6 MB)")

    # The paper's service receives ~10,000 particle positions per call.
    rng = np.random.default_rng(7)
    particles = rng.random((2000, 3)) * field.box_size

    for kernel in ("nearest", "lagrange4", "lagrange8", "pchip"):
        svc = ParticleQueryService(store, kernel)
        values, stats = svc.query(particles)
        print(f"\nkernel={kernel:10s} velocity rms="
              f"{values.std():.3f}")
        print(f"  blobs touched: {stats.blobs_opened}, "
              f"bytes read: {stats.bytes_read / 1024:.0f} kB "
              f"(full blobs would be "
              f"{stats.full_blob_bytes / 1024:.0f} kB)")

    print("\nPartial reads vs whole-blob reads (lagrange8):")
    svc = ParticleQueryService(store, "lagrange8")
    sample = particles[:500]
    _v1, partial = svc.query(sample)
    _v2, full = svc.query_full_read(sample)
    print(f"  partial: {partial.bytes_read / 1e6:.2f} MB read")
    print(f"  full:    {full.bytes_read / 1e6:.2f} MB read")
    print(f"  -> partial reads move {full.bytes_read / partial.bytes_read:.1f}x "
          "fewer bytes")

    # IO accounting from the storage engine's buffer pool.
    io = db.pool.counters
    print(f"\nStorage engine page reads: {io.logical_reads} logical, "
          f"{io.physical_reads} physical")


if __name__ == "__main__":
    main()
