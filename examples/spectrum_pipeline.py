#!/usr/bin/env python
"""The astronomical spectrum pipeline (paper Section 2.2), end to end.

Generates a synthetic spectrum survey, stores the spectra as array
blobs in SQLite, then runs the paper's processing chain:

1. flux-conserving resampling to a common wavelength grid,
2. normalization and composite building (the SQL aggregate),
3. PCA over the set (correlation matrix + gesvd),
4. masked least-squares expansion of flagged spectra,
5. kd-tree similar-spectrum search,
6. IFU-cube collapse via axis aggregates.

Run:  python examples/spectrum_pipeline.py
"""

import numpy as np

from repro.science.spectra import (
    SpectrumBasis,
    SpectrumGenerator,
    SpectrumSearchService,
    classify_nearest_centroid,
    collapse_cube,
    make_composite,
)
from repro.sqlbind import connect


def main():
    gen = SpectrumGenerator(n_bins=256, n_classes=3, seed=123)
    print("Generating a 300-spectrum survey (3 spectral classes) ...")
    survey = [gen.make(class_id=i % 3, redshift=0.02) for i in range(300)]

    # Store every spectrum as array blobs in SQLite, one row per object
    # — the paper's storage model for spectrum databases.
    conn = connect()
    conn.execute("CREATE TABLE spectra (id INTEGER PRIMARY KEY, "
                 "class_hint INTEGER, wave BLOB, flux BLOB, err BLOB, "
                 "flags BLOB)")
    for i, s in enumerate(survey):
        conn.execute(
            "INSERT INTO spectra VALUES (?, ?, ?, ?, ?, ?)",
            (i, s.class_id, s.wave.to_blob(), s.flux.to_blob(),
             s.error.to_blob(), s.flags.to_blob()))
    n, bins = conn.execute(
        "SELECT COUNT(*), FloatArray_Count(flux) FROM spectra"
    ).fetchone()
    print(f"  stored {n} spectra of {bins} bins each")

    print("\nComposite spectrum of class 0 (SQL-side aggregation "
          "equivalent):")
    class0 = [s for s in survey if s.class_id == 0][:50]
    edges, composite = make_composite(class0, n_bins=128)
    print(f"  {len(class0)} spectra -> composite with "
          f"{composite.shape[0]} bins, "
          f"S/N-weighted, flux-conserving resample")

    print("\nFitting the PCA basis (correlation matrix + gesvd) ...")
    basis = SpectrumBasis(n_components=5, n_bins=128).fit(survey[:200])
    ratio = basis.pca.explained_variance_ratio()
    print("  explained variance ratio:", np.round(ratio, 3))

    print("\nClassifying 60 held-out spectra by nearest centroid ...")
    train_coeffs = basis.expand_many(survey[:200])
    train_labels = [s.class_id for s in survey[:200]]
    test = [gen.make(class_id=i % 3, redshift=0.02) for i in range(60)]
    pred = classify_nearest_centroid(train_coeffs, train_labels,
                                     basis.expand_many(test))
    accuracy = (pred == np.array([t.class_id for t in test])).mean()
    print(f"  accuracy: {accuracy:.1%}")

    print("\nSimilar-spectrum search (kd-tree over coefficients):")
    search = SpectrumSearchService(basis, conn=conn).build(survey[:200])
    query = gen.make(class_id=1, redshift=0.02, bad_fraction=0.1)
    results = search.search(query, k=5)
    print(f"  query class: {query.class_id} "
          f"({(~query.good_mask()).sum()} flagged bins -> masked "
          "least-squares expansion)")
    for rank, (idx, dist, s) in enumerate(results, 1):
        print(f"  #{rank}: spectrum {idx} (class {s.class_id}), "
              f"coefficient distance {dist:.3f}")

    print("\nIFU data cube: collapse to the total spectrum "
          "(sum over both spatial axes):")
    _wave, cube = gen.make_ifu_cube(n_side=8, class_id=2)
    total = collapse_cube(cube, axis_to_keep=0)
    print(f"  cube {cube.shape} -> spectrum {total.shape}, total flux "
          f"{float(total.to_numpy().sum()):.1f}")


if __name__ == "__main__":
    main()
