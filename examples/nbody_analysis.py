#!/usr/bin/env python
"""The cosmological N-body analysis chain (paper Section 2.3).

Generates a Zel'dovich simulation with several snapshots, buckets the
particles into z-order array blobs (the paper's storage plan for 1.6
trillion points), then runs every analysis Section 2.3 enumerates:
FOF halos, merger history, CIC density + power spectrum, the truncated
large-scale Fourier cube, two/three-point correlations, octree
decimation for visualization, and a light cone.

Run:  python examples/nbody_analysis.py
"""

import numpy as np

from repro.science.nbody import (
    MergerTree,
    ZeldovichSimulation,
    bucketize,
    build_lightcone,
    cic_density,
    density_contrast,
    density_fourier_modes,
    find_halos,
    power_spectrum,
    three_point_counts,
    two_point_correlation,
)
from repro.spatial import Octree

BOX = 100.0
N_AXIS = 20


def main():
    print(f"Running a Zel'dovich simulation: {N_AXIS}^3 particles, "
          f"box {BOX:.0f} ...")
    sim = ZeldovichSimulation(particles_per_axis=N_AXIS, box_size=BOX,
                              spectral_index=-3.0, seed=99)
    growths = [1.0, 1.5, 2.0, 2.5]
    snaps = sim.snapshots(growths)
    final = snaps[-1]

    print("\nBucketing the final snapshot into z-order array blobs:")
    buckets = bucketize(final, cells_per_axis=4)
    sizes = [b.n_particles for b in buckets]
    print(f"  {len(buckets)} buckets, {min(sizes)}-{max(sizes)} "
          "particles each, stored as id/position/velocity arrays")

    linking = BOX / N_AXIS * 0.4
    print(f"\nFOF halos (linking length {linking:.2f}) per snapshot:")
    halo_lists = [find_halos(s.positions, s.ids, BOX, linking,
                             min_members=8) for s in snaps]
    for g, halos in zip(growths, halo_lists):
        biggest = halos[0].n_members if halos else 0
        print(f"  growth {g:.1f}: {len(halos):3d} halos "
              f"(largest {biggest} particles)")

    print("\nMerger history (linking halos by shared particle IDs):")
    tree = MergerTree.from_halo_lists(halo_lists, min_fraction=0.3)
    print("  links per step:", [len(l) for l in tree.links_per_step])
    print("  mergers per step:", tree.merger_counts())
    if halo_lists[-1]:
        branch = tree.main_branch(len(snaps) - 1, 0)
        sizes = [tree.halos_per_step[s][i].n_members for s, i in branch]
        print(f"  main branch of the largest halo: {sizes} particles "
              "(latest -> earliest)")

    print("\nCIC density, power spectrum, and the large-scale Fourier "
          "cube:")
    delta = density_contrast(cic_density(final.positions, BOX, 32))
    k, pk, counts = power_spectrum(delta, BOX, n_bins=10)
    for ki, pki, ni in zip(k[:6], pk[:6], counts[:6]):
        bar = "#" * int(max(0, np.log10(max(pki, 1e-10)) + 6) * 4)
        print(f"  k={ki:6.3f}  P(k)={pki:10.3f}  [{ni:4d} modes] {bar}")
    modes = density_fourier_modes(delta, keep=10)
    print(f"  stored large-scale modes: complex cube {modes.shape}, "
          f"{modes.nbytes / 1024:.0f} kB (the paper's 100^3 cube)")

    print("\nTwo-point correlation (Landy-Szalay):")
    edges = np.linspace(2.0, 25.0, 7)
    r, xi = two_point_correlation(final.positions, BOX, edges,
                                  n_random=2 * final.n_particles,
                                  seed=4)
    for ri, xii in zip(r, xi):
        print(f"  r={ri:5.1f}  xi={xii:+.3f}")
    t3 = three_point_counts(final.positions[:1500], BOX, 4.0, 4.0)
    print(f"  ~equilateral triangles at r=4: {t3}")

    print("\nOctree decimation for visualization:")
    octree = Octree(final.positions, BOX, max_points=32)
    for depth in (1, 2, 3):
        pts, weights = octree.decimate(depth)
        print(f"  level {depth}: {len(pts):5d} weighted particles "
              f"(weights sum to {weights.sum()})")

    print("\nLight cone (earlier snapshots farther out, Doppler "
          "redshifts):")
    entries = build_lightcone(list(reversed(snaps)), [50, 50, 50],
                              [1, 1, 0], half_angle=0.5,
                              max_distance=48.0)
    print(f"  {len(entries)} particles on the cone")
    for e in entries[:5]:
        print(f"  id={e.particle_id:5d} step={e.step} "
              f"d={e.distance:5.1f} z={e.redshift:+.4f}")


if __name__ == "__main__":
    main()
