"""Benchmark: server throughput and tail latency vs. concurrent clients.

The paper's Table 1 is a *server* workload — per-call overhead only
matters because many scientific clients hit the database at once.  This
bench drives the serving layer (:mod:`repro.server`) with 1, 4 and 16
concurrent clients issuing the Table 1 query mix over the wire and
reports queries/sec plus p50/p95 latency.

As a pytest-benchmark suite the numbers land in ``extra_info`` (so
``--benchmark-json`` captures them like the other benches); run the
file directly to get a standalone JSON document::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.server import ArrayClient, ServerConfig, ServerThread
from repro.tsql import FloatArray

ROWS = 2_000
CLIENT_COUNTS = (1, 4, 16)
QUERIES_PER_CLIENT = 8
QUERY_MIX = [
    "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
    "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
    "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)",
]


def make_db(rows: int = ROWS) -> Database:
    db = Database()
    tscalar = db.create_table(
        "Tscalar", [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tvector = db.create_table(
        "Tvector", [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)])
    values = np.random.default_rng(0).standard_normal((rows, 5))
    for i in range(rows):
        tscalar.insert((i, *values[i]))
        tvector.insert((i, FloatArray.Vector_5(*values[i])))
    return db


def bench_config() -> ServerConfig:
    # Queue sized so 16 clients never bounce — this bench measures
    # throughput under load, not the rejection path.
    return ServerConfig(max_workers=8, queue_limit=64,
                        query_timeout=120.0)


def run_load(port: int, n_clients: int,
             queries_per_client: int = QUERIES_PER_CLIENT) -> dict:
    """Drive the server with ``n_clients`` threads; returns qps and
    latency percentiles."""
    latencies: list[float] = []
    errors: list[Exception] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client_worker(seed: int):
        try:
            with ArrayClient("127.0.0.1", port) as client:
                barrier.wait(timeout=60)
                for i in range(queries_per_client):
                    sql = QUERY_MIX[(seed + i) % len(QUERY_MIX)]
                    t0 = time.perf_counter()
                    client.query(sql, cold=False)
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=client_worker, args=(i,))
               for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)  # all connected; start the clock now
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    ordered = sorted(latencies)

    def pct(p):
        return ordered[min(len(ordered) - 1,
                           round(p / 100 * (len(ordered) - 1)))]

    return {
        "clients": n_clients,
        "queries": len(latencies),
        "wall_seconds": wall,
        "qps": len(latencies) / wall,
        "latency_p50_ms": pct(50) * 1e3,
        "latency_p95_ms": pct(95) * 1e3,
    }


# -- pytest-benchmark entry points -------------------------------------------

@pytest.fixture(scope="module")
def served():
    with ServerThread(make_db(), bench_config()) as handle:
        yield handle


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_throughput_vs_clients(benchmark, served, n_clients):
    result = benchmark.pedantic(
        run_load, args=(served.port, n_clients), rounds=2, iterations=1)
    benchmark.extra_info.update(result)
    assert result["queries"] == n_clients * QUERIES_PER_CLIENT
    assert result["qps"] > 0


def test_stats_reflect_load(served):
    with ArrayClient("127.0.0.1", served.port) as client:
        client.query(QUERY_MIX[0], cold=False)
        stats = client.stats()
    assert stats["queries_ok"] >= 1
    assert stats["latency_p95"] is not None
    assert stats["rejected_busy"] == 0


# -- standalone JSON mode -----------------------------------------------------

def main() -> None:
    db = make_db()
    results = []
    with ServerThread(db, bench_config()) as handle:
        for n in CLIENT_COUNTS:
            results.append(run_load(handle.port, n))
        with ArrayClient("127.0.0.1", handle.port) as client:
            stats = client.stats()
    print(json.dumps({
        "bench": "server_throughput",
        "rows": ROWS,
        "query_mix": QUERY_MIX,
        "results": results,
        "server_stats": {
            "queries_ok": stats["queries_ok"],
            "rejected_busy": stats["rejected_busy"],
            "timeouts": stats["timeouts"],
            "latency_p50": stats["latency_p50"],
            "latency_p95": stats["latency_p95"],
        },
    }, indent=2))


if __name__ == "__main__":
    main()
