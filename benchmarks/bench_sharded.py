"""Benchmark: scatter-gather aggregate throughput vs shard count.

Runs the Table 1-style array-UDF aggregate mix through a
:class:`ShardRouter` over clusters of 1, 2 and 4 shard processes,
reporting queries/sec and p95 latency per shard count and asserting
bit-identical values against a single-node session throughout (range
partitioning preserves the fold order, so float SUM/AVG must match
exactly).  ``sharded_throughput`` is what ``collect_results.py``
records into ``results.json``.

Two replica measurements ride along: ``replica_read_throughput``
(read qps over a 2-shard cluster as the replica count grows) and
``kill_a_replica_drill``, which SIGKILLs a replica mid-workload and
asserts zero client-visible errors with at least one recorded
failover — the repeatable form of the PR's acceptance drill.

The ≥1.5x scan-throughput assertion only runs on hosts with at least
four cores — on a one-CPU container the shard processes time-slice
one core and the honest measurement is pure coordination overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke  # CI
"""

import json
import os
import struct
import sys
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession
from repro.shard import ShardConfig, ShardFleet, ShardRouter
from repro.tsql import FloatArray

#: Rows loaded into the benchmark table (per cluster, total).
ROWS = int(os.environ.get("REPRO_BENCH_SHARD_ROWS", "8000"))

SHARD_COUNTS = (1, 2, 4)

CREATE = ("CREATE TABLE tb (id BIGINT PRIMARY KEY, k INT, "
          "v VARBINARY(100))")
SCAN_SQL = "SELECT SUM(FloatArray.Item_1(v, 0)), COUNT(*) FROM tb"
GROUP_SQL = ("SELECT k, SUM(FloatArray.Item_1(v, 1)), COUNT(*) "
             "FROM tb GROUP BY k")


def make_rows(rows: int = ROWS):
    values = np.random.default_rng(7).standard_normal((rows, 5))
    return [(i, i % 8, FloatArray.Vector_5(*values[i]))
            for i in range(rows)]


def build_reference(rows: int = ROWS) -> SqlSession:
    db = Database()
    table = db.create_table(
        "tb", [Column("id", "bigint"), Column("k", "int"),
               Column("v", "varbinary", cap=100)])
    table.insert_many(make_rows(rows))
    return SqlSession(db)


def build_cluster(shards: int, rows: int = ROWS, replicas: int = 1):
    """A loaded cluster; caller owns ``fleet.stop()``."""
    config = ShardConfig(shards=shards, replicas=replicas,
                         key_lo=0, key_hi=rows)
    fleet = ShardFleet(config).start()
    try:
        router = ShardRouter(fleet.addresses, config.make_partitioner())
        router.execute(CREATE)
        router.insert_rows("tb", make_rows(rows))
        return fleet, router
    except BaseException:
        fleet.stop()
        raise


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    if isinstance(value, (tuple, list)):
        return tuple(_bits(v) for v in value)
    return value


def _reference_bits(rows: int):
    session = build_reference(rows)
    out = {}
    for sql in (SCAN_SQL, GROUP_SQL):
        values, _m = session.query(sql, cold=False)
        out[sql] = _bits(values if isinstance(values, list)
                         else [tuple(values)])
    return out


def sharded_throughput(rows: int = ROWS,
                       shard_counts=SHARD_COUNTS,
                       iterations: int = 12) -> dict:
    """Per shard count: queries/sec and p95 latency (ms) over the
    aggregate mix, values asserted bit-identical to single-node.
    Used by ``collect_results.py``."""
    reference = _reference_bits(rows)
    out = {}
    for shards in shard_counts:
        fleet, router = build_cluster(shards, rows)
        try:
            for sql in (SCAN_SQL, GROUP_SQL):
                got = router.execute(sql, cold=False)
                assert _bits([tuple(r) for r in got["rows"]]) == \
                    reference[sql], (shards, sql)
            latencies = []
            t0 = time.perf_counter()
            for i in range(iterations):
                sql = SCAN_SQL if i % 2 == 0 else GROUP_SQL
                q0 = time.perf_counter()
                router.execute(sql, cold=False)
                latencies.append(time.perf_counter() - q0)
            elapsed = time.perf_counter() - t0
            latencies.sort()
            p95 = latencies[int(0.95 * (len(latencies) - 1))]
            out[str(shards)] = {
                "qps": iterations / elapsed,
                "p95_ms": p95 * 1e3,
            }
        finally:
            router.close()
            fleet.stop()
    return out


def replica_read_throughput(rows: int = ROWS,
                            replica_counts=(1, 2),
                            iterations: int = 12) -> dict:
    """Read qps over a fixed 2-shard cluster as the replica count
    grows (reads round-robin across replicas, so extra replicas add
    read capacity on parallel hardware).  Used by
    ``collect_results.py``."""
    reference = _reference_bits(rows)
    out = {}
    for replicas in replica_counts:
        fleet, router = build_cluster(2, rows, replicas=replicas)
        try:
            got = router.execute(SCAN_SQL, cold=False)
            assert _bits([tuple(r) for r in got["rows"]]) == \
                reference[SCAN_SQL], replicas
            latencies = []
            t0 = time.perf_counter()
            for i in range(iterations):
                sql = SCAN_SQL if i % 2 == 0 else GROUP_SQL
                q0 = time.perf_counter()
                router.execute(sql, cold=False)
                latencies.append(time.perf_counter() - q0)
            elapsed = time.perf_counter() - t0
            latencies.sort()
            p95 = latencies[int(0.95 * (len(latencies) - 1))]
            out[str(replicas)] = {
                "qps": iterations / elapsed,
                "p95_ms": p95 * 1e3,
            }
        finally:
            router.shutdown()
            fleet.stop()
    return out


def kill_a_replica_drill(rows: int = 2000, iterations: int = 40) -> dict:
    """The failover drill: run the aggregate mix against a 2-shard x
    2-replica cluster, SIGKILL one replica mid-run, and demand zero
    client-visible errors plus bit-identical answers throughout.
    Returns the error count (must be 0) and the failovers the router
    recorded (must be >= 1)."""
    reference = _reference_bits(rows)
    fleet, router = build_cluster(2, rows, replicas=2)
    try:
        errors = 0
        failovers = 0
        kill_at = iterations // 4
        for i in range(iterations):
            if i == kill_at:
                fleet.kill(0, replica=0)
            sql = SCAN_SQL if i % 2 == 0 else GROUP_SQL
            try:
                got = router.execute(sql, cold=False)
                if _bits([tuple(r) for r in got["rows"]]) != \
                        reference[sql]:
                    errors += 1
            except Exception:
                errors += 1
        failovers = router.health()["failovers"]
        return {"statements": iterations, "errors": errors,
                "failovers": failovers}
    finally:
        router.shutdown()
        fleet.stop()


# -- pytest entry points ----------------------------------------------------

@pytest.fixture(scope="module")
def two_shard_cluster():
    rows = min(ROWS, 4000)
    fleet, router = build_cluster(2, rows)
    yield rows, router
    router.close()
    fleet.stop()


@pytest.mark.parametrize("sql", [SCAN_SQL, GROUP_SQL])
def test_sharded_matches_single_node(two_shard_cluster, sql):
    """CI smoke: two real shard processes, bit-identical answers."""
    rows, router = two_shard_cluster
    session = build_reference(rows)
    values, _m = session.query(sql, cold=False)
    want = _bits(values if isinstance(values, list)
                 else [tuple(values)])
    got = router.execute(sql, cold=False)
    assert _bits([tuple(r) for r in got["rows"]]) == want
    assert got["metrics"]["engine"] == "sharded"


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="throughput scaling needs >= 4 cores")
def test_scan_throughput_scales_1_5x_at_4_shards():
    """The acceptance bar, on real parallel hardware only."""
    results = sharded_throughput(shard_counts=(1, 4))
    ratio = results["4"]["qps"] / results["1"]["qps"]
    assert ratio >= 1.5, results


def test_kill_a_replica_drill_zero_errors():
    """CI smoke of the failover drill: a SIGKILLed replica mid-run
    must cost zero client-visible errors and record >= 1 failover."""
    drill = kill_a_replica_drill(rows=1500, iterations=20)
    assert drill["errors"] == 0, drill
    assert drill["failovers"] >= 1, drill


# -- CLI --------------------------------------------------------------------

def main(argv):
    smoke = "--smoke" in argv
    rows = min(ROWS, 2000) if smoke else ROWS
    iterations = 4 if smoke else 12
    results = sharded_throughput(rows=rows, iterations=iterations)
    for shards, numbers in results.items():
        print(f"  {shards} shard(s): {numbers['qps']:7.1f} q/s   "
              f"p95 {numbers['p95_ms']:6.1f} ms")
    replicas = replica_read_throughput(rows=rows,
                                       iterations=iterations)
    for count, numbers in replicas.items():
        print(f"  2 shards x {count} replica(s): "
              f"{numbers['qps']:7.1f} q/s   "
              f"p95 {numbers['p95_ms']:6.1f} ms")
    drill = kill_a_replica_drill(rows=min(rows, 2000),
                                 iterations=max(iterations * 2, 20))
    print(f"  kill-a-replica drill: {drill['statements']} statements, "
          f"{drill['errors']} errors, {drill['failovers']} failovers")
    assert drill["errors"] == 0, drill
    print(json.dumps({"rows": rows, "sharded_throughput": results,
                      "replica_read_throughput": replicas,
                      "kill_a_replica_drill": drill}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
