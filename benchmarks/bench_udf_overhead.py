"""Benchmark: the Section 7.1 UDF-overhead decomposition.

The paper measures ~2 us per CLR call, >= 38 % of CPU going to calls
even with an empty body, and +22 % for real item extraction.  Under the
cost model those ratios are reproduced exactly (see
``bench_table1.py``); here we additionally measure what *this* Python
implementation pays per call — the same experiment on a different
substrate — and an ablation over the modeled call cost.
"""

import numpy as np
import pytest

from repro.engine import (
    Col,
    Const,
    Count,
    Executor,
    PAPER_HARDWARE,
    ScalarUdf,
    Sum,
)
from repro.tsql import FloatArray

BLOB = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)


def _item_calls(n):
    total = 0.0
    for _ in range(n):
        total += FloatArray.Item_1(BLOB, 0)
    return total


def _empty_calls(n):
    f = _noop
    total = 0.0
    for _ in range(n):
        total += f(BLOB, 0)
    return total


def _noop(blob, i):
    return 0.0


def test_item_udf_call_cost(benchmark):
    """Python-substrate cost of one Item_1 call (the paper's CLR
    equivalent costs ~2 us + ~0.5 us body)."""
    benchmark.extra_info["per_call_us"] = None
    result = benchmark(_item_calls, 1000)
    assert result == 1000.0


def test_empty_udf_call_cost(benchmark):
    result = benchmark(_empty_calls, 1000)
    assert result == 0.0


def test_modeled_decomposition(table1_db):
    """The three Section 7.1 numbers under the calibrated model."""
    db, _ts, tvector, _values = table1_db
    ex = Executor(db)
    (_,), q2 = ex.run(tvector, [Count()])
    (_,), q4 = ex.run(tvector, [Sum(ScalarUdf(
        lambda b, i: FloatArray.Item_1(b, i), Col("v"), Const(0),
        body_cost="item"))])
    (_,), q5 = ex.run(tvector, [Sum(ScalarUdf(
        _noop, Col("v"), Const(0), body_cost="empty"))])

    # ~2 us per call: subtract the no-UDF scan CPU from the empty-UDF
    # query and divide by calls (includes the tiny empty body).
    per_call = (q5.sim_cpu_core_seconds - q2.sim_cpu_core_seconds) \
        / q5.udf_calls
    assert per_call == pytest.approx(2e-6, rel=0.25)

    # "at least 38 % of the CPU time went for the UDF calls even when
    # the UDF was empty".
    call_share = (PAPER_HARDWARE.cpu_udf_call * q5.udf_calls
                  / q5.sim_cpu_core_seconds)
    assert call_share >= 0.38

    # "the additional cost was 22 % above the empty function call case".
    extra = q4.sim_cpu_core_seconds / q5.sim_cpu_core_seconds - 1
    assert extra == pytest.approx(0.22, abs=0.06)


def test_ablation_call_cost_drives_q4(table1_db):
    """Ablation: halving the modeled call cost pulls Query 4's
    execution time down accordingly — the bottleneck is the call, not
    the body."""
    db, _ts, tvector, _values = table1_db
    results = {}
    for factor in (1.0, 0.5):
        model = PAPER_HARDWARE.with_overrides(
            cpu_udf_call=PAPER_HARDWARE.cpu_udf_call * factor)
        ex = Executor(db, model)
        (_,), m = ex.run(tvector, [Sum(ScalarUdf(
            lambda b, i: FloatArray.Item_1(b, i), Col("v"), Const(0),
            body_cost="item"))])
        results[factor] = m.sim_cpu_core_seconds
    reduction = 1 - results[0.5] / results[1.0]
    assert 0.25 < reduction < 0.45  # ~1 us of ~3 us per row
