"""Benchmark: the Concat UDA vs the reader-based replacement.

Section 4.2: "independently of the aggregate function internal storage
requirements, the state of aggregation had to be serialized via a
binary stream interface for each row processed by the aggregation.
This turned out to be prohibitive ... In place of aggregate functions,
we wrote plain SQL CLR scalar functions that take a SQL query as an
input parameter ... The latter method turned out to work much better."

Both designs produce identical arrays; the UDA pays an O(state)
serialization per row, so its total cost is quadratic in the array
size while the reader stays linear.
"""

import time

import numpy as np
import pytest

from repro.core import FLOAT64
from repro.core.aggregates import UdaCostLog, concat_reader, concat_uda


def _rows(side, seed=0):
    gen = np.random.default_rng(seed)
    values = gen.standard_normal((side, side))
    rows = [(idx, values[idx]) for idx in np.ndindex(side, side)]
    gen.shuffle(rows)
    return rows


@pytest.mark.parametrize("side", [8, 16, 32])
def test_concat_uda(benchmark, side):
    rows = _rows(side)
    out = benchmark(concat_uda, rows, (side, side), FLOAT64)
    assert out.shape == (side, side)


@pytest.mark.parametrize("side", [8, 16, 32])
def test_concat_reader(benchmark, side):
    rows = _rows(side)
    out = benchmark(concat_reader, rows, (side, side), FLOAT64)
    assert out.shape == (side, side)


def test_uda_serialized_bytes_grow_quadratically():
    """The smoking gun: serialized state bytes are O(rows^2)."""
    totals = []
    for side in (8, 16, 32):
        log = UdaCostLog()
        concat_uda(_rows(side), (side, side), FLOAT64, cost_log=log)
        totals.append(log.bytes_serialized)
    # Quadrupling the cells multiplies serialized bytes ~16x.
    assert totals[1] / totals[0] == pytest.approx(16, rel=0.2)
    assert totals[2] / totals[1] == pytest.approx(16, rel=0.2)


def test_reader_wins():
    """The paper's conclusion, measured: the reader design beats the
    per-row-serialized UDA at every size (the *asymptotic* gap is the
    deterministic bytes test above; wall-clock factors wobble with
    Python overhead, so only the ordering is asserted)."""
    for side in (8, 24):
        rows = _rows(side)
        t0 = time.perf_counter()
        a = concat_uda(rows, (side, side), FLOAT64)
        t_uda = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = concat_reader(rows, (side, side), FLOAT64)
        t_reader = time.perf_counter() - t0
        assert a == b
        assert t_uda > t_reader
