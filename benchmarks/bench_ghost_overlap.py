"""Ablation: blob size and ghost-overlap trade-offs (Section 2.1).

"We are currently experimenting with different blob sizes, overlap
regions and partitioning schemes across servers."  This bench runs
that experiment on the simulator: the ghost zone buys single-blob
interpolation (no neighbour fetches) at the price of storage overhead
that grows as the cube shrinks or the ghost widens.
"""

import numpy as np
import pytest

from repro.science.turbulence import (
    BlobPartitioner,
    MemoryBlobBackend,
    ParticleQueryService,
    TurbulenceStore,
    make_field,
)

GRID = 64


def _storage_overhead(cube: int, ghost: int) -> float:
    """Stored bytes / core bytes for one (cube, ghost) choice."""
    p = BlobPartitioner(GRID, cube, ghost)
    return (p.blob_edge ** 3) / (p.cube_size ** 3)


class TestOverheadModel:
    def test_paper_layout_overhead(self):
        # (64+8)^3 vs 64^3: the production choice costs ~42 % extra
        # storage — the same order as the 43 % row-header overhead the
        # paper accepts in Table 1's Tvector.
        assert _storage_overhead(64, 4) == pytest.approx(
            (72 / 64) ** 3, rel=1e-12)
        assert 1.35 < _storage_overhead(64, 4) < 1.50

    def test_overhead_grows_as_cubes_shrink(self):
        overheads = [_storage_overhead(c, 4) for c in (64, 32, 16, 8)]
        assert overheads == sorted(overheads)

    def test_overhead_grows_with_ghost(self):
        overheads = [_storage_overhead(16, g) for g in (0, 2, 4, 6)]
        assert overheads == sorted(overheads)


@pytest.fixture(scope="module")
def field():
    return make_field(GRID, seed=11)


@pytest.fixture(scope="module")
def particles(field):
    rng = np.random.default_rng(1)
    return rng.random((150, 3)) * field.box_size


@pytest.mark.parametrize("cube,ghost", [(8, 4), (16, 4), (32, 4),
                                        (16, 2)])
def test_service_under_layout(benchmark, field, particles, cube, ghost):
    """End-to-end interpolation throughput per layout choice; the
    kernel is matched to the ghost width."""
    store = TurbulenceStore(BlobPartitioner(GRID, cube, ghost),
                            MemoryBlobBackend())
    store.load_field(field)
    kernel = "lagrange8" if ghost >= 4 else "lagrange4"
    svc = ParticleQueryService(store, kernel)
    values, _stats = benchmark(svc.query, particles)
    assert np.isfinite(values).all()


def test_results_identical_across_layouts(field, particles):
    """The layout is an IO decision only: every (cube, ghost) choice
    interpolates to the same values."""
    reference = None
    for cube, ghost in [(8, 4), (16, 4), (32, 4)]:
        store = TurbulenceStore(BlobPartitioner(GRID, cube, ghost),
                                MemoryBlobBackend())
        store.load_field(field)
        values, _stats = ParticleQueryService(
            store, "lagrange8").query(particles)
        if reference is None:
            reference = values
        else:
            np.testing.assert_allclose(values, reference, rtol=1e-5)


def test_bytes_read_vs_overhead_tradeoff(field, particles):
    """Smaller cubes read fewer bytes per query but store more ghost
    bytes — the crossing the paper is 'experimenting' to find."""
    read_bytes = {}
    stored_bytes = {}
    for cube in (8, 16, 32):
        store = TurbulenceStore(BlobPartitioner(GRID, cube, 4),
                                MemoryBlobBackend())
        store.load_field(field)
        svc = ParticleQueryService(store, "lagrange8")
        _v, stats = svc.query(particles)
        read_bytes[cube] = stats.bytes_read
        stored_bytes[cube] = sum(
            store.backend.open(k).length()
            for k in store.backend.keys())
    # Query traffic shrinks (or stays flat) with smaller cubes...
    assert read_bytes[8] <= read_bytes[32]
    # ...while total storage grows.
    assert stored_bytes[8] > stored_bytes[16] > stored_bytes[32]
