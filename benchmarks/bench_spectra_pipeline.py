"""Benchmark: the Section 2.2 spectrum pipeline stages.

Resampling, normalization, composite aggregation, PCA fitting, masked
expansion, and kd-tree search — each stage measured separately so the
balance matches the paper's narrative (resampling and fitting dominate;
search is fast once coefficients exist).
"""

import numpy as np
import pytest

from repro.science.spectra import (
    SpectrumBasis,
    SpectrumGenerator,
    SpectrumSearchService,
    common_grid,
    make_composite,
    normalize,
    resample_spectrum,
)


@pytest.fixture(scope="module")
def survey():
    gen = SpectrumGenerator(n_bins=256, n_classes=3, seed=5)
    spectra = [gen.make(class_id=i % 3, redshift=0.02)
               for i in range(120)]
    return gen, spectra


def test_resample_one_spectrum(benchmark, survey):
    _gen, spectra = survey
    s = spectra[0]
    edges = common_grid(spectra, 128)
    out = benchmark(resample_spectrum, s.wave, s.flux, edges)
    assert out.shape == (128,)


def test_normalize_one_spectrum(benchmark, survey):
    _gen, spectra = survey
    s = spectra[0]
    w = s.wave.to_numpy()
    out = benchmark(normalize, s, float(w[20]), float(w[-20]))
    assert out.n_bins == s.n_bins


def test_composite_of_40(benchmark, survey):
    _gen, spectra = survey
    subset = [s for s in spectra if s.class_id == 0][:40]
    edges, comp = benchmark(make_composite, subset, 128)
    assert comp.shape == (128,)


def test_pca_fit(benchmark, survey):
    _gen, spectra = survey

    def fit():
        return SpectrumBasis(n_components=5, n_bins=128).fit(spectra)

    basis = benchmark(fit)
    assert basis.pca is not None


def test_masked_expansion(benchmark, survey):
    gen, spectra = survey
    basis = SpectrumBasis(n_components=5, n_bins=128).fit(spectra)
    flagged = gen.make(class_id=1, redshift=0.02, bad_fraction=0.2)
    coeffs = benchmark(basis.expand, flagged)
    assert coeffs.shape == (5,)


def test_kdtree_search(benchmark, survey):
    gen, spectra = survey
    svc = SpectrumSearchService(
        SpectrumBasis(n_components=5, n_bins=128)).build(spectra)
    query = gen.make(class_id=2, redshift=0.02)
    results = benchmark(svc.search, query, 10)
    assert len(results) == 10


def test_search_cheaper_than_fit(survey):
    """Once the basis exists, a single search (expand + kNN) is far
    cheaper than refitting — the reason coefficients are stored as
    columns."""
    import time
    gen, spectra = survey
    t0 = time.perf_counter()
    svc = SpectrumSearchService(
        SpectrumBasis(n_components=5, n_bins=128)).build(spectra)
    build = time.perf_counter() - t0
    query = gen.make(class_id=0, redshift=0.02)
    t0 = time.perf_counter()
    svc.search(query, 5)
    search = time.perf_counter() - t0
    assert search < build / 10


def test_sql_composites(benchmark, survey):
    """The Section 2.2 composite-by-redshift query, executed entirely
    inside SQL via the array AvgAgg aggregate."""
    from repro.science.spectra import SpectrumArchive
    from repro.sqlbind import connect

    _gen, spectra = survey
    archive = SpectrumArchive(connect())
    archive.add_many(spectra)

    def composites():
        return archive.sql_composites_by_redshift(0.02)

    rows = benchmark(composites)
    assert sum(count for _b, count, _c in rows) == len(spectra)
