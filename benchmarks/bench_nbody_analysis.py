"""Benchmark: the Section 2.3 N-body analyses.

FOF halo finding (with a linking-length sweep), CIC assignment, power
spectra, correlation functions, octree construction/decimation, and
light-cone extraction.
"""

import numpy as np
import pytest

from repro.science.nbody import (
    ZeldovichSimulation,
    build_lightcone,
    cic_density,
    density_contrast,
    find_halos,
    power_spectrum,
    two_point_correlation,
)
from repro.spatial import Octree

BOX = 100.0


@pytest.fixture(scope="module")
def snap():
    sim = ZeldovichSimulation(particles_per_axis=16, box_size=BOX,
                              spectral_index=-3.0, seed=1)
    return sim.snapshot(2.5)


@pytest.fixture(scope="module")
def snaps():
    sim = ZeldovichSimulation(particles_per_axis=12, box_size=BOX,
                              spectral_index=-3.0, seed=2)
    return sim.snapshots([2.5, 2.0, 1.5, 1.0])


@pytest.mark.parametrize("b", [0.3, 0.4, 0.6])
def test_fof_linking_length_sweep(benchmark, snap, b):
    linking = BOX / 16 * b
    halos = benchmark(find_halos, snap.positions, snap.ids, BOX,
                      linking, 8)
    assert isinstance(halos, list)


@pytest.mark.parametrize("grid", [16, 32])
def test_cic_assignment(benchmark, snap, grid):
    density = benchmark(cic_density, snap.positions, BOX, grid)
    assert density.sum() == pytest.approx(snap.n_particles)


def test_power_spectrum(benchmark, snap):
    delta = density_contrast(cic_density(snap.positions, BOX, 32))
    k, pk, _n = benchmark(power_spectrum, delta, BOX)
    assert len(k) == len(pk)


def test_two_point_correlation(benchmark, snap):
    edges = np.linspace(2.0, 20.0, 5)
    r, xi = benchmark(two_point_correlation, snap.positions, BOX,
                      edges, 2 * snap.n_particles, 0)
    assert len(xi) == 4


def test_octree_build(benchmark, snap):
    tree = benchmark(Octree, snap.positions, BOX, 32)
    assert tree.size == snap.n_particles


def test_octree_decimation(benchmark, snap):
    tree = Octree(snap.positions, BOX, max_points=32)
    pts, weights = benchmark(tree.decimate, 3)
    assert weights.sum() == snap.n_particles


def test_lightcone(benchmark, snaps):
    entries = benchmark(build_lightcone, snaps, [50, 50, 50],
                        [1, 1, 0], 0.5, 48.0)
    assert entries


def test_more_clustering_more_halos(snap):
    """Sanity on the sweep: larger linking lengths find more (or equal)
    halo membership overall."""
    linked = []
    for b in (0.3, 0.5):
        halos = find_halos(snap.positions, snap.ids, BOX,
                           BOX / 16 * b, min_members=8)
        linked.append(sum(h.n_members for h in halos))
    assert linked[1] >= linked[0]
