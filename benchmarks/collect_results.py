#!/usr/bin/env python
"""Regenerate every number quoted in EXPERIMENTS.md, in one run.

Run:  python benchmarks/collect_results.py [rows] [results.json]

Prints the Table 1 projection, the Section 6.2/7.1 claims, the
row-vs-vector engine speedups, the partial-read and Concat
measurements, and the science-pipeline summary statistics, each tagged
with the paper value it reproduces.  The Table 1 projections and the
vector-engine speedup ratios are also written to ``results.json``
(second CLI argument; defaults to ``results.json`` next to this
script).
"""

import json
import os
import pathlib
import sys
import time

import numpy as np

from table1_harness import PAPER, PAPER_ROWS, SQL_TEXT, load_tables, \
    run_queries


def table1_block(rows: int) -> dict:
    print("=" * 70)
    print(f"Table 1 (projected from {rows:,} rows to {PAPER_ROWS:,})")
    print("=" * 70)
    db, ts, tv = load_tables(rows)
    ratio = tv.data_bytes() / ts.data_bytes()
    print(f"S6.2 size overhead: {ratio - 1:.1%}   (paper: 43 %)")
    metrics = run_queries(db, ts, tv)
    factor = PAPER_ROWS / rows
    # One canonical flattening per query — the same dicts the server's
    # wire protocol ships — instead of plucking attributes ad hoc.
    projected = {
        m.label: m.scaled(factor,
                          fixed_random_reads=m.random_reads).to_dict()
        for m in metrics}
    for label, d in projected.items():
        p = PAPER[label]
        print(f"{label}: {d['sim_exec_seconds']:5.0f} s "
              f"{d['cpu_percent']:4.0f} % {d['io_mb_per_s']:6.0f} MB/s"
              f"   (paper: {p[0]} s, {p[1]} %, {p[2]} MB/s)")
    raw = {m.label: m.to_dict() for m in metrics}
    q2, q4, q5 = raw["Query 2"], raw["Query 4"], raw["Query 5"]
    per_call = (q5["sim_cpu_core_seconds"]
                - q2["sim_cpu_core_seconds"]) / q5["udf_calls"]
    print(f"S7.1 UDF call cost: {per_call * 1e6:.2f} us/call "
          "(paper: ~2 us)")
    from repro.engine import PAPER_HARDWARE
    share = PAPER_HARDWARE.cpu_udf_call * q5["udf_calls"] \
        / q5["sim_cpu_core_seconds"]
    print(f"S7.1 empty-call CPU share: {share:.0%} "
          "(paper: 'at least 38 %')")
    extra = q4["sim_cpu_core_seconds"] / q5["sim_cpu_core_seconds"] - 1
    print(f"S7.1 item extraction surcharge: {extra:.1%} (paper: 22 %)")
    return projected


def vectorized_block(rows: int) -> dict:
    print("=" * 70)
    print("Vectorized batch engine: row vs vector wall time")
    print("=" * 70)
    from repro.engine import SqlSession

    from bench_vectorized import vector_speedups
    db, _ts, _tv = load_tables(rows)
    speedups = vector_speedups(SqlSession(db))
    for label, ratio in speedups.items():
        print(f"  {label}: vector is {ratio:4.1f}x faster "
              f"(identical values and IO accounting)")
    return speedups


def parallel_block(rows: int) -> dict:
    print("=" * 70)
    print("Parallel engine: vector vs parallel wall time by workers")
    print("=" * 70)
    from bench_parallel import build_session, parallel_speedups
    session = build_session(rows)
    speedups = parallel_speedups(session)
    for label, per_workers in speedups.items():
        line = ", ".join(f"{w} workers: {ratio:4.2f}x"
                         for w, ratio in per_workers.items())
        print(f"  {label}: {line}")
    cores = os.cpu_count() or 1
    if cores < 4:
        print(f"  (host has {cores} core(s); ratios above are honest "
              "overhead numbers, not parallel wins)")
    pool = getattr(session.db, "_worker_pool", None)
    if pool is not None:
        pool.shutdown()
    return speedups


def pipeline_block() -> dict:
    print("=" * 70)
    print("Zero-copy data plane: pipelined statements, partial-blob "
          "wire traffic")
    print("=" * 70)
    from bench_pipeline import make_db as make_pipeline_db, \
        partial_numbers, pipeline_numbers
    from repro.server import ServerThread

    with ServerThread(make_pipeline_db()) as handle:
        pipeline = pipeline_numbers(handle.port)
        partial = partial_numbers(handle.port)
    print(f"  point SELECTs: serial {pipeline['serial_qps']:7.0f} q/s"
          f" vs pipelined {pipeline['pipelined_qps']:7.0f} q/s "
          f"(depth {pipeline['depth']}, "
          f"{pipeline['speedup']:.2f}x)")
    print(f"  partial read: {partial['partial_wire_bytes']:,} of "
          f"{partial['blob_bytes']:,} blob bytes on the wire "
          f"({partial['wire_savings']:.0f}x less traffic)")
    return {"pipeline": pipeline, "partial_wire": partial}


def shm_snapshot_block(rows: int) -> dict:
    print("=" * 70)
    print("Snapshot shipping: shared memory vs temp-file fallback "
          "(dirty grouped shape)")
    print("=" * 70)
    from bench_parallel import shm_vs_file_numbers

    numbers = shm_vs_file_numbers(rows=rows, workers=4, iterations=3)
    print(f"  shm {numbers['shm_seconds'] * 1e3:7.1f} ms vs file "
          f"{numbers['file_seconds'] * 1e3:7.1f} ms  "
          f"({numbers['speedup']:.2f}x)")
    cores = os.cpu_count() or 1
    if cores < 4:
        print(f"  (host has {cores} core(s); on time-sliced hardware "
              "this measures transport overhead, not the "
              "parallel-read win)")
    return numbers


def sharded_block(rows: int) -> dict:
    print("=" * 70)
    print("Sharded backend: scatter-gather throughput by shard count")
    print("=" * 70)
    from bench_sharded import sharded_throughput
    numbers = sharded_throughput(rows=rows)
    for shards, d in numbers.items():
        print(f"  {shards} shard(s): {d['qps']:7.1f} q/s   "
              f"p95 {d['p95_ms']:6.1f} ms")
    cores = os.cpu_count() or 1
    if cores < 4:
        print(f"  (host has {cores} core(s); shard processes "
              "time-slice it, so these are coordination-overhead "
              "numbers, not scaling wins)")
    return numbers


def replica_block(rows: int) -> dict:
    print("=" * 70)
    print("Replica shards: read throughput by replica count, plus "
          "the kill-a-replica drill")
    print("=" * 70)
    from bench_sharded import kill_a_replica_drill, \
        replica_read_throughput
    numbers = replica_read_throughput(rows=rows)
    for count, d in numbers.items():
        print(f"  2 shards x {count} replica(s): {d['qps']:7.1f} q/s"
              f"   p95 {d['p95_ms']:6.1f} ms")
    drill = kill_a_replica_drill(rows=min(rows, 2_000))
    print(f"  drill: {drill['statements']} statements with a replica "
          f"SIGKILLed mid-run -> {drill['errors']} errors, "
          f"{drill['failovers']} failover(s)")
    assert drill["errors"] == 0, drill
    return {"read_throughput": numbers, "drill": drill}


def latch_mvcc_block() -> dict:
    print("=" * 70)
    print("Latching and MVCC: reader throughput under concurrent "
          "writers")
    print("=" * 70)
    from bench_latches import READERS, latch_overlap_results, \
        mvcc_overlap_results
    window = 0.5
    inter = latch_overlap_results(window)
    intra = mvcc_overlap_results(window, rows=4_000)
    inter_speedup = inter["table"]["reader_ops"] \
        / max(inter["coarse"]["reader_ops"], 1)
    intra_speedup = intra["on"]["reader_ops"] \
        / max(intra["off"]["reader_ops"], 1)
    print(f"  writer on B, {READERS} readers on A: per-table latches "
          f"{inter['table']['reader_ops']} reads vs coarse lock "
          f"{inter['coarse']['reader_ops']} ({inter_speedup:.2f}x)")
    print(f"  writer on A, {READERS} readers on A: MVCC snapshots "
          f"{intra['on']['reader_ops']} reads vs latch-per-scan "
          f"{intra['off']['reader_ops']} ({intra_speedup:.2f}x)")
    cores = os.cpu_count() or 1
    if cores < 4:
        print(f"  (host has {cores} core(s); the threads time-slice "
              "one core, so these ratios measure overhead, not the "
              "overlap win)")
    return {"inter_table": inter, "intra_table": intra,
            "latch_reader_speedup": inter_speedup,
            "mvcc_reader_speedup": intra_speedup}


def partial_reads_block() -> None:
    print("=" * 70)
    print("S3.3 partial subarray reads (8^3 window)")
    print("=" * 70)
    from repro.core import SqlArray
    from repro.core.partial import BytesBlobStream, read_subarray
    for edge in (16, 32, 64):
        blob = SqlArray.from_numpy(
            np.zeros((edge, edge, edge))).to_blob()
        stream = BytesBlobStream(blob)
        read_subarray(stream, (4, 4, 4), (8, 8, 8))
        print(f"  {edge}^3 stored array: whole-blob / partial = "
              f"{stream.length() / stream.bytes_read:6.1f}x")


def concat_block() -> None:
    print("=" * 70)
    print("S4.2 Concat UDA vs reader")
    print("=" * 70)
    from repro.core import FLOAT64
    from repro.core.aggregates import UdaCostLog, concat_reader, \
        concat_uda
    for side in (8, 16, 32):
        gen = np.random.default_rng(0)
        values = gen.standard_normal((side, side))
        rows = [(i, values[i]) for i in np.ndindex(side, side)]
        log = UdaCostLog()
        t0 = time.perf_counter()
        concat_uda(rows, (side, side), FLOAT64, cost_log=log)
        t_uda = time.perf_counter() - t0
        t0 = time.perf_counter()
        concat_reader(rows, (side, side), FLOAT64)
        t_reader = time.perf_counter() - t0
        print(f"  {side}x{side}: state bytes {log.bytes_serialized:>9,}"
              f"  wall uda/reader = {t_uda / t_reader:4.1f}x")


def turbulence_block() -> None:
    print("=" * 70)
    print("S2.1 turbulence service (64^3 field, lagrange8)")
    print("=" * 70)
    from repro.science.turbulence import (BlobPartitioner,
                                          MemoryBlobBackend,
                                          ParticleQueryService,
                                          TurbulenceStore, make_field)
    field = make_field(64, seed=0)
    store = TurbulenceStore(BlobPartitioner(64, 16, 4),
                            MemoryBlobBackend())
    store.load_field(field)
    svc = ParticleQueryService(store, "lagrange8")
    pos = np.random.default_rng(3).random((200, 3)) * field.box_size
    _v, partial = svc.query(pos)
    _v, full = svc.query_full_read(pos)
    print(f"  200 particles: partial {partial.bytes_read / 1e6:.2f} MB"
          f" vs whole-blob {full.bytes_read / 1e6:.2f} MB"
          f"  ({full.bytes_read / partial.bytes_read:.1f}x less IO)")


def spectra_block() -> None:
    print("=" * 70)
    print("S2.2 spectrum pipeline")
    print("=" * 70)
    from repro.science.spectra import (SpectrumBasis, SpectrumGenerator,
                                       classify_nearest_centroid)
    gen = SpectrumGenerator(n_bins=128, n_classes=3, seed=42)
    train = [gen.make(class_id=i % 3, redshift=0.01) for i in range(60)]
    basis = SpectrumBasis(4, 64).fit(train)
    coeffs = basis.expand_many(train)
    test = [gen.make(class_id=i % 3, redshift=0.01) for i in range(30)]
    pred = classify_nearest_centroid(
        coeffs, [s.class_id for s in train], basis.expand_many(test))
    acc = (pred == np.array([t.class_id for t in test])).mean()
    print(f"  PCA classification accuracy (3 classes): {acc:.0%}")


def nbody_block() -> None:
    print("=" * 70)
    print("S2.3 N-body analyses (16^3 Zel'dovich, growth 2.5)")
    print("=" * 70)
    from repro.science.nbody import (ZeldovichSimulation, cic_density,
                                     density_contrast, find_halos,
                                     power_spectrum)
    sim = ZeldovichSimulation(16, 100.0, spectral_index=-3.0, seed=5)
    snap = sim.snapshot(2.5)
    halos = find_halos(snap.positions, snap.ids, 100.0,
                       100.0 / 16 * 0.4, min_members=8)
    print(f"  FOF halos: {len(halos)} "
          f"(largest {halos[0].n_members if halos else 0} particles)")
    delta = density_contrast(cic_density(snap.positions, 100.0, 16))
    k, pk, counts = power_spectrum(delta, 100.0)
    slope = np.polyfit(np.log(k[counts > 0][:5]),
                       np.log(pk[counts > 0][:5] + 1e-30), 1)[0]
    print(f"  P(k) low-k log-slope: {slope:.2f} (clustered: negative)")


def main(rows: int = 20_000, json_out: str | None = None) -> None:
    results = {"rows": rows, "paper_rows": PAPER_ROWS}
    results["table1_projected"] = table1_block(rows)
    results["vector_speedup"] = vectorized_block(rows)
    results["parallel_speedup"] = parallel_block(rows)
    results["sharded_throughput"] = sharded_block(min(rows, 8_000))
    results["replica_shards"] = replica_block(min(rows, 8_000))
    results["dataplane"] = pipeline_block()
    results["shm_snapshot"] = shm_snapshot_block(min(rows, 10_000))
    results["latch_mvcc"] = latch_mvcc_block()
    partial_reads_block()
    concat_block()
    turbulence_block()
    spectra_block()
    nbody_block()
    path = pathlib.Path(json_out) if json_out else \
        pathlib.Path(__file__).with_name("results.json")
    path.write_text(json.dumps(results, indent=2) + "\n")
    print("=" * 70)
    print(f"results JSON written to {path}")
    print("done; compare against EXPERIMENTS.md")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000,
         sys.argv[2] if len(sys.argv) > 2 else None)
