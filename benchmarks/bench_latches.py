"""Benchmark: per-table latches vs the coarse database lock under
mixed traffic.

The workload the latch layer exists for: reader threads issuing warm
aggregate SELECTs against table A while one writer churns INSERTs into
table B.  Under ``latch_mode="coarse"`` every insert takes the whole
database exclusively and the readers stall behind it; under
``latch_mode="table"`` the writer only latches B and the readers
proceed.  Reported is reader throughput (queries completed in a fixed
window) per mode — the fine mode's win is the stall time given back to
the readers.

The fine-beats-coarse assertion only runs on hosts with at least four
cores, mirroring ``bench_parallel.py``: on a one-CPU container the
threads time-slice one core and scheduling noise can swamp the stall
effect the benchmark isolates.

Run directly for JSON output::

    PYTHONPATH=src python benchmarks/bench_latches.py
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray

#: Rows loaded into the read-side table.
ROWS = int(os.environ.get("REPRO_BENCH_LATCH_ROWS", "4000"))

#: Measurement window per mode, seconds.
WINDOW = float(os.environ.get("REPRO_BENCH_LATCH_SECONDS", "1.0"))

READERS = 3

READ_SQL = "SELECT SUM(FloatArray.Item_1(v, 0)), COUNT(*) FROM ta"


def build_db(latch_mode: str, rows: int = ROWS) -> Database:
    db = Database(latch_mode=latch_mode)
    values = np.random.default_rng(2).standard_normal((rows, 5))
    ta = db.create_table(
        "ta", [Column("id", "bigint"),
               Column("v", "varbinary", cap=100)])
    ta.insert_many((i, FloatArray.Vector_5(*values[i]))
                   for i in range(rows))
    db.create_table(
        "tb", [Column("id", "bigint"),
               Column("v", "varbinary", cap=100)])
    return db


def mixed_traffic(latch_mode: str, window: float = WINDOW,
                  readers: int = READERS) -> dict:
    """Reader and writer throughput over one timed window.

    Returns ``{"reader_ops": ..., "writer_ops": ...}`` — queries on A
    completed by all reader threads, and inserts into B completed by
    the writer, during ``window`` seconds of concurrent traffic.
    """
    db = build_db(latch_mode)
    stop = threading.Event()
    counts = [0] * (readers + 1)
    errors = []

    def reader(slot):
        session = SqlSession(db)
        expected = session.query(READ_SQL, cold=False,
                                 engine="vector")[0]
        try:
            while not stop.is_set():
                values, _ = session.query(READ_SQL, cold=False,
                                          engine="vector")
                assert values == expected  # stable: writer never touches A
                counts[slot] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        session = SqlSession(db)
        i = 0
        try:
            while not stop.is_set():
                session.execute(
                    f"INSERT INTO tb VALUES ({i}, "
                    "FloatArray.Vector_3(1.0, 2.0, 3.0))")
                i += 1
                counts[readers] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    time.sleep(window)
    stop.set()
    for t in threads:
        t.join(timeout=60)
    if errors:
        raise errors[0]
    return {"reader_ops": sum(counts[:readers]),
            "writer_ops": counts[readers]}


def latch_overlap_results(window: float = WINDOW) -> dict:
    """Both modes under the same mixed workload (collect-friendly)."""
    return {mode: mixed_traffic(mode, window)
            for mode in ("table", "coarse")}


def test_reader_on_a_completes_while_writer_holds_b():
    """Smoke (any host): with a write latch pinned on B, a SELECT on A
    still completes in fine mode — the direct overlap the benchmark's
    throughput numbers come from."""
    db = build_db("table", rows=200)
    done = threading.Event()

    def read():
        SqlSession(db).query(READ_SQL, cold=False, engine="vector")
        done.set()

    with db.latches.write_latch("tb"):
        t = threading.Thread(target=read, daemon=True)
        t.start()
        assert done.wait(timeout=10), \
            "reader on A stalled behind the writer's latch on B"
    t.join(timeout=10)


def test_mixed_traffic_runs_in_both_modes():
    """Smoke (any host): a short window produces traffic in both modes
    and the readers observe bit-stable values throughout."""
    for mode in ("table", "coarse"):
        ops = mixed_traffic(mode, window=0.2, readers=2)
        assert ops["reader_ops"] > 0
        assert ops["writer_ops"] > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="throughput comparison needs >= 4 cores")
def test_fine_latches_beat_coarse_lock_under_mixed_traffic():
    """The acceptance bar: readers of A complete strictly more work in
    ``table`` mode than in ``coarse`` mode while a writer churns B."""
    results = latch_overlap_results()
    assert results["table"]["reader_ops"] > \
        results["coarse"]["reader_ops"], results


def main() -> None:
    results = latch_overlap_results()
    fine, coarse = results["table"], results["coarse"]
    print(json.dumps({
        "bench": "latches",
        "rows": ROWS,
        "window_seconds": WINDOW,
        "readers": READERS,
        "results": results,
        "reader_speedup": fine["reader_ops"] /
            max(coarse["reader_ops"], 1),
    }, indent=2))


if __name__ == "__main__":
    main()
