"""Benchmark: per-table latches vs the coarse database lock under
mixed traffic.

The workload the latch layer exists for: reader threads issuing warm
aggregate SELECTs against table A while one writer churns INSERTs into
table B.  Under ``latch_mode="coarse"`` every insert takes the whole
database exclusively and the readers stall behind it; under
``latch_mode="table"`` the writer only latches B and the readers
proceed.  Reported is reader throughput (queries completed in a fixed
window) per mode — the fine mode's win is the stall time given back to
the readers.

The second workload is the one per-table latches cannot help with:
the writer churns INSERT/DELETE on the *same* table the readers scan.
With ``REPRO_MVCC=off`` every reader queues behind the writer's
exclusive table latch; with MVCC on (the default) readers pin a
copy-on-write page-version snapshot and scan latch-free, so reader
throughput barely notices the writer.  ``mvcc_overlap_results``
reports both modes; the acceptance bar is MVCC readers completing at
least twice the off-mode reader work.

The fine-beats-coarse and MVCC-beats-off assertions only run on hosts
with at least four cores, mirroring ``bench_parallel.py``: on a
one-CPU container the threads time-slice one core and scheduling
noise can swamp the stall effect the benchmark isolates.

Run directly for JSON output::

    PYTHONPATH=src python benchmarks/bench_latches.py [--smoke]
"""

import json
import math
import os
import sys
import threading
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray

#: Rows loaded into the read-side table.
ROWS = int(os.environ.get("REPRO_BENCH_LATCH_ROWS", "4000"))

#: Measurement window per mode, seconds.
WINDOW = float(os.environ.get("REPRO_BENCH_LATCH_SECONDS", "1.0"))

READERS = 3

READ_SQL = "SELECT SUM(FloatArray.Item_1(v, 0)), COUNT(*) FROM ta"


def build_db(latch_mode: str, rows: int = ROWS,
             mvcc_mode: str | None = None) -> Database:
    db = Database(latch_mode=latch_mode, mvcc_mode=mvcc_mode)
    values = np.random.default_rng(2).standard_normal((rows, 5))
    ta = db.create_table(
        "ta", [Column("id", "bigint"),
               Column("v", "varbinary", cap=100)])
    ta.insert_many((i, FloatArray.Vector_5(*values[i]))
                   for i in range(rows))
    db.create_table(
        "tb", [Column("id", "bigint"),
               Column("v", "varbinary", cap=100)])
    return db


def mixed_traffic(latch_mode: str, window: float = WINDOW,
                  readers: int = READERS) -> dict:
    """Reader and writer throughput over one timed window.

    Returns ``{"reader_ops": ..., "writer_ops": ...}`` — queries on A
    completed by all reader threads, and inserts into B completed by
    the writer, during ``window`` seconds of concurrent traffic.
    """
    db = build_db(latch_mode)
    stop = threading.Event()
    counts = [0] * (readers + 1)
    errors = []

    def reader(slot):
        session = SqlSession(db)
        expected = session.query(READ_SQL, cold=False,
                                 engine="vector")[0]
        try:
            while not stop.is_set():
                values, _ = session.query(READ_SQL, cold=False,
                                          engine="vector")
                assert values == expected  # stable: writer never touches A
                counts[slot] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        session = SqlSession(db)
        i = 0
        try:
            while not stop.is_set():
                session.execute(
                    f"INSERT INTO tb VALUES ({i}, "
                    "FloatArray.Vector_3(1.0, 2.0, 3.0))")
                i += 1
                counts[readers] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    time.sleep(window)
    stop.set()
    for t in threads:
        t.join(timeout=60)
    if errors:
        raise errors[0]
    return {"reader_ops": sum(counts[:readers]),
            "writer_ops": counts[readers]}


def latch_overlap_results(window: float = WINDOW) -> dict:
    """Both modes under the same mixed workload (collect-friendly)."""
    return {mode: mixed_traffic(mode, window)
            for mode in ("table", "coarse")}


def intra_table_traffic(mvcc_mode: str, window: float = WINDOW,
                        readers: int = READERS,
                        rows: int = ROWS) -> dict:
    """Reader/writer throughput with all traffic on ONE table.

    The writer alternates INSERT and DELETE of a fresh key in ``ta``
    while reader threads run warm aggregate scans of ``ta``.  Latch
    mode is ``"table"`` in both runs — per-table latches cannot
    separate this workload, only MVCC can.  Readers sanity-check every
    result: the row count must be the base count or one more (the
    writer's in-flight key), and the sum must match the base sum since
    churned keys carry a zero payload — a snapshot may be stale, never
    torn.
    """
    db = build_db("table", rows=rows, mvcc_mode=mvcc_mode)
    base = SqlSession(db).query(READ_SQL, cold=False,
                                engine="vector")[0]
    base_sum, base_count = base
    stop = threading.Event()
    counts = [0] * (readers + 1)
    errors = []

    def reader(slot):
        session = SqlSession(db)
        try:
            while not stop.is_set():
                (s, n), _ = session.query(READ_SQL, cold=False,
                                          engine="vector")
                assert n in (base_count, base_count + 1), (n, base_count)
                assert math.isclose(s, base_sum, rel_tol=1e-9,
                                    abs_tol=1e-9), (s, base_sum)
                counts[slot] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        session = SqlSession(db)
        key = rows
        try:
            while not stop.is_set():
                session.execute(
                    f"INSERT INTO ta VALUES ({key}, "
                    "FloatArray.Vector_3(0.0, 0.0, 0.0))")
                session.execute(f"DELETE FROM ta WHERE id = {key}")
                key += 1
                counts[readers] += 2
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    time.sleep(window)
    stop.set()
    for t in threads:
        t.join(timeout=60)
    if errors:
        raise errors[0]
    return {"reader_ops": sum(counts[:readers]),
            "writer_ops": counts[readers]}


def mvcc_overlap_results(window: float = WINDOW,
                         rows: int = ROWS) -> dict:
    """MVCC on vs off under the same intra-table churn
    (collect-friendly)."""
    return {mode: intra_table_traffic(mode, window, rows=rows)
            for mode in ("on", "off")}


def test_reader_on_a_completes_while_writer_holds_b():
    """Smoke (any host): with a write latch pinned on B, a SELECT on A
    still completes in fine mode — the direct overlap the benchmark's
    throughput numbers come from."""
    db = build_db("table", rows=200)
    done = threading.Event()

    def read():
        SqlSession(db).query(READ_SQL, cold=False, engine="vector")
        done.set()

    with db.latches.write_latch("tb"):
        t = threading.Thread(target=read, daemon=True)
        t.start()
        assert done.wait(timeout=10), \
            "reader on A stalled behind the writer's latch on B"
    t.join(timeout=10)


def test_mixed_traffic_runs_in_both_modes():
    """Smoke (any host): a short window produces traffic in both modes
    and the readers observe bit-stable values throughout."""
    for mode in ("table", "coarse"):
        ops = mixed_traffic(mode, window=0.2, readers=2)
        assert ops["reader_ops"] > 0
        assert ops["writer_ops"] > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="throughput comparison needs >= 4 cores")
def test_fine_latches_beat_coarse_lock_under_mixed_traffic():
    """The acceptance bar: readers of A complete strictly more work in
    ``table`` mode than in ``coarse`` mode while a writer churns B."""
    results = latch_overlap_results()
    assert results["table"]["reader_ops"] > \
        results["coarse"]["reader_ops"], results


def test_intra_table_traffic_runs_in_both_mvcc_modes():
    """Smoke (any host): readers and the same-table writer both make
    progress in each MVCC mode and every read passes the stale-never-
    torn sanity checks."""
    for mode in ("on", "off"):
        ops = intra_table_traffic(mode, window=0.2, readers=2,
                                  rows=500)
        assert ops["reader_ops"] > 0
        assert ops["writer_ops"] > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="throughput comparison needs >= 4 cores")
def test_mvcc_readers_at_least_double_off_mode_under_same_table_writer():
    """The acceptance bar: with the writer churning the SAME table the
    readers scan, MVCC snapshot readers complete at least twice the
    work of the off-mode (latch-per-scan) baseline."""
    results = mvcc_overlap_results()
    assert results["on"]["reader_ops"] >= \
        2 * results["off"]["reader_ops"], results


def main(smoke: bool = False) -> None:
    window = min(WINDOW, 0.25) if smoke else WINDOW
    rows = min(ROWS, 1000) if smoke else ROWS
    results = latch_overlap_results(window)
    fine, coarse = results["table"], results["coarse"]
    intra = mvcc_overlap_results(window, rows=rows)
    print(json.dumps({
        "bench": "latches",
        "rows": ROWS if not smoke else rows,
        "window_seconds": window,
        "readers": READERS,
        "results": results,
        "reader_speedup": fine["reader_ops"] /
            max(coarse["reader_ops"], 1),
        "intra_table": intra,
        "mvcc_reader_speedup": intra["on"]["reader_ops"] /
            max(intra["off"]["reader_ops"], 1),
    }, indent=2))


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
