"""Benchmark: the five Table 1 queries (paper Section 6.3).

``pytest benchmarks/bench_table1.py --benchmark-only`` measures the wall
time of each query against the storage-engine simulator at laptop scale
and verifies the paper-scale *shape*: Q1/Q2/Q3 IO-bound, Q4/Q5
CPU-bound, Q4 > Q5 > Q2 > Q1 in execution time.  The printed
reproduction of the full table lives in ``table1_harness.py``.
"""

import pytest

from repro.engine import Col, Const, Count, Executor, ScalarUdf, Sum
from repro.tsql import FloatArray

from conftest import PAPER_ROWS, TABLE1_ROWS


def _item(blob, i):
    return FloatArray.Item_1(blob, i)


def _empty(blob, i):
    return 0.0


def _query(db, table, aggs, label):
    return Executor(db).run(table, aggs, label=label)


def test_query1_count_scalar(benchmark, table1_db):
    db, tscalar, _tv, _values = table1_db
    (n,), _m = benchmark(_query, db, tscalar, [Count()], "Query 1")
    assert n == TABLE1_ROWS


def test_query2_count_vector(benchmark, table1_db):
    db, _ts, tvector, _values = table1_db
    (n,), _m = benchmark(_query, db, tvector, [Count()], "Query 2")
    assert n == TABLE1_ROWS


def test_query3_sum_scalar(benchmark, table1_db):
    db, tscalar, _tv, values = table1_db
    (total,), _m = benchmark(_query, db, tscalar, [Sum(Col("v1"))],
                             "Query 3")
    assert total == pytest.approx(values[:, 0].sum())


def test_query4_sum_udf_item(benchmark, table1_db):
    db, _ts, tvector, values = table1_db
    aggs = [Sum(ScalarUdf(_item, Col("v"), Const(0),
                          body_cost="item", name="Item_1"))]
    (total,), _m = benchmark(_query, db, tvector, aggs, "Query 4")
    assert total == pytest.approx(values[:, 0].sum())


def test_query5_sum_empty_udf(benchmark, table1_db):
    db, _ts, tvector, _values = table1_db
    aggs = [Sum(ScalarUdf(_empty, Col("v"), Const(0),
                          body_cost="empty", name="EmptyFunction"))]
    (total,), _m = benchmark(_query, db, tvector, aggs, "Query 5")
    assert total == 0.0


def test_table1_projected_shape(table1_db):
    """Paper-scale projections reproduce Table 1 within tolerance."""
    db, tscalar, tvector, _values = table1_db
    ex = Executor(db)
    factor = PAPER_ROWS / TABLE1_ROWS

    def project(table, aggs, label):
        (_,), m = ex.run(table, aggs, label=label)
        return m.scaled(factor, fixed_random_reads=m.random_reads)

    q1 = project(tscalar, [Count()], "Query 1")
    q2 = project(tvector, [Count()], "Query 2")
    q3 = project(tscalar, [Sum(Col("v1"))], "Query 3")
    q4 = project(tvector, [Sum(ScalarUdf(
        _item, Col("v"), Const(0), body_cost="item"))], "Query 4")
    q5 = project(tvector, [Sum(ScalarUdf(
        _empty, Col("v"), Const(0), body_cost="empty"))], "Query 5")

    paper = {"q1": (18, 45, 1150), "q2": (25, 38, 1150),
             "q3": (18, 90, 1150), "q4": (133, 98, 215),
             "q5": (109, 99, 265)}
    got = {"q1": q1, "q2": q2, "q3": q3, "q4": q4, "q5": q5}
    for key, (t_ref, cpu_ref, io_ref) in paper.items():
        m = got[key]
        assert m.sim_exec_seconds == pytest.approx(t_ref, rel=0.25), key
        assert m.cpu_percent == pytest.approx(cpu_ref, abs=15), key
        assert m.io_mb_per_s == pytest.approx(io_ref, rel=0.25), key
