"""Benchmark: the morsel-driven parallel engine vs worker count.

Times the two shapes the parallel engine was built for — the
``SUM(Item_1(v, 0))`` full-table scan and a GROUP BY aggregate — on
the vector engine and on ``engine="parallel"`` at 1, 2 and 4 workers,
asserting bit-identical values throughout.  ``parallel_speedups`` is
what ``collect_results.py`` records into ``results.json``.

The ≥1.8x speedup assertion only runs on hosts with at least four
cores: on a one-CPU container the workers time-slice one core and the
honest measurement is a slowdown (process-pool overhead with no
parallel hardware underneath).
"""

import os
import struct
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray

#: Rows loaded into the benchmark table.
ROWS = int(os.environ.get("REPRO_BENCH_PARALLEL_ROWS", "20000"))

WORKER_COUNTS = (1, 2, 4)

SCAN_SQL = "SELECT SUM(FloatArray.Item_1(v, 0)), COUNT(*) FROM tp"
GROUP_SQL = ("SELECT k, SUM(FloatArray.Item_1(v, 1)), COUNT(*) "
             "FROM tp GROUP BY k")


def build_session(rows: int = ROWS) -> SqlSession:
    db = Database()
    table = db.create_table(
        "tp", [Column("id", "bigint"), Column("k", "int"),
               Column("v", "varbinary", cap=100)])
    values = np.random.default_rng(1).standard_normal((rows, 5))
    table.insert_many(
        (i, i % 8, FloatArray.Vector_5(*values[i]))
        for i in range(rows))
    return SqlSession(db)


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    if isinstance(value, (tuple, list)):
        return tuple(_bits(v) for v in value)
    return value


def _run(session, sql, engine, workers=None):
    t0 = time.perf_counter()
    values, metrics = session.query(sql, engine=engine, workers=workers)
    return time.perf_counter() - t0, values, metrics


def _best(session, sql, engine, workers=None, repeats=3):
    timings = []
    values = None
    for _ in range(repeats):
        t, values, _m = _run(session, sql, engine, workers)
        timings.append(t)
    return min(timings), values


def parallel_speedups(session, worker_counts=WORKER_COUNTS) -> dict:
    """Vector/parallel wall-time ratios per worker count (>1 means the
    parallel engine wins), with bit-identical values asserted.  Used by
    ``collect_results.py``."""
    out = {}
    for label, sql in (("item_scan", SCAN_SQL),
                       ("group_by", GROUP_SQL)):
        t_vec, ref = _best(session, sql, "vector")
        per_workers = {}
        for workers in worker_counts:
            t_par, vals = _best(session, sql, "parallel", workers)
            assert _bits(vals) == _bits(ref), (label, workers)
            per_workers[str(workers)] = t_vec / max(t_par, 1e-9)
        out[label] = per_workers
    return out


@pytest.fixture(scope="module")
def session():
    s = build_session()
    yield s
    pool = getattr(s.db, "_worker_pool", None)
    if pool is not None:
        pool.shutdown()


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("sql", [SCAN_SQL, GROUP_SQL])
def test_parallel_matches_vector(session, sql, workers):
    """Single pass (CI smoke): identical values, honest engine tag."""
    _t, ref, _m = _run(session, sql, "vector")
    _t, vals, m = _run(session, sql, "parallel", workers)
    assert _bits(vals) == _bits(ref)
    assert m.engine == "parallel"
    assert m.workers == workers


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 physical cores")
def test_item_scan_speedup_at_least_1_8x_at_4_workers(session):
    """The acceptance bar, on real parallel hardware only."""
    speedups = parallel_speedups(session)
    assert speedups["item_scan"]["4"] >= 1.8, speedups


def shm_vs_file_numbers(rows: int = ROWS, workers: int = 4,
                        iterations: int = 5) -> dict:
    """Snapshot shipping: shared-memory segments vs the temp-file
    fallback, on the grouped-UDF shape with the table dirtied before
    every query so each run pays a real snapshot cut.

    Each mode gets its own session (and worker pool) built under the
    matching ``REPRO_SHM`` setting; pool spawn happens outside the
    timed region.  Reported per mode: best-of-N wall seconds for one
    dirty-table grouped query, plus the file/shm ratio (>1 means the
    shared-memory path wins).  Used by ``collect_results.py``.
    """
    out: dict = {}
    values = {}
    saved = os.environ.get("REPRO_SHM")
    try:
        for mode in ("shm", "file"):
            os.environ["REPRO_SHM"] = "on" if mode == "shm" else "off"
            session = build_session(rows)
            table = session.db.tables["tp"]
            next_id = rows
            # Spawn the pool and ship the first snapshot untimed.
            _run(session, GROUP_SQL, "parallel", workers)
            timings = []
            for _ in range(iterations):
                table.insert((next_id, next_id % 8,
                              FloatArray.Vector_5(*([0.0] * 5))))
                next_id += 1
                t, vals, metrics = _run(session, GROUP_SQL,
                                        "parallel", workers)
                assert metrics.engine == "parallel"
                timings.append(t)
            values[mode] = _bits(vals)
            out[mode + "_seconds"] = min(timings)
            pool = getattr(session.db, "_worker_pool", None)
            if pool is not None:
                pool.shutdown()
    finally:
        if saved is None:
            os.environ.pop("REPRO_SHM", None)
        else:
            os.environ["REPRO_SHM"] = saved
    assert values["shm"] == values["file"]
    out["speedup"] = out["file_seconds"] / max(out["shm_seconds"],
                                               1e-9)
    return out


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="shm-vs-file needs >= 4 physical cores")
def test_shm_snapshot_beats_file_reopen(session):
    """The data-plane acceptance bar: shipping dirty-table snapshots
    through shared memory beats the temp-file path on the grouped
    shape (write-once/attach-many vs write-once/reopen-per-worker)."""
    numbers = shm_vs_file_numbers(rows=min(ROWS, 10_000), workers=4,
                                  iterations=3)
    assert numbers["speedup"] > 1.0, numbers
