"""Benchmark: the Section 6.2 storage-overhead claim.

"This second table had 24 bytes overhead per row resulting from the
vector headers which made the whole table 43 % bigger."

Also measures insert throughput for the two layouts (the cost of
paying the header at load time).
"""

import numpy as np
import pytest

from repro.core import SHORT_HEADER_SIZE
from repro.engine import Column, Database
from repro.tsql import FloatArray


def test_header_is_24_bytes():
    blob = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
    assert len(blob) - 5 * 8 == SHORT_HEADER_SIZE == 24


def test_vector_table_size_ratio(table1_db):
    _db, tscalar, tvector, _values = table1_db
    ratio = tvector.data_bytes() / tscalar.data_bytes()
    # Paper: 43 % bigger.
    assert ratio == pytest.approx(1.43, abs=0.10)


def _load_scalar(rows):
    db = Database()
    t = db.create_table("s", [Column("id", "bigint")] +
                        [Column(f"v{i}", "float") for i in range(1, 6)])
    values = np.random.default_rng(0).standard_normal((rows, 5))
    for i in range(rows):
        t.insert((i, *values[i]))
    return t


def _load_vector(rows):
    db = Database()
    t = db.create_table("v", [Column("id", "bigint"),
                              Column("v", "varbinary", cap=100)])
    values = np.random.default_rng(0).standard_normal((rows, 5))
    for i in range(rows):
        t.insert((i, FloatArray.Vector_5(*values[i])))
    return t


def test_load_scalar_table(benchmark):
    t = benchmark(_load_scalar, 2000)
    assert t.row_count == 2000


def test_load_vector_table(benchmark):
    t = benchmark(_load_vector, 2000)
    assert t.row_count == 2000
