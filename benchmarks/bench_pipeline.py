"""Benchmark: the zero-copy data plane — pipelined prepared
statements vs serial round trips, and partial-blob wire traffic vs
whole-blob shipping.

Two measurements, both against a live in-process server:

* **Pipelining.**  ``depth`` point SELECTs sent as one ``pexec``
  batch (one write, one drain, N replies) vs the same statements as
  serial ``query`` round trips.  The win is round-trip amortization
  plus the server-side plan cache: parse/plan happens once per
  statement text, not once per call.  ``pipeline_numbers`` is what
  ``collect_results.py`` records into ``results.json``; the direct
  run asserts the >= 3x acceptance bar.
* **Partial reads.**  A byte-range ``bquery`` against a multi-MB blob
  vs shipping the whole blob, with the wire-traffic invariant
  asserted: a partial read moves at most ``slice + chunk`` payload
  bytes, never the blob.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py          # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke  # CI
"""

import json
import os
import sys
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.server import ArrayClient, ServerConfig, ServerThread

#: Rows in the point-SELECT table.
ROWS = int(os.environ.get("REPRO_BENCH_PIPELINE_ROWS", "2000"))

#: Stored blob size for the partial-read half.
BLOB_BYTES = int(os.environ.get("REPRO_BENCH_PIPELINE_BLOB",
                                str(4 * 1024 * 1024)))

#: Statements per pipelined batch.
DEPTH = 128

BLOB_SQL = "SELECT MAX(v) FROM tblob WHERE id = 1"


def make_db(rows: int = ROWS, blob_bytes: int = BLOB_BYTES) -> Database:
    db = Database()
    tq = db.create_table(
        "tq", [Column("id", "bigint"), Column("x", "float")])
    rng = np.random.default_rng(0)
    tq.insert_many((i, float(v))
                   for i, v in enumerate(rng.standard_normal(rows)))
    tblob = db.create_table(
        "tblob", [Column("id", "bigint"),
                  Column("v", "varbinary_max")])
    tblob.insert((1, rng.integers(0, 256, blob_bytes,
                                  dtype=np.uint8).tobytes()))
    return db


#: Distinct statement texts in the workload — a prepared-statement
#: client prepares a handful of queries and executes them over and
#: over, so all but the first execution of each text hits the
#: server-side plan cache.
DISTINCT = 8


def point_statements(n: int, rows: int = ROWS) -> list:
    rng = np.random.default_rng(1)
    ids = [int(rng.integers(0, rows)) for _ in range(DISTINCT)]
    return [f"SELECT SUM(x) FROM tq WHERE id = {ids[i % DISTINCT]}"
            for i in range(n)]


def pipeline_numbers(port: int, statements: int = 512,
                     depth: int = DEPTH) -> dict:
    """Serial vs pipelined qps over the same point-SELECT stream,
    with identical answers asserted.

    The serial side is the pre-existing wire: one ``query`` frame,
    one round trip, parse and plan on every call.  The pipelined side
    is the new data plane: statements prepared once, then ``depth``
    ``pexec`` frames per write with the replies drained in order.
    """
    sqls = point_statements(statements)
    with ArrayClient("127.0.0.1", port) as client:
        for sql in sqls[:DISTINCT]:
            client.prepare(sql)
        client.query(sqls[0], cold=False)  # connection warm-up
        t0 = time.perf_counter()
        serial = [client.query(sql, cold=False).scalar()
                  for sql in sqls]
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        pipelined = []
        for start in range(0, len(sqls), depth):
            batch = sqls[start:start + depth]
            pipelined.extend(r.scalar() for r in
                             client.query_pipeline(batch, cold=False))
        t_pipeline = time.perf_counter() - t0
    assert pipelined == serial
    return {
        "statements": statements,
        "depth": depth,
        "serial_qps": statements / max(t_serial, 1e-9),
        "pipelined_qps": statements / max(t_pipeline, 1e-9),
        "speedup": t_serial / max(t_pipeline, 1e-9),
    }


def partial_numbers(port: int, slice_bytes: int = 64 * 1024) -> dict:
    """Whole-blob vs partial-read wire traffic, bit-identical slices
    and the <= slice + chunk payload bound asserted."""
    from repro.server.protocol import DEFAULT_CHUNK_BYTES

    with ArrayClient("127.0.0.1", port) as client:
        full = client.query_blob(BLOB_SQL, cold=False)
        offset = full.blob_len // 3
        part = client.query_blob(BLOB_SQL, offset=offset,
                                 length=slice_bytes, cold=False)
    assert part.data == full.data[offset:offset + slice_bytes]
    assert part.wire_bytes <= slice_bytes + DEFAULT_CHUNK_BYTES, \
        (part.wire_bytes, slice_bytes)
    return {
        "blob_bytes": full.blob_len,
        "slice_bytes": slice_bytes,
        "full_wire_bytes": full.wire_bytes,
        "partial_wire_bytes": part.wire_bytes,
        "wire_savings": full.wire_bytes / max(part.wire_bytes, 1),
    }


# -- pytest smoke (CI: parity single-pass, no timing assertions) ------------

@pytest.fixture(scope="module")
def server():
    with ServerThread(make_db(rows=500, blob_bytes=256 * 1024)) \
            as handle:
        yield handle


def test_pipeline_matches_serial(server):
    sqls = point_statements(16, rows=500)
    with ArrayClient("127.0.0.1", server.port) as client:
        serial = [client.query(sql).scalar() for sql in sqls]
        pipelined = [r.scalar()
                     for r in client.query_pipeline(sqls)]
    assert pipelined == serial


def test_partial_read_wire_bound(server):
    from repro.server.protocol import DEFAULT_CHUNK_BYTES

    with ArrayClient("127.0.0.1", server.port) as client:
        full = client.query_blob(BLOB_SQL)
        part = client.query_blob(BLOB_SQL, offset=1000, length=8192)
    assert part.data == full.data[1000:9192]
    assert part.wire_bytes <= 8192 + DEFAULT_CHUNK_BYTES


# -- direct run -------------------------------------------------------------

def main(argv) -> int:
    smoke = "--smoke" in argv
    rows = 500 if smoke else ROWS
    blob_bytes = 256 * 1024 if smoke else BLOB_BYTES
    statements = 64 if smoke else 512
    with ServerThread(make_db(rows=rows, blob_bytes=blob_bytes)) \
            as handle:
        pipeline = pipeline_numbers(handle.port,
                                    statements=statements)
        partial = partial_numbers(
            handle.port,
            slice_bytes=min(64 * 1024, blob_bytes // 4))
    print(json.dumps({"pipeline": pipeline, "partial": partial},
                     indent=2))
    if not smoke:
        assert pipeline["speedup"] >= 3.0, (
            f"pipelined wire must beat serial round trips >= 3x, "
            f"got {pipeline['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
