"""Benchmark/ablation: buffer-pool cache effects and the seek plan.

The paper cleared the cache before every run ("The database server
cache was explicitly cleared before each performance test run") because
warm-cache scans do no physical IO and would hide the effect under
test.  This bench quantifies exactly that, plus the clustered-index
*seek* plan (point lookups by z-index/PK) the narrow science queries
rely on.
"""

import numpy as np
import pytest

from repro.engine import Col, Count, Executor, SqlSession, Sum
from repro.tsql import FloatArray


def test_cold_scan_does_physical_io(table1_db):
    db, tscalar, _tv, _values = table1_db
    ex = Executor(db)
    (_,), cold = ex.run(tscalar, [Count()], cold=True)
    assert cold.physical_reads > 0
    assert cold.io_bytes > 0


def test_warm_scan_does_no_physical_io(table1_db):
    db, tscalar, _tv, _values = table1_db
    ex = Executor(db)
    ex.run(tscalar, [Count()], cold=True)      # populate the cache
    (_,), warm = ex.run(tscalar, [Count()], cold=False)
    assert warm.physical_reads == 0
    assert warm.io_bytes == 0
    # Warm execution is pure CPU.
    assert warm.sim_exec_seconds == pytest.approx(
        warm.sim_cpu_core_seconds / warm.cores)


def test_warm_faster_than_cold_when_io_bound(table1_db):
    db, tscalar, _tv, _values = table1_db
    ex = Executor(db)
    (_,), cold = ex.run(tscalar, [Count()], cold=True)
    (_,), warm = ex.run(tscalar, [Count()], cold=False)
    assert warm.sim_exec_seconds < cold.sim_exec_seconds


def test_seek_touches_height_not_table(table1_db):
    db, tscalar, _tv, values = table1_db
    session = SqlSession(db)
    (_,), scan = session.query("SELECT COUNT(*) FROM Tscalar")
    (v,), seek = session.query(
        "SELECT SUM(v1) FROM Tscalar WHERE id = 777")
    assert v == pytest.approx(values[777, 0])
    assert seek.physical_reads <= tscalar.tree.height
    assert seek.physical_reads < scan.physical_reads / 10
    assert seek.sim_exec_seconds < scan.sim_exec_seconds / 10


def _seeks(session, n):
    total = 0.0
    for key in range(n):
        (v,), _m = session.query(
            f"SELECT SUM(v1) FROM Tscalar WHERE id = {key * 7}",
            cold=False)
        total += v
    return total


def test_point_lookup_throughput(benchmark, table1_db):
    db, _ts, _tv, _values = table1_db
    session = SqlSession(db)
    total = benchmark(_seeks, session, 50)
    assert np.isfinite(total)
