#!/usr/bin/env python
"""Regenerates the paper's Table 1.

Runs the five queries of Section 6.3 against the storage-engine
simulator at laptop scale, projects the simulated metrics to the
paper's 357 M rows, and prints the three Table 1 columns (execution
time, CPU load, IO MB/s) next to the published values.

Run:  python benchmarks/table1_harness.py [rows]
"""

import sys

import numpy as np

from repro.engine import Column, Database
from repro.tsql import FloatArray

PAPER_ROWS = 357_000_000
PAPER = {  # (exec time s, cpu %, io MB/s) from Table 1
    "Query 1": (18, 45, 1150),
    "Query 2": (25, 38, 1150),
    "Query 3": (18, 90, 1150),
    "Query 4": (133, 98, 215),
    "Query 5": (109, 99, 265),
}
SQL_TEXT = {
    "Query 1": "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
    "Query 2": "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
    "Query 3": "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
    "Query 4": "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector "
               "WITH (NOLOCK)",
    "Query 5": "SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector "
               "WITH (NOLOCK)",
}


def load_tables(rows: int):
    db = Database()
    tscalar = db.create_table(
        "Tscalar", [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tvector = db.create_table(
        "Tvector", [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)])
    rng = np.random.default_rng(0)
    values = rng.standard_normal((rows, 5))
    tscalar.insert_many((i, *values[i]) for i in range(rows))
    tvector.insert_many((i, FloatArray.Vector_5(*values[i]))
                        for i in range(rows))
    return db, tscalar, tvector


def run_queries(db, tscalar, tvector):
    """Run the five queries *verbatim* through the SQL front-end."""
    from repro.engine import SqlSession

    session = SqlSession(db)
    metrics = []
    for label, sql in SQL_TEXT.items():
        (_value,), m = session.query(sql)
        m.label = label
        metrics.append(m)
    return metrics


def main(rows: int = 20_000):
    print(f"Loading the two evaluation tables at {rows:,} rows "
          f"(paper: {PAPER_ROWS:,}) ...")
    db, tscalar, tvector = load_tables(rows)
    ratio = tvector.data_bytes() / tscalar.data_bytes()
    print(f"Tvector / Tscalar size ratio: {ratio:.2f} "
          "(paper: 1.43 — '43 % bigger')\n")

    metrics = run_queries(db, tscalar, tvector)
    factor = PAPER_ROWS / rows

    print("Table 1: Query performance test results "
          "(projected to 357 M rows)")
    print(f"{'Query':<8} {'Exec [s]':>9} {'(paper)':>8} "
          f"{'CPU [%]':>8} {'(paper)':>8} {'IO [MB/s]':>10} "
          f"{'(paper)':>8}   measured wall [s]")
    for m in metrics:
        # Every random read of these scans is index-descent seeking,
        # which stays constant with table size.
        big = m.scaled(factor, fixed_random_reads=m.random_reads)
        p = PAPER[m.label]
        print(f"{m.label:<8} {big.sim_exec_seconds:>9.0f} "
              f"{p[0]:>8} {big.cpu_percent:>8.0f} {p[1]:>8} "
              f"{big.io_mb_per_s:>10.0f} {p[2]:>8}   "
              f"{m.wall_seconds:>8.3f}")
    print()
    for label, text in SQL_TEXT.items():
        print(f"  {label}: {text}")

    q4, q5 = metrics[3], metrics[4]
    call_cost = (q5.sim_cpu_core_seconds
                 - metrics[1].sim_cpu_core_seconds) / q5.udf_calls
    extra = (q4.sim_cpu_core_seconds / q5.sim_cpu_core_seconds - 1)
    print("\nSection 7.1 decomposition:")
    print(f"  UDF call cost: {call_cost * 1e6:.2f} us/call "
          "(paper: ~2 us)")
    print(f"  item extraction adds {extra:.0%} over the empty call "
          "(paper: 22 %)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
