"""Benchmark: partial subarray reads vs whole-blob materialization.

Section 3.3's benefit of the stream wrapper: "it supports reading only
parts of the binary data if the whole array is not required.  The
latter can significantly speed up certain array subsetting operations."

Sweeps the stored-array size for a fixed 8^3 window (the 8-point
interpolation neighbourhood of Section 2.1) and reports the byte and
page savings.
"""

import numpy as np
import pytest

from repro.core import SqlArray, ops
from repro.core.partial import read_subarray
from repro.engine import BlobStore, BufferPool, PageFile


def _stored_cube(edge):
    pagefile = PageFile()
    store = BlobStore(pagefile)
    pool = BufferPool(pagefile)
    values = np.arange(edge ** 3, dtype="f8").reshape(edge, edge, edge)
    ref = store.store(SqlArray.from_numpy(values).to_blob())
    return store, pool, ref, values


def _partial(store, pool, ref):
    stream = store.open(ref, pool)
    return read_subarray(stream, (4, 4, 4), (8, 8, 8))


def _full(store, pool, ref):
    blob = store.read_all(ref, pool)
    return ops.subarray(SqlArray.from_blob(blob), (4, 4, 4), (8, 8, 8))


@pytest.mark.parametrize("edge", [16, 32, 64])
def test_partial_window_read(benchmark, edge):
    store, pool, ref, values = _stored_cube(edge)
    window = benchmark(_partial, store, pool, ref)
    np.testing.assert_array_equal(window.to_numpy(),
                                  values[4:12, 4:12, 4:12])


@pytest.mark.parametrize("edge", [16, 32, 64])
def test_full_blob_read(benchmark, edge):
    store, pool, ref, values = _stored_cube(edge)
    window = benchmark(_full, store, pool, ref)
    np.testing.assert_array_equal(window.to_numpy(),
                                  values[4:12, 4:12, 4:12])


def test_savings_grow_with_blob_size():
    """The crossover claim: the bigger the stored array, the bigger the
    partial-read win (whole-blob cost grows, window cost does not)."""
    savings = []
    for edge in (16, 32, 64):
        store, pool, ref, _values = _stored_cube(edge)
        stream = store.open(ref, pool)
        read_subarray(stream, (4, 4, 4), (8, 8, 8))
        savings.append(ref.length / stream.bytes_read)
    assert savings[0] < savings[1] < savings[2]
    assert savings[2] > 50  # 64^3 blob vs 8^3 window


def test_page_touches_scale_with_window_not_blob():
    store, pool, ref, _values = _stored_cube(64)
    pool.reset_counters()
    stream = store.open(ref, pool)
    read_subarray(stream, (4, 4, 4), (8, 8, 8))
    partial_pages = pool.counters.logical_reads

    pool.clear()
    pool.reset_counters()
    store.read_all(ref, pool)
    full_pages = pool.counters.logical_reads
    assert partial_pages < full_pages / 3
