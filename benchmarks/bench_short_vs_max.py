"""Benchmark: short (on-page) vs max (out-of-page) array access.

Section 3.3: "Access to out-of-page data is significantly slower than
on-page data because (a) traversing B-trees is more expensive than
simply addressing on-page data, and (b) out-of-page data has to go
through the ... binary stream wrapper."

Short arrays come back from a row as plain bytes (one memory copy);
max arrays require pointer-page + chunk-page fetches per access.  Both
the wall time and the page-touch counts show the gap.
"""

import numpy as np
import pytest

from repro.core import SqlArray
from repro.core.partial import read_item
from repro.engine import Column, Database
from repro.tsql import FloatArray, FloatArrayMax

N_ROWS = 500


@pytest.fixture(scope="module")
def stores():
    """One table of short vectors, one of genuinely out-of-page max
    arrays (5000 float64 = 40 kB, five blob chunks)."""
    db = Database()
    short_t = db.create_table("shorts", [
        Column("id", "bigint"), Column("v", "varbinary", cap=8000)])
    max_t = db.create_table("maxes", [
        Column("id", "bigint"), Column("v", "varbinary_max")])
    rng = np.random.default_rng(0)
    for i in range(N_ROWS):
        short_t.insert((i, SqlArray.from_numpy(
            rng.standard_normal(5)).to_blob()))
        max_t.insert((i, SqlArray.from_numpy(
            rng.standard_normal(5000)).to_blob()))
    return db, short_t, max_t


def _sum_items_short(db, table):
    total = 0.0
    for row in table.scan(db.pool):
        total += FloatArray.Item_1(row[1], 0)
    return total


def _sum_items_max_stream(db, table):
    total = 0.0
    for row in table.scan(db.pool):
        stream = row[1].open_stream(db.pool)
        total += read_item(stream, 0)
    return total


def _sum_items_max_materialize(db, table):
    total = 0.0
    for row in table.scan(db.pool):
        blob = row[1].read_all(db.pool)
        total += FloatArrayMax.Item_1(blob, 0)
    return total


def test_short_item_access(benchmark, stores):
    db, short_t, _max_t = stores
    total = benchmark(_sum_items_short, db, short_t)
    assert np.isfinite(total)


def test_max_item_access_streamed(benchmark, stores):
    db, _short_t, max_t = stores
    total = benchmark(_sum_items_max_stream, db, max_t)
    assert np.isfinite(total)


def test_max_item_access_materialized(benchmark, stores):
    db, _short_t, max_t = stores
    total = benchmark(_sum_items_max_materialize, db, max_t)
    assert np.isfinite(total)


def test_page_touch_gap(stores):
    """Out-of-page item access touches several pages per row; on-page
    access touches only the data page it already sits on."""
    db, short_t, max_t = stores
    db.pool.clear()
    db.pool.reset_counters()
    _sum_items_short(db, short_t)
    short_reads = db.pool.counters.logical_reads

    db.pool.clear()
    db.pool.reset_counters()
    _sum_items_max_stream(db, max_t)
    max_reads = db.pool.counters.logical_reads

    assert max_reads > 2 * short_reads
    # Streaming beats materializing: fewer logical page touches.
    db.pool.clear()
    db.pool.reset_counters()
    _sum_items_max_materialize(db, max_t)
    materialize_reads = db.pool.counters.logical_reads
    assert max_reads < materialize_reads
