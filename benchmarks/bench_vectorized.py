"""Benchmark: the vectorized batch engine vs the row engine.

Runs the five Table 1 query shapes (paper Section 6.3) through the SQL
front-end twice — ``engine="row"`` and ``engine="vector"`` — and checks
that the vector path returns bit-identical values with identical
simulated IO accounting while being substantially faster in wall time.

``pytest benchmarks/bench_vectorized.py --benchmark-only`` times the
vector path per query and records the row/vector speedup under each
benchmark's ``extra_info``; the plain (non-benchmark) test asserts the
headline claim — at least 5x on the Q3-shape scan
``SUM(Item_1(blob, i))``, the query the batch engine was built for.
"""

import struct
import time

import pytest

from repro.engine import SqlSession

from table1_harness import SQL_TEXT

#: The ``SUM(Item_1(blob, i))`` full-table scan ("Query 4" in the
#: harness's Table 1 numbering): one UDF call per row on the row path,
#: one NumPy gather per batch on the vector path.
ITEM_SCAN_SQL = SQL_TEXT["Query 4"]


@pytest.fixture(scope="module")
def session(table1_db):
    db, _ts, _tv, _values = table1_db
    return SqlSession(db)


def _bits(values):
    """Bit-exact comparison key (floats by IEEE-754 pattern)."""
    return tuple(
        ("f", struct.pack("<d", v)) if isinstance(v, float) else v
        for v in values)


def _run(session, sql, engine):
    t0 = time.perf_counter()
    values, metrics = session.query(sql, engine=engine)
    return time.perf_counter() - t0, values, metrics


def _strip_volatile(metrics):
    d = metrics.to_dict()
    for key in ("wall_seconds", "engine"):
        d.pop(key, None)
    return d


@pytest.mark.parametrize("label", list(SQL_TEXT))
def test_table1_shape_row_vs_vector(benchmark, session, label):
    """Each Table 1 shape: identical values + IO on both engines; the
    benchmark clock runs on the vector path."""
    sql = SQL_TEXT[label]
    t_row, row_vals, row_m = _run(session, sql, "row")
    vec_vals, vec_m = benchmark(session.query, sql, engine="vector")
    assert _bits(row_vals) == _bits(vec_vals), label
    assert _strip_volatile(row_m) == _strip_volatile(vec_m), label
    assert vec_m.engine == "vector"
    benchmark.extra_info["row_wall_seconds"] = t_row
    benchmark.extra_info["speedup_vs_row"] = \
        t_row / max(vec_m.wall_seconds, 1e-9)


def test_item_scan_speedup_at_least_5x(session):
    """The acceptance bar: >= 5x on the Q3-shape ``SUM(Item_1(v, 0))``
    scan, with bit-identical results and identical IO counters."""
    t_row, row_vals, row_m = _run(session, ITEM_SCAN_SQL, "row")
    t_vec = min(_run(session, ITEM_SCAN_SQL, "vector")[0]
                for _ in range(3))
    _t, vec_vals, vec_m = _run(session, ITEM_SCAN_SQL, "vector")
    assert _bits(row_vals) == _bits(vec_vals)
    assert _strip_volatile(row_m) == _strip_volatile(vec_m)
    assert row_m.engine == "row" and vec_m.engine == "vector"
    assert t_row / t_vec >= 5.0, \
        f"row {t_row:.3f}s / vector {t_vec:.3f}s = {t_row / t_vec:.1f}x"


def vector_speedups(session) -> dict:
    """Row/vector wall-time ratios for the five Table 1 shapes (used by
    ``collect_results.py`` to record speedups into the results JSON)."""
    speedups = {}
    for label, sql in SQL_TEXT.items():
        t_row, row_vals, _m = _run(session, sql, "row")
        t_vec = min(_run(session, sql, "vector")[0] for _ in range(3))
        _t, vec_vals, _m = _run(session, sql, "vector")
        assert _bits(row_vals) == _bits(vec_vals), label
        speedups[label] = t_row / max(t_vec, 1e-9)
    return speedups
