"""Shared fixtures for the benchmark suite.

Scale note: the paper's evaluation tables hold 357 million rows; the
benchmarks load :data:`TABLE1_ROWS` rows (the executor is pure Python)
and project simulated metrics to paper scale via
:meth:`QueryMetrics.scaled` — see ``table1_harness.py`` for the printed
Table 1 reproduction.
"""

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.tsql import FloatArray

#: Rows loaded into the evaluation tables (paper: 357,000,000).
TABLE1_ROWS = 20_000

#: The paper's row count, used to project simulated metrics.
PAPER_ROWS = 357_000_000


@pytest.fixture(scope="session")
def table1_db():
    """The two Section 6.2 evaluation tables, loaded once per run."""
    db = Database()
    tscalar = db.create_table(
        "Tscalar",
        [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tvector = db.create_table(
        "Tvector",
        [Column("id", "bigint"), Column("v", "varbinary", cap=100)])
    rng = np.random.default_rng(0)
    values = rng.standard_normal((TABLE1_ROWS, 5))
    tscalar.insert_many((i, *values[i]) for i in range(TABLE1_ROWS))
    tvector.insert_many((i, FloatArray.Vector_5(*values[i]))
                        for i in range(TABLE1_ROWS))
    return db, tscalar, tvector, values
