"""Benchmark: the Section 2.1 turbulence interpolation service.

Measures particle-interpolation throughput per kernel, and the
partial-read vs whole-blob byte traffic across blob sizes — the
quantified version of "Accessing the whole blob (6 MB) for an 8-point
3D interpolation is obviously overkill.  By using much smaller blobs
... we could have a much lower overhead on disk IOs."
"""

import numpy as np
import pytest

from repro.science.turbulence import (
    BlobPartitioner,
    MemoryBlobBackend,
    ParticleQueryService,
    TurbulenceStore,
    make_field,
)

GRID = 64


@pytest.fixture(scope="module")
def store():
    field = make_field(GRID, seed=0)
    s = TurbulenceStore(BlobPartitioner(GRID, 16, 4),
                        MemoryBlobBackend())
    s.load_field(field)
    return field, s


@pytest.fixture(scope="module")
def particles():
    field = make_field(8, seed=1)  # just for the box size constant
    rng = np.random.default_rng(3)
    return rng.random((200, 3)) * field.box_size


@pytest.mark.parametrize("kernel", ["nearest", "lagrange4", "lagrange6",
                                    "lagrange8", "pchip"])
def test_interpolation_throughput(benchmark, store, particles, kernel):
    _field, s = store
    svc = ParticleQueryService(s, kernel)
    values, _stats = benchmark(svc.query, particles)
    assert np.isfinite(values).all()


def test_partial_vs_full_byte_traffic(store, particles):
    _field, s = store
    svc = ParticleQueryService(s, "lagrange8")
    _v, partial = svc.query(particles)
    _v, full = svc.query_full_read(particles)
    assert partial.bytes_read < full.bytes_read
    # Per-particle traffic: an 8^3 x 4-component float32 window is 8 kB
    # + header; whole blobs are hundreds of kB.
    per_particle = partial.bytes_read / partial.particles
    assert per_particle < 20_000


def test_savings_grow_with_blob_size():
    """The paper's blob-size experiment: with bigger blobs (they use
    6 MB) the whole-blob baseline gets worse while partial reads stay
    flat."""
    field = make_field(GRID, seed=0)
    rng = np.random.default_rng(5)
    particles = rng.random((100, 3)) * field.box_size
    ratios = []
    for cube in (8, 16, 32):
        s = TurbulenceStore(BlobPartitioner(GRID, cube, 4),
                            MemoryBlobBackend())
        s.load_field(field)
        svc = ParticleQueryService(s, "lagrange8")
        _v, stats = svc.query(particles)
        ratios.append(stats.full_blob_bytes / stats.bytes_read)
    # Bigger blobs make whole-blob reading strictly worse than partial
    # reads; the middle point wobbles with how many blobs the batch
    # touches, so assert the endpoints and a floor.
    assert ratios[-1] > ratios[0]
    assert min(ratios) > 5


def test_temporal_query_throughput(benchmark, particles):
    """Position-and-time queries (the full service contract)."""
    from repro.science.turbulence import (SnapshotSeries,
                                          TemporalQueryService)
    series = SnapshotSeries(BlobPartitioner(32, 16, 4))
    for step in range(3):
        series.add_snapshot(float(step), make_field(32, seed=step))
    svc = TemporalQueryService(series, "lagrange4")
    times = np.random.default_rng(9).uniform(0.0, 2.0, len(particles))
    pos = np.mod(particles, series.store_at(0).box_size)
    values, _stats = benchmark(svc.query, pos, times)
    assert np.isfinite(values).all()


def test_subdomain_extraction(benchmark, store):
    """Sub-domain grabs reassembled from partial blob reads."""
    from repro.science.turbulence import extract_subdomain
    _field, s = store
    data, stats = benchmark(extract_subdomain, s, (8, 8, 8),
                            (40, 40, 40))
    assert data.shape == (4, 32, 32, 32)
    assert stats.savings_factor > 1
