"""Benchmark: math-library interop (paper Sections 3.6 and 5.3).

The paper's claims: calling LAPACK "only requires marshaling pointers
between .NET and the native code, the overhead of these calls is
negligible once the whole array is loaded into memory"; FFTW "requires
specially aligned memory buffers ... a memory copy into a pre-aligned
buffer is necessary but the performance gain is usually worth the
otherwise expensive operation."

Measured here: gesvd and FFT end-to-end over SQL arrays across sizes,
plus the aligned-copy step in isolation (to show it is a small share
of a transform).
"""

import numpy as np
import pytest

from repro.core import SqlArray
from repro.mathlib import (
    aligned_copy,
    fft_forward,
    gesvd,
    nnls,
    solve_lstsq,
)


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    return {
        ("svd", n): SqlArray.from_numpy(rng.standard_normal((n, n)))
        for n in (16, 64, 128)
    } | {
        ("fft", n): SqlArray.from_numpy(rng.standard_normal(n))
        for n in (1024, 16384, 262144)
    }


@pytest.mark.parametrize("n", [16, 64, 128])
def test_gesvd(benchmark, arrays, n):
    u, s, vt = benchmark(gesvd, arrays[("svd", n)])
    assert s.shape == (n,)


@pytest.mark.parametrize("n", [1024, 16384, 262144])
def test_fft_forward(benchmark, arrays, n):
    out = benchmark(fft_forward, arrays[("fft", n)])
    assert out.shape == (n,)


@pytest.mark.parametrize("n", [16384, 262144])
def test_aligned_copy_overhead(benchmark, n):
    """The FFTW pre-aligned buffer copy in isolation."""
    values = np.random.default_rng(1).standard_normal(n)
    out = benchmark(aligned_copy, values)
    assert out.shape == (n,)


def test_lstsq(benchmark):
    rng = np.random.default_rng(2)
    a = SqlArray.from_numpy(rng.standard_normal((500, 20)))
    b = SqlArray.from_numpy(rng.standard_normal(500))
    x = benchmark(solve_lstsq, a, b)
    assert x.shape == (20,)


def test_nnls(benchmark):
    rng = np.random.default_rng(3)
    a = np.abs(rng.standard_normal((100, 20)))
    b = rng.standard_normal(100)
    x, _rnorm = benchmark(nnls, a, b)
    assert (x >= 0).all()


def test_marshalling_is_cheap_relative_to_svd():
    """'The overhead of these calls is negligible': blob decode +
    column-major handoff is a small fraction of the 128x128 SVD."""
    import time
    rng = np.random.default_rng(4)
    arr = SqlArray.from_numpy(rng.standard_normal((128, 128)))

    t0 = time.perf_counter()
    for _ in range(50):
        arr.to_numpy()
    marshal = (time.perf_counter() - t0) / 50

    t0 = time.perf_counter()
    for _ in range(10):
        gesvd(arr)
    svd = (time.perf_counter() - t0) / 10

    assert marshal < svd / 5
