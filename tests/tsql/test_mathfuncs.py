"""Tests for the math-library UDFs on the T-SQL schemas (Section 5.3)."""

import numpy as np
import pytest

from repro.core import SqlArray, TypeMismatchError
from repro.tsql import (
    ComplexArray,
    FloatArray,
    FloatArrayMax,
    IntArray,
    MATH_EXPORTS,
    RealArray,
)


def _blob(values, storage=None):
    return SqlArray.from_numpy(np.asarray(values), storage=storage) \
        .to_blob()


class TestAvailability:
    def test_float_and_complex_schemas_have_math(self):
        for schema in (FloatArray, FloatArrayMax, RealArray,
                       ComplexArray):
            for name in MATH_EXPORTS:
                assert callable(getattr(schema, name)), name

    def test_integer_schemas_do_not(self):
        assert not hasattr(IntArray, "FFTForward")
        assert not hasattr(IntArray, "SvdValues")


class TestFFT:
    def test_paper_example(self):
        # SET @ft = FloatArrayMax.FFTForward(@a)
        a = SqlArray.from_numpy(
            np.sin(2 * np.pi * 3 * np.arange(32) / 32),
            storage=2).to_blob()
        ft = FloatArrayMax.FFTForward(a)
        spectrum = SqlArray.from_blob(ft)
        assert spectrum.dtype.is_complex
        mags = np.abs(spectrum.to_numpy())
        assert int(np.argmax(mags[:16])) == 3

    def test_roundtrip_through_complex_schema(self):
        a = _blob(np.random.default_rng(0).standard_normal(16))
        ft = FloatArray.FFTForward(a)
        back = ComplexArray.FFTInverse(ft)
        out = SqlArray.from_blob(back).to_numpy()
        np.testing.assert_allclose(
            out.real, SqlArray.from_blob(a).to_numpy(), atol=1e-12)

    def test_power_spectrum_real(self):
        a = _blob(np.random.default_rng(1).standard_normal(8))
        p = SqlArray.from_blob(FloatArray.PowerSpectrum(a))
        assert not p.dtype.is_complex
        assert (p.to_numpy() >= 0).all()

    def test_wrong_schema_rejected(self):
        a = _blob(np.zeros(4, dtype="f4"))
        with pytest.raises(TypeMismatchError):
            FloatArray.FFTForward(a)  # float32 blob on float64 schema


class TestSVD:
    def test_values_match_numpy(self):
        m = np.random.default_rng(2).standard_normal((5, 3))
        sv = SqlArray.from_blob(FloatArray.SvdValues(_blob(m)))
        np.testing.assert_allclose(sv.to_numpy(),
                                   np.linalg.svd(m, compute_uv=False),
                                   atol=1e-10)

    def test_factors_reconstruct(self):
        m = np.random.default_rng(3).standard_normal((4, 4))
        blob = _blob(m)
        u = SqlArray.from_blob(FloatArray.SvdU(blob)).to_numpy()
        s = SqlArray.from_blob(FloatArray.SvdValues(blob)).to_numpy()
        vt = SqlArray.from_blob(FloatArray.SvdVT(blob)).to_numpy()
        np.testing.assert_allclose(u @ np.diag(s) @ vt, m, atol=1e-10)


class TestFitting:
    def test_lstsq(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((20, 3))
        x_true = np.array([1.0, -2.0, 3.0])
        b = a @ x_true
        x = SqlArray.from_blob(
            FloatArray.Lstsq(_blob(a), _blob(b))).to_numpy()
        np.testing.assert_allclose(x, x_true, atol=1e-10)

    def test_masked_lstsq_via_schema(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((20, 2))
        x_true = np.array([2.0, 1.0])
        b = a @ x_true
        b[3] = 1e9
        mask = np.ones(20, dtype="i2")
        mask[3] = 0
        x = SqlArray.from_blob(FloatArray.MaskedLstsq(
            _blob(a), _blob(b),
            SqlArray.from_numpy(mask, "int16").to_blob())).to_numpy()
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_nnls(self):
        rng = np.random.default_rng(6)
        a = np.abs(rng.standard_normal((15, 4)))
        x_true = np.array([0.0, 1.0, 0.0, 2.0])
        b = a @ x_true
        x = SqlArray.from_blob(
            FloatArray.Nnls(_blob(a), _blob(b))).to_numpy()
        np.testing.assert_allclose(x, x_true, atol=1e-8)
        assert FloatArray.NnlsResidual(_blob(a), _blob(b)) == \
            pytest.approx(0.0, abs=1e-8)


class TestLinearAlgebra:
    def test_matmul_and_transpose(self):
        a = np.arange(6, dtype="f8").reshape(2, 3)
        b = np.arange(12, dtype="f8").reshape(3, 4)
        out = SqlArray.from_blob(
            FloatArray.MatMul(_blob(a), _blob(b))).to_numpy()
        np.testing.assert_allclose(out, a @ b)
        t = SqlArray.from_blob(FloatArray.Transpose(_blob(a))).to_numpy()
        np.testing.assert_allclose(t, a.T)

    def test_storage_class_follows_schema(self):
        m = np.random.default_rng(7).standard_normal((4, 4))
        blob_max = SqlArray.from_numpy(m, storage=2).to_blob()
        out = FloatArrayMax.SvdValues(blob_max)
        assert not SqlArray.from_blob(out).is_short


class TestSqlIntegration:
    def test_fft_and_svd_in_sqlite(self):
        from repro.sqlbind import connect
        conn = connect()
        row = conn.execute(
            "SELECT ComplexArray_Count(FloatArray_FFTForward("
            "FloatArray_Vector_4(1, 0, -1, 0)))").fetchone()[0]
        assert row == 4
        sv = conn.execute(
            "SELECT FloatArray_ToString(FloatArray_SvdValues("
            "FloatArray_Matrix_2(3, 0, 0, 4)))").fetchone()[0]
        assert sv == "float64[2]{4.0,3.0}"
