"""Tests for the array-notation pre-parser (Section 8's wished-for
syntactic sugar)."""

import numpy as np
import pytest

from repro.core import SqlArray
from repro.tsql import FloatArray, IntArray
from repro.tsql.parser import ArrayExpressionError, evaluate, parse, \
    translate


@pytest.fixture
def env():
    return {
        "a": FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0),
        "b": FloatArray.Vector_5(10.0, 20.0, 30.0, 40.0, 50.0),
        "m": SqlArray.from_numpy(
            np.arange(12, dtype="f8").reshape(3, 4)).to_blob(),
        "k": 2,
    }


SCHEMAS = {"a": "FloatArray", "b": "FloatArray", "m": "FloatArray"}


class TestEvaluate:
    def test_item(self, env):
        assert evaluate("a[3]", env) == 4.0

    def test_item_2d(self, env):
        m = SqlArray.from_blob(env["m"]).to_numpy()
        assert evaluate("m[2, 1]", env) == m[2, 1]

    def test_index_with_variable(self, env):
        assert evaluate("a[k]", env) == 3.0

    def test_slice(self, env):
        out = evaluate("a[1:4]", env)
        np.testing.assert_array_equal(out.to_numpy(), [2.0, 3.0, 4.0])

    def test_mixed_slice_collapses(self, env):
        out = evaluate("m[0:3, 1]", env)
        assert out.shape == (3,)

    def test_assignment_returns_new_array(self, env):
        out = evaluate("a[2] := 99.0", env)
        assert isinstance(out, SqlArray)
        assert out.to_numpy()[2] == 99.0
        # Original blob unchanged.
        assert SqlArray.from_blob(env["a"]).to_numpy()[2] == 3.0

    def test_arithmetic(self, env):
        out = evaluate("a + b", env)
        np.testing.assert_array_equal(
            out.to_numpy(), [11.0, 22.0, 33.0, 44.0, 55.0])
        out = evaluate("a * 2 + 1", env)
        np.testing.assert_array_equal(
            out.to_numpy(), [3.0, 5.0, 7.0, 9.0, 11.0])
        out = evaluate("-a", env)
        assert out.to_numpy()[0] == -1.0

    def test_aggregate_functions(self, env):
        assert evaluate("sum(a)", env) == 15.0
        assert evaluate("mean(a)", env) == 3.0
        assert evaluate("max(a[0:2])", env) == 2.0

    def test_dot_and_reshape(self, env):
        assert evaluate("dot(a, b)", env) == 550.0
        out = evaluate("reshape(a[0:4], 2, 2)", env)
        assert out.shape == (2, 2)

    def test_scalar_arithmetic(self, env):
        assert evaluate("2 + 3 * 4", env) == 14
        assert evaluate("(2 + 3) * 4", env) == 20

    def test_nested_expression(self, env):
        assert evaluate("sum(a[1:4] * 2)", env) == 18.0

    def test_unknown_name(self, env):
        with pytest.raises(ArrayExpressionError):
            evaluate("zz[0]", env)

    def test_unknown_function(self, env):
        with pytest.raises(ArrayExpressionError):
            evaluate("median(a)", env)

    def test_empty_slice_rejected(self, env):
        with pytest.raises(ArrayExpressionError):
            evaluate("a[3:3]", env)

    def test_assign_to_slice_rejected(self, env):
        with pytest.raises(ArrayExpressionError):
            evaluate("a[0:2] := 1.0", env)

    def test_syntax_errors(self, env):
        for bad in ["a[", "a[1", "sum(", "a +", "1 2", "a[1,]", "$x"]:
            with pytest.raises(ArrayExpressionError):
                evaluate(bad, env)


class TestTranslate:
    def test_item(self):
        assert translate("m[1, 0]", SCHEMAS) == \
            "FloatArray.Item_2(@m, 1, 0)"

    def test_subarray(self):
        sql = translate("a[1:6]", SCHEMAS)
        assert sql.startswith("FloatArray.Subarray(@a, ")
        assert "IntArray.Vector_1(1)" in sql

    def test_update(self):
        assert translate("a[2] := 4.5", SCHEMAS) == \
            "FloatArray.UpdateItem_1(@a, 2, 4.5)"

    def test_arithmetic(self):
        assert translate("a + b", SCHEMAS) == "FloatArray.Add(@a, @b)"
        assert translate("a * 2", SCHEMAS) == "FloatArray.Scale(@a, 2)"

    def test_aggregates(self):
        assert translate("sum(a)", SCHEMAS) == "FloatArray.Sum(@a)"
        assert translate("dot(a, b)", SCHEMAS) == \
            "FloatArray.Dot(@a, @b)"

    def test_reshape(self):
        assert translate("reshape(a, 2, 3)", SCHEMAS) == \
            "FloatArray.Reshape(@a, IntArray.Vector_2(2, 3))"

    def test_scalar_expression(self):
        assert translate("1 + 2", SCHEMAS) == "(1 + 2)"

    def test_undeclared_variable_is_scalar(self):
        # Scalars pass through as parameters.
        assert translate("a[n]", SCHEMAS) == "FloatArray.Item_1(@a, @n)"

    def test_indexing_scalar_rejected(self):
        with pytest.raises(ArrayExpressionError):
            translate("n[0]", SCHEMAS)


class TestEvalTranslateConsistency:
    """The translated SQL, executed through the namespaces, must agree
    with direct evaluation."""

    def test_item_consistency(self, env):
        sql = translate("m[2, 1]", SCHEMAS)
        # Execute the translation by hand.
        from repro.tsql import FloatArray as F
        value = F.Item_2(env["m"], 2, 1)
        assert value == evaluate("m[2, 1]", env)
        assert sql == "FloatArray.Item_2(@m, 2, 1)"

    def test_add_consistency(self, env):
        from repro.tsql import FloatArray as F
        via_sql = F.Add(env["a"], env["b"])
        via_eval = evaluate("a + b", env)
        np.testing.assert_array_equal(
            SqlArray.from_blob(via_sql).to_numpy(), via_eval.to_numpy())


def test_parse_produces_ast():
    node = parse("a[1:2] + sum(b)")
    assert node is not None
