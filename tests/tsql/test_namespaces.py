"""Tests for the T-SQL-style function schemas."""

import numpy as np
import pytest

from repro.core import (
    ShapeError,
    SqlArray,
    STORAGE_MAX,
    STORAGE_SHORT,
    StorageClassError,
    TypeMismatchError,
)
from repro.tsql import (
    BigIntArray,
    ComplexArray,
    FloatArray,
    FloatArrayMax,
    FromString,
    IntArray,
    NAMESPACES,
    namespace_for,
)


class TestRegistry:
    def test_every_dtype_has_short_and_max_schema(self):
        # 8 element types x 2 storage classes.
        assert len(NAMESPACES) == 16
        assert "FloatArray" in NAMESPACES
        assert "FloatArrayMax" in NAMESPACES
        assert "TinyIntArrayMax" in NAMESPACES

    def test_namespace_for(self):
        assert namespace_for("float64", STORAGE_SHORT) is FloatArray
        assert namespace_for("float64", STORAGE_MAX) is FloatArrayMax
        assert namespace_for("bigint", STORAGE_SHORT) is BigIntArray


class TestPaperExamples:
    """The exact T-SQL snippets from Section 5.1."""

    def test_vector_5_and_item_1(self):
        a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
        assert FloatArray.Item_1(a, 3) == 4.0  # "third (zero indexed)"

    def test_matrix_2_and_item_2(self):
        m = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4)
        assert FloatArray.Item_2(m, 1, 0) == pytest.approx(0.2)

    def test_subarray_5_cube(self):
        big = SqlArray.from_numpy(
            np.arange(10 ** 3, dtype="f8").reshape(10, 10, 10),
            storage=STORAGE_MAX)
        b = FloatArrayMax.Subarray(
            big.to_blob(),
            IntArray.Vector_3(1, 4, 4),
            IntArray.Vector_3(5, 5, 5), 0)
        assert SqlArray.from_blob(b).shape == (5, 5, 5)

    def test_update_item_1(self):
        a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
        b = FloatArray.UpdateItem_1(a, 3, 4.5)
        assert FloatArray.Item_1(b, 3) == 4.5


class TestNumberedVariants:
    def test_vector_arity_enforced(self):
        with pytest.raises(ShapeError):
            FloatArray.Vector_3(1.0, 2.0)

    def test_matrix_n_takes_n_squared(self):
        m = FloatArray.Matrix_3(*range(9))
        assert SqlArray.from_blob(m).shape == (3, 3)
        with pytest.raises(ShapeError):
            FloatArray.Matrix_3(1.0, 2.0, 3.0)

    def test_item_arity_enforced(self):
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        with pytest.raises(ShapeError):
            FloatArray.Item_2(m, 0)

    def test_zeros_and_fill(self):
        z = IntArray.Zeros_2(3, 4)
        assert IntArray.Count(z) == 12
        assert IntArray.Sum(z) == 0
        f = IntArray.Fill_1(7, 5)
        assert IntArray.Sum(f) == 35

    def test_all_numbered_variants_exist(self):
        for n in range(1, 11):
            assert callable(getattr(FloatArray, f"Vector_{n}"))
        for n in range(1, 7):
            assert callable(getattr(FloatArray, f"Item_{n}"))
            assert callable(getattr(FloatArray, f"UpdateItem_{n}"))


class TestTypeAndStorageChecks:
    """The runtime mismatch detection of Section 3.5."""

    def test_wrong_dtype_rejected(self):
        a = IntArray.Vector_2(1, 2)
        with pytest.raises(TypeMismatchError):
            FloatArray.Item_1(a, 0)

    def test_wrong_storage_rejected(self):
        a = FloatArray.Vector_2(1.0, 2.0)
        with pytest.raises(StorageClassError):
            FloatArrayMax.Item_1(a, 0)

    def test_garbage_blob_rejected(self):
        from repro.core import HeaderError
        with pytest.raises(HeaderError):
            FloatArray.Item_1(b"garbage bytes here", 0)


class TestShapeIntrospection:
    def test_rank_count_dims(self):
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        assert FloatArray.Rank(m) == 2
        assert FloatArray.Count(m) == 4
        assert FloatArray.DimSize(m, 0) == 2
        dims = SqlArray.from_blob(FloatArray.Dims(m))
        np.testing.assert_array_equal(dims.to_numpy(), [2, 2])

    def test_dimsize_out_of_range(self):
        from repro.core import BoundsError
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        with pytest.raises(BoundsError):
            FloatArray.DimSize(m, 2)


class TestConversionsAndStrings:
    def test_raw_cast_roundtrip(self):
        a = FloatArray.Vector_3(1.0, 2.0, 3.0)
        raw = FloatArray.Raw(a)
        assert len(raw) == 24
        back = FloatArray.Cast(raw, IntArray.Vector_1(3))
        assert back == a

    def test_reshape(self):
        a = FloatArray.Vector_4(1.0, 2.0, 3.0, 4.0)
        m = FloatArray.Reshape(a, IntArray.Vector_2(2, 2))
        assert SqlArray.from_blob(m).shape == (2, 2)
        assert FloatArray.Item_2(m, 1, 0) == 2.0  # column-major order

    def test_storage_class_conversion(self):
        a = FloatArray.Vector_2(1.0, 2.0)
        m = FloatArray.ToMax(a)
        assert SqlArray.from_blob(m).storage == STORAGE_MAX
        s = FloatArrayMax.ToShort(m)
        assert SqlArray.from_blob(s).storage == STORAGE_SHORT

    def test_convert_to_other_type(self):
        a = IntArray.Vector_3(1, 2, 3)
        f = IntArray.ConvertTo(a, "float64")
        arr = SqlArray.from_blob(f)
        assert arr.dtype.name == "float64"
        assert arr.storage == STORAGE_SHORT

    def test_to_string_from_string(self):
        a = FloatArray.Vector_2(1.5, 2.5)
        text = FloatArray.ToString(a)
        assert FromString(text) == a


class TestTableConversion:
    def test_to_table(self):
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        rows = list(FloatArray.ToTable(m))
        assert rows[0] == (0, 0, 1.0)
        assert len(rows) == 4

    def test_concat_reader_style(self):
        rows = [(IntArray.Vector_2(i % 2, i // 2), float(i))
                for i in range(6)]
        a = FloatArray.Concat(rows, IntArray.Vector_2(2, 3))
        arr = SqlArray.from_blob(a)
        assert arr.shape == (2, 3)
        assert FloatArray.Item_2(a, 1, 2) == 5.0


class TestAggregatesAndArithmetic:
    def test_scalar_aggregates(self):
        a = FloatArray.Vector_4(1.0, 2.0, 3.0, 4.0)
        assert FloatArray.Sum(a) == 10.0
        assert FloatArray.Mean(a) == 2.5
        assert FloatArray.Min(a) == 1.0
        assert FloatArray.Max(a) == 4.0

    def test_axis_aggregates(self):
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        sums = FloatArray.SumAxis(m, 0)
        np.testing.assert_array_equal(
            SqlArray.from_blob(sums).to_numpy(), [3.0, 7.0])

    def test_arithmetic(self):
        a = FloatArray.Vector_2(1.0, 2.0)
        b = FloatArray.Vector_2(3.0, 4.0)
        assert FloatArray.Sum(FloatArray.Add(a, b)) == 10.0
        assert FloatArray.Dot(a, b) == 11.0
        scaled = FloatArray.Scale(a, 10)
        assert FloatArray.Item_1(scaled, 1) == 20.0

    def test_result_coerced_to_schema_dtype(self):
        # Divide of ints promotes to float in numpy; the Int schema
        # casts the result back, like the T-SQL function signature
        # would.
        a = IntArray.Vector_2(4, 9)
        b = IntArray.Vector_2(2, 3)
        out = SqlArray.from_blob(IntArray.Divide(a, b))
        assert out.dtype.name == "int32"
        np.testing.assert_array_equal(out.to_numpy(), [2, 3])


class TestComplexSchema:
    def test_complex_vector(self):
        a = ComplexArray.Vector_2(1 + 2j, 3 - 1j)
        assert ComplexArray.Item_1(a, 0) == 1 + 2j
        assert ComplexArray.Sum(a) == 4 + 1j
