"""Failure-injection tests: corrupted and adversarial blobs.

The header carries type and storage flags precisely so that bad input
is *detected*, not mis-read (paper Section 3.5).  These tests feed
mutated and random blobs into every entry point and require that the
library either works or raises its own error types — never crashes,
never returns silently-wrong garbage from a malformed header.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ArrayError, SqlArray, decode_header, ops
from repro.core.partial import BytesBlobStream, read_header
from repro.tsql import FloatArray, IntArray


def _valid_blob():
    return SqlArray.from_numpy(
        np.arange(12, dtype="f8").reshape(3, 4)).to_blob()


class TestBitFlips:
    @settings(max_examples=200, deadline=None)
    @given(position=st.integers(0, 23), bit=st.integers(0, 7))
    def test_header_bit_flips_never_crash(self, position, bit):
        blob = bytearray(_valid_blob())
        blob[position] ^= 1 << bit
        blob = bytes(blob)
        try:
            arr = SqlArray.from_blob(blob)
            # If the mutation survived validation the array must be
            # internally consistent.
            assert arr.count == int(np.prod(arr.shape))
            arr.to_numpy()
        except ArrayError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(cut=st.integers(0, 119))
    def test_truncations_never_crash(self, cut):
        blob = _valid_blob()[:119]
        try:
            decode_header(blob[:cut])
        except ArrayError:
            pass


class TestRandomBytes:
    @settings(max_examples=200, deadline=None)
    @given(data=st.binary(min_size=0, max_size=200))
    def test_random_blobs_rejected_cleanly(self, data):
        try:
            arr = SqlArray.from_blob(data)
            arr.to_numpy()
        except ArrayError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=0, max_size=120))
    def test_namespace_functions_reject_cleanly(self, data):
        for func in (lambda b: FloatArray.Item_1(b, 0),
                     lambda b: FloatArray.Sum(b),
                     lambda b: FloatArray.Rank(b),
                     lambda b: IntArray.Dims(b)):
            try:
                func(data)
            except ArrayError:
                pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(min_size=4, max_size=200))
    def test_stream_header_reads_reject_cleanly(self, data):
        try:
            read_header(BytesBlobStream(data))
        except ArrayError:
            pass


class TestAdversarialHeaders:
    def test_declared_size_beyond_blob(self):
        # A short header claiming 1000 elements over a tiny payload.
        from repro.core import FLOAT64, STORAGE_SHORT, encode_header
        head = encode_header(STORAGE_SHORT, FLOAT64, (10,))
        with pytest.raises(ArrayError):
            SqlArray.from_blob(head + bytes(8))  # 1 element, not 10

    def test_wrong_function_wrong_type(self):
        # The paper's motivating case: a blob passed to the wrong
        # schema's function.
        int_blob = IntArray.Vector_3(1, 2, 3)
        with pytest.raises(ArrayError):
            FloatArray.Mean(int_blob)

    def test_subarray_on_mutated_dims(self):
        blob = bytearray(_valid_blob())
        # Corrupt the first dimension size without fixing the count.
        blob[10] = 99
        with pytest.raises(ArrayError):
            ops.subarray(SqlArray.from_blob(bytes(blob)), (0, 0), (1, 1))

    def test_sqlite_udfs_convert_errors(self):
        import sqlite3

        from repro.sqlbind import connect
        conn = connect()
        for expr, params in [
                ("SELECT FloatArray_Sum(?)", (b"\x00" * 30,)),
                ("SELECT FloatArray_Item_1(?, 0)", (b"SA",)),
                ("SELECT FloatArray_Reshape(?, ?)",
                 (_valid_blob(), b"junk")),
        ]:
            with pytest.raises(sqlite3.OperationalError):
                conn.execute(expr, params).fetchone()
