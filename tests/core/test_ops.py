"""Tests for the T-SQL operation semantics (repro.core.ops)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BoundsError,
    FLOAT64,
    HeaderError,
    INT32,
    ShapeError,
    SqlArray,
    STORAGE_MAX,
    STORAGE_SHORT,
    ops,
)
from tests.conftest import dtype_strategy, small_shapes, values_for


def _arr(values, dtype="float64"):
    return SqlArray.from_numpy(np.asarray(values), dtype)


class TestItem:
    def test_vector(self):
        a = _arr([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ops.item(a, 3) == 4.0

    def test_matrix_column_major(self):
        # The paper's Matrix_2(0.1, 0.2, 0.3, 0.4) example: elements in
        # column-major order, Item_2(@m, 1, 0) is row 1 col 0.
        m = SqlArray.from_numpy(
            np.array([0.1, 0.2, 0.3, 0.4]).reshape((2, 2), order="F"))
        assert ops.item(m, 1, 0) == pytest.approx(0.2)
        assert ops.item(m, 0, 1) == pytest.approx(0.3)

    def test_returns_python_scalars(self):
        assert isinstance(ops.item(_arr([1], "int32"), 0), int)
        assert isinstance(ops.item(_arr([1.0]), 0), float)
        assert isinstance(ops.item(_arr([1 + 1j], "complex128"), 0),
                          complex)

    def test_out_of_range(self):
        a = _arr([1.0, 2.0])
        with pytest.raises(BoundsError):
            ops.item(a, 2)
        with pytest.raises(BoundsError):
            ops.item(a, -1)

    def test_wrong_index_count(self):
        with pytest.raises(BoundsError):
            ops.item(_arr([[1.0, 2.0]]), 0)

    @given(dtype=dtype_strategy(), shape=small_shapes(3, 4),
           seed=st.integers(0, 999), data=st.data())
    def test_matches_numpy_property(self, dtype, shape, seed, data):
        values = values_for(dtype, shape, seed)
        idx = tuple(data.draw(st.integers(0, s - 1)) for s in shape)
        a = SqlArray.from_numpy(values, dtype)
        assert ops.item(a, *idx) == values[idx].item()


class TestUpdateItem:
    def test_roundtrip(self):
        a = _arr([1.0, 2.0, 3.0])
        b = ops.update_item(a, [1], 9.5)
        assert ops.item(b, 1) == 9.5
        assert ops.item(a, 1) == 2.0  # original untouched (value type)

    def test_keeps_shape_and_storage(self):
        a = SqlArray.from_numpy(np.zeros((2, 3)), storage=STORAGE_MAX)
        b = ops.update_item(a, (1, 2), 4.0)
        assert b.shape == a.shape
        assert b.storage == a.storage

    def test_out_of_range(self):
        with pytest.raises(BoundsError):
            ops.update_item(_arr([1.0]), [1], 0.0)


class TestSubarray:
    def test_paper_example_shape(self):
        a = SqlArray.from_numpy(np.arange(10 * 10 * 10, dtype="f8")
                                .reshape(10, 10, 10))
        b = ops.subarray(a, (1, 4, 4), (5, 5, 5))
        assert b.shape == (5, 5, 5)
        np.testing.assert_array_equal(
            b.to_numpy(), a.to_numpy()[1:6, 4:9, 4:9])

    def test_collapse_extracts_matrix_column(self):
        # "useful, for example, for retrieving the column vectors of a
        # matrix" (Section 5.1).
        m = SqlArray.from_numpy(np.arange(12, dtype="f8").reshape(3, 4))
        col = ops.subarray(m, (0, 2), (3, 1), collapse=True)
        assert col.shape == (3,)
        np.testing.assert_array_equal(col.to_numpy(),
                                      m.to_numpy()[:, 2])

    def test_no_collapse_keeps_rank(self):
        m = SqlArray.from_numpy(np.arange(12, dtype="f8").reshape(3, 4))
        col = ops.subarray(m, (0, 2), (3, 1), collapse=False)
        assert col.shape == (3, 1)

    def test_collapse_all_singleton_keeps_one_dim(self):
        m = SqlArray.from_numpy(np.arange(12, dtype="f8").reshape(3, 4))
        one = ops.subarray(m, (1, 1), (1, 1), collapse=True)
        assert one.shape == (1,)

    def test_window_out_of_range(self):
        a = _arr([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(BoundsError):
            ops.subarray(a, (1, 0), (2, 2))

    def test_bad_window_spec(self):
        a = _arr([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ShapeError):
            ops.subarray(a, (0,), (2,))
        with pytest.raises(ShapeError):
            ops.subarray(a, (0, 0), (0, 2))

    @given(shape=small_shapes(3, 6), seed=st.integers(0, 999),
           data=st.data())
    def test_matches_numpy_slicing_property(self, shape, seed, data):
        values = values_for(FLOAT64, shape, seed)
        offset, size = [], []
        for s in shape:
            o = data.draw(st.integers(0, s - 1))
            offset.append(o)
            size.append(data.draw(st.integers(1, s - o)))
        a = SqlArray.from_numpy(values)
        window = ops.subarray(a, offset, size)
        expected = values[tuple(slice(o, o + z)
                                for o, z in zip(offset, size))]
        np.testing.assert_array_equal(window.to_numpy(), expected)


class TestReshape:
    def test_preserves_column_major_element_order(self):
        a = SqlArray.from_numpy(np.arange(6, dtype="f8"))
        m = ops.reshape(a, (2, 3))
        # Reshape "without reordering the array elements".
        np.testing.assert_array_equal(
            m.to_numpy().reshape(-1, order="F"), a.to_numpy())

    def test_size_must_match(self):
        with pytest.raises(ShapeError):
            ops.reshape(_arr([1.0, 2.0, 3.0]), (2, 2))

    def test_reshape_falls_back_to_max_when_needed(self):
        a = SqlArray.from_numpy(np.zeros(64), storage=STORAGE_SHORT)
        b = ops.reshape(a, (1, 1, 1, 1, 1, 1, 64)[:7])  # rank 7
        assert b.storage == STORAGE_MAX


class TestRawAndCast:
    def test_raw_strips_header(self):
        a = _arr([1.0, 2.0])
        assert ops.raw(a) == np.array([1.0, 2.0]).tobytes()

    def test_cast_roundtrip(self):
        raw = np.arange(12, dtype="<i4").tobytes()
        a = ops.cast_raw(raw, INT32, (3, 4))
        assert a.shape == (3, 4)
        assert ops.raw(a) == raw

    def test_cast_size_mismatch(self):
        with pytest.raises(HeaderError):
            ops.cast_raw(bytes(10), FLOAT64, (2,))


class TestConvert:
    def test_widening(self):
        a = _arr([1, 2, 3], "int32")
        b = ops.convert(a, "float64")
        assert b.dtype is FLOAT64
        np.testing.assert_array_equal(b.to_numpy(), [1.0, 2.0, 3.0])

    def test_complex_to_real_keeps_real_part(self):
        a = _arr([1 + 2j, 3 - 4j], "complex128")
        b = ops.convert(a, "float64")
        np.testing.assert_array_equal(b.to_numpy(), [1.0, 3.0])

    def test_storage_conversions(self):
        a = SqlArray.from_numpy(np.zeros(8))
        m = ops.to_max(a)
        assert m.storage == STORAGE_MAX
        s = ops.to_short(m)
        assert s.storage == STORAGE_SHORT
        assert s.to_numpy().shape == (8,)
        # Idempotent.
        assert ops.to_max(m) is m
        assert ops.to_short(s) is s


class TestTableConversion:
    def test_to_table_column_major_rows(self):
        m = SqlArray.from_numpy(
            np.array([[1.0, 3.0], [2.0, 4.0]]))
        rows = list(ops.to_table(m))
        assert rows == [(0, 0, 1.0), (1, 0, 2.0), (0, 1, 3.0),
                        (1, 1, 4.0)]

    def test_from_table_roundtrip(self):
        m = SqlArray.from_numpy(np.arange(6, dtype="f8").reshape(2, 3))
        back = ops.from_table(ops.to_table(m), (2, 3), FLOAT64)
        assert back == m

    def test_from_table_duplicate_rejected(self):
        with pytest.raises(ShapeError):
            ops.from_table([(0, 1.0), (0, 2.0)], (2,), FLOAT64)


class TestStrings:
    @given(dtype=dtype_strategy(), shape=small_shapes(2, 4),
           seed=st.integers(0, 500))
    def test_roundtrip_property(self, dtype, shape, seed):
        a = SqlArray.from_numpy(values_for(dtype, shape, seed), dtype)
        assert ops.from_string(ops.to_string(a)) == a

    def test_format(self):
        a = _arr([1.5, -2.0])
        assert ops.to_string(a) == "float64[2]{1.5,-2.0}"

    def test_malformed_literals(self):
        with pytest.raises(HeaderError):
            ops.from_string("not an array")
        with pytest.raises(ShapeError):
            ops.from_string("float64[3]{1.0,2.0}")


class TestArithmeticAndAggregates:
    def test_elementwise_ops(self):
        a = _arr([1.0, 2.0, 3.0])
        b = _arr([4.0, 5.0, 6.0])
        np.testing.assert_array_equal(ops.add(a, b).to_numpy(),
                                      [5.0, 7.0, 9.0])
        np.testing.assert_array_equal(ops.subtract(b, a).to_numpy(),
                                      [3.0, 3.0, 3.0])
        np.testing.assert_array_equal(ops.multiply(a, b).to_numpy(),
                                      [4.0, 10.0, 18.0])
        np.testing.assert_array_equal(ops.divide(b, a).to_numpy(),
                                      [4.0, 2.5, 2.0])

    def test_mixed_dtype_promotion(self):
        # The spectra use case multiplies double flux by integer flags.
        flux = _arr([1.0, 2.0])
        flags = _arr([0, 1], "int16")
        out = ops.multiply(flux, flags)
        np.testing.assert_array_equal(out.to_numpy(), [0.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.add(_arr([1.0]), _arr([1.0, 2.0]))

    def test_scale_shift_negate(self):
        a = _arr([1.0, -2.0])
        np.testing.assert_array_equal(ops.scale(a, 2).to_numpy(),
                                      [2.0, -4.0])
        np.testing.assert_array_equal(ops.shift(a, 1).to_numpy(),
                                      [2.0, -1.0])
        np.testing.assert_array_equal(ops.negate(a).to_numpy(),
                                      [-1.0, 2.0])

    def test_dot(self):
        assert ops.dot(_arr([1.0, 2.0]), _arr([3.0, 4.0])) == 11.0
        with pytest.raises(ShapeError):
            ops.dot(_arr([[1.0]]), _arr([1.0]))
        with pytest.raises(ShapeError):
            ops.dot(_arr([1.0]), _arr([1.0, 2.0]))

    def test_aggregate_all(self):
        a = _arr([[1.0, 2.0], [3.0, 4.0]])
        assert ops.aggregate_all(a, "sum") == 10.0
        assert ops.aggregate_all(a, "mean") == 2.5
        assert ops.aggregate_all(a, "min") == 1.0
        assert ops.aggregate_all(a, "max") == 4.0

    def test_aggregate_unknown_function(self):
        with pytest.raises(ShapeError):
            ops.aggregate_all(_arr([1.0]), "median")

    def test_aggregate_empty(self):
        empty = SqlArray.from_numpy(np.empty((0,)))
        with pytest.raises(ShapeError):
            ops.aggregate_all(empty, "sum")

    def test_aggregate_axis_reduces_rank(self):
        cube = SqlArray.from_numpy(
            np.arange(24, dtype="f8").reshape(2, 3, 4))
        out = ops.aggregate_axis(cube, "sum", 1)
        assert out.shape == (2, 4)
        np.testing.assert_array_equal(out.to_numpy(),
                                      cube.to_numpy().sum(axis=1))

    def test_aggregate_axis_of_vector_gives_one_element(self):
        out = ops.aggregate_axis(_arr([1.0, 2.0]), "sum", 0)
        assert out.shape == (1,)
        assert out.to_numpy()[0] == 3.0

    def test_aggregate_axis_out_of_range(self):
        with pytest.raises(BoundsError):
            ops.aggregate_axis(_arr([1.0]), "sum", 1)


class TestLinearOffset:
    @given(shape=small_shapes(4, 5), data=st.data())
    def test_matches_numpy_fortran_order(self, shape, data):
        idx = tuple(data.draw(st.integers(0, s - 1)) for s in shape)
        expected = np.ravel_multi_index(idx, shape, order="F")
        assert ops.linear_offset(shape, idx) == expected


class TestConcat:
    def test_vectors(self):
        a = _arr([1.0, 2.0])
        b = _arr([3.0])
        np.testing.assert_array_equal(
            ops.concat([a, b]).to_numpy(), [1.0, 2.0, 3.0])

    def test_matrices_both_axes(self):
        m = SqlArray.from_numpy(np.arange(6, dtype="f8").reshape(2, 3))
        v = ops.concat([m, m], axis=0)
        assert v.shape == (4, 3)
        h = ops.concat([m, m], axis=1)
        assert h.shape == (2, 6)
        np.testing.assert_array_equal(
            h.to_numpy(), np.concatenate([m.to_numpy()] * 2, axis=1))

    def test_subarray_concat_roundtrip(self):
        """Cutting an array into windows and concatenating them back
        reproduces the original — Subarray's inverse."""
        values = np.arange(24, dtype="f8").reshape(4, 6)
        a = SqlArray.from_numpy(values)
        left = ops.subarray(a, (0, 0), (4, 2))
        right = ops.subarray(a, (0, 2), (4, 4))
        assert ops.concat([left, right], axis=1) == a

    def test_validation(self):
        a = _arr([1.0, 2.0])
        with pytest.raises(ShapeError):
            ops.concat([])
        with pytest.raises(ShapeError):
            ops.concat([a, _arr([1], "int32")])
        with pytest.raises(ShapeError):
            ops.concat([a, SqlArray.from_numpy(np.zeros((2, 2)))])
        from repro.core import BoundsError
        with pytest.raises(BoundsError):
            ops.concat([a], axis=1)
