"""SqlArray value-class tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    FLOAT32,
    FLOAT64,
    INT32,
    STORAGE_MAX,
    STORAGE_SHORT,
    SqlArray,
    StorageClassError,
    TypeMismatchError,
    preferred_storage,
)
from tests.conftest import dtype_strategy, small_shapes, values_for


def test_from_values_vector():
    a = SqlArray.from_values([1.0, 2.0, 3.0], "float64")
    assert a.shape == (3,)
    assert a.dtype is FLOAT64
    assert a.is_short
    np.testing.assert_array_equal(a.to_numpy(), [1.0, 2.0, 3.0])


def test_from_numpy_column_major_serialization():
    m = np.array([[1.0, 2.0], [3.0, 4.0]])  # C order input
    a = SqlArray.from_numpy(m)
    # Column-major payload: 1, 3, 2, 4 (paper Section 3.5 / LAPACK).
    flat = np.frombuffer(a.data_bytes(), dtype="<f8")
    np.testing.assert_array_equal(flat, [1.0, 3.0, 2.0, 4.0])
    np.testing.assert_array_equal(a.to_numpy(), m)


def test_to_numpy_is_fortran_and_writable():
    a = SqlArray.from_numpy(np.zeros((3, 4)))
    out = a.to_numpy()
    assert out.flags["F_CONTIGUOUS"]
    out[0, 0] = 7.0  # must not blow up (no read-only buffer alias)


def test_blob_roundtrip():
    a = SqlArray.from_numpy(np.arange(6, dtype="i4").reshape(2, 3))
    b = SqlArray.from_blob(a.to_blob())
    assert a == b
    assert hash(a) == hash(b)


def test_preferred_storage_thresholds():
    assert preferred_storage(FLOAT64, (997,)) == STORAGE_SHORT
    assert preferred_storage(FLOAT64, (998,)) == STORAGE_MAX
    assert preferred_storage(FLOAT64, (1,) * 7) == STORAGE_MAX
    assert preferred_storage(INT32, (2 ** 15,)) == STORAGE_MAX


def test_explicit_storage_override():
    a = SqlArray.from_numpy(np.zeros(4), storage=STORAGE_MAX)
    assert not a.is_short


def test_zeros_and_filled():
    z = SqlArray.zeros((2, 2), "int32")
    assert z.to_numpy().sum() == 0
    f = SqlArray.filled((3,), 7, "int64")
    np.testing.assert_array_equal(f.to_numpy(), [7, 7, 7])


def test_dtype_inference_from_numpy():
    assert SqlArray.from_numpy(np.zeros(3, dtype="f4")).dtype is FLOAT32
    assert SqlArray.from_numpy([1, 2, 3]).dtype.is_integer
    assert SqlArray.from_numpy([1.5]).dtype is FLOAT64
    assert SqlArray.from_numpy([1 + 2j]).dtype.is_complex


def test_object_array_rejected():
    with pytest.raises(TypeMismatchError):
        SqlArray.from_numpy(np.array(["a", None], dtype=object))


def test_scalar_input_becomes_one_element_vector():
    a = SqlArray.from_numpy(3.5)
    assert a.shape == (1,)


def test_require_dtype_and_storage():
    a = SqlArray.from_values([1.0], "float64")
    a.require_dtype(FLOAT64)
    with pytest.raises(TypeMismatchError):
        a.require_dtype(INT32)
    a.require_storage(STORAGE_SHORT)
    with pytest.raises(StorageClassError):
        a.require_storage(STORAGE_MAX)


def test_len_and_repr():
    a = SqlArray.from_numpy(np.zeros((4, 2)))
    assert len(a) == 4
    assert "float64" in repr(a)
    assert "short" in repr(a)


def test_nbytes_accounts_for_header():
    a = SqlArray.from_values([1.0, 2.0], "float64")
    assert a.nbytes == 24 + 16


@given(dtype=dtype_strategy(), shape=small_shapes(),
       seed=st.integers(0, 2 ** 16))
def test_numpy_roundtrip_property(dtype, shape, seed):
    values = values_for(dtype, shape, seed)
    a = SqlArray.from_numpy(values, dtype)
    np.testing.assert_array_equal(a.to_numpy(), values)
    assert a.shape == shape
    # Serialization round-trips exactly.
    assert SqlArray.from_blob(a.to_blob()) == a


def test_big_endian_input_normalized():
    be = np.arange(4, dtype=">f8")
    a = SqlArray.from_numpy(be)
    np.testing.assert_array_equal(a.to_numpy(), be.astype("<f8"))
