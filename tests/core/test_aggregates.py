"""Tests for array aggregation: the Concat UDA vs the reader design,
and element-wise set aggregation."""

import numpy as np
import pytest

from repro.core import AggregateError, FLOAT64, SqlArray
from repro.core.aggregates import (
    ConcatAggregate,
    UdaCostLog,
    average_arrays,
    concat_reader,
    concat_uda,
    correlation_matrix,
    covariance_matrix,
    max_arrays,
    min_arrays,
    sum_arrays,
)


def _rows(shape, seed=0):
    gen = np.random.default_rng(seed)
    values = gen.standard_normal(shape)
    rows = [(idx, values[idx]) for idx in np.ndindex(*shape)]
    gen.shuffle(rows)
    return rows, values


class TestConcat:
    def test_uda_and_reader_agree(self):
        rows, values = _rows((4, 5))
        a = concat_uda(iter(rows), (4, 5), FLOAT64)
        b = concat_reader(iter(rows), (4, 5), FLOAT64)
        assert a == b
        np.testing.assert_allclose(a.to_numpy(), values)

    def test_uda_serialization_cost_is_per_row(self):
        # Section 4.2: "the state of aggregation had to be serialized
        # via a binary stream interface for each row".
        rows, _ = _rows((6, 6))
        log = UdaCostLog()
        concat_uda(iter(rows), (6, 6), FLOAT64, cost_log=log)
        assert log.rows == 36
        assert log.serializations == 36
        # Each serialization carries the whole state: O(rows * state).
        state_bytes = 36 * 8 + (36 + 7) // 8
        assert log.bytes_serialized == 36 * state_bytes

    def test_unfilled_cells_are_zero(self):
        out = concat_reader([((0, 0), 5.0)], (2, 2), FLOAT64)
        np.testing.assert_array_equal(out.to_numpy(),
                                      [[5.0, 0.0], [0.0, 0.0]])

    def test_accumulate_validates_index(self):
        agg = ConcatAggregate((2, 2), FLOAT64)
        with pytest.raises(AggregateError):
            agg.accumulate((0,), 1.0)
        from repro.core import BoundsError
        with pytest.raises(BoundsError):
            agg.accumulate((2, 0), 1.0)

    def test_merge_parallel_states(self):
        left = ConcatAggregate((2, 2), FLOAT64)
        right = ConcatAggregate((2, 2), FLOAT64)
        left.accumulate((0, 0), 1.0)
        right.accumulate((1, 1), 2.0)
        left.merge(right)
        np.testing.assert_array_equal(left.terminate().to_numpy(),
                                      [[1.0, 0.0], [0.0, 2.0]])

    def test_merge_shape_mismatch(self):
        with pytest.raises(AggregateError):
            ConcatAggregate((2, 2), FLOAT64).merge(
                ConcatAggregate((3,), FLOAT64))

    def test_serialize_deserialize_roundtrip(self):
        agg = ConcatAggregate((3, 2), "int32")
        agg.accumulate((2, 1), 7)
        agg.accumulate((0, 0), -1)
        back = ConcatAggregate.deserialize(agg.serialize(), (3, 2),
                                           "int32")
        assert back.terminate() == agg.terminate()
        # The fill mask round-trips too: re-accumulating elsewhere must
        # not clobber the existing cells on merge.
        other = ConcatAggregate((3, 2), "int32")
        other.accumulate((1, 1), 9)
        back.merge(other)
        out = back.terminate().to_numpy()
        assert out[2, 1] == 7 and out[0, 0] == -1 and out[1, 1] == 9


class TestSetAggregates:
    def _vectors(self, n=5, length=4, seed=0):
        gen = np.random.default_rng(seed)
        return [SqlArray.from_numpy(gen.standard_normal(length))
                for _ in range(n)]

    def test_average(self):
        vs = self._vectors()
        out = average_arrays(vs)
        expected = np.mean([v.to_numpy() for v in vs], axis=0)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_weighted_average(self):
        vs = self._vectors(3)
        out = average_arrays(vs, weights=[1.0, 0.0, 0.0])
        np.testing.assert_allclose(out.to_numpy(), vs[0].to_numpy())

    def test_weight_validation(self):
        vs = self._vectors(2)
        with pytest.raises(AggregateError):
            average_arrays(vs, weights=[1.0])
        with pytest.raises(AggregateError):
            average_arrays(vs, weights=[0.0, 0.0])

    def test_sum_min_max(self):
        vs = self._vectors(4)
        stacked = np.stack([v.to_numpy() for v in vs])
        np.testing.assert_allclose(sum_arrays(vs).to_numpy(),
                                   stacked.sum(axis=0))
        np.testing.assert_allclose(min_arrays(vs).to_numpy(),
                                   stacked.min(axis=0))
        np.testing.assert_allclose(max_arrays(vs).to_numpy(),
                                   stacked.max(axis=0))

    def test_empty_set_rejected(self):
        with pytest.raises(AggregateError):
            average_arrays([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AggregateError):
            average_arrays([SqlArray.from_numpy(np.zeros(2)),
                            SqlArray.from_numpy(np.zeros(3))])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(AggregateError):
            average_arrays([SqlArray.from_numpy(np.zeros(2)),
                            SqlArray.from_numpy(
                                np.zeros(2, dtype="i4"))])

    def test_covariance_matches_numpy(self):
        vs = self._vectors(20, 6, seed=3)
        cov = covariance_matrix(vs).to_numpy()
        expected = np.cov(np.stack([v.to_numpy() for v in vs]).T)
        np.testing.assert_allclose(cov, expected)

    def test_covariance_needs_two(self):
        with pytest.raises(AggregateError):
            covariance_matrix(self._vectors(1))

    def test_covariance_rejects_matrices(self):
        with pytest.raises(AggregateError):
            covariance_matrix([SqlArray.from_numpy(np.zeros((2, 2)))] * 3)

    def test_correlation_diagonal_and_range(self):
        vs = self._vectors(30, 5, seed=9)
        corr = correlation_matrix(vs).to_numpy()
        np.testing.assert_allclose(np.diag(corr), 1.0)
        assert (np.abs(corr) <= 1.0 + 1e-12).all()
        np.testing.assert_allclose(corr, corr.T)

    def test_correlation_zero_variance_dimension(self):
        vs = [SqlArray.from_numpy(np.array([1.0, float(i)]))
              for i in range(5)]
        corr = correlation_matrix(vs).to_numpy()
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0
