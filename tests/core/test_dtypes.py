"""Element-type registry tests."""

import numpy as np
import pytest

from repro.core import (
    ALL_DTYPES,
    COMPLEX64,
    COMPLEX128,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    TypeMismatchError,
    dtype_by_code,
    dtype_by_name,
    dtype_for_numpy,
)


def test_registry_covers_paper_types():
    # Section 3.4: Int8/16/32/64 signed, float, double, plus float and
    # double complex.
    assert {d.name for d in ALL_DTYPES} == {
        "int8", "int16", "int32", "int64", "float32", "float64",
        "complex64", "complex128"}


def test_codes_are_unique_and_stable():
    codes = [d.code for d in ALL_DTYPES]
    assert len(set(codes)) == len(codes)
    # On-disk stability: these exact values are part of the format.
    assert INT8.code == 0x01
    assert INT64.code == 0x04
    assert FLOAT64.code == 0x11
    assert COMPLEX128.code == 0x21


def test_itemsizes():
    assert [d.itemsize for d in (INT8, INT16, INT32, INT64)] == \
        [1, 2, 4, 8]
    assert FLOAT32.itemsize == 4
    assert FLOAT64.itemsize == 8
    assert COMPLEX64.itemsize == 8
    assert COMPLEX128.itemsize == 16


def test_kind_flags():
    assert INT32.is_integer and not INT32.is_complex and not INT32.is_float
    assert FLOAT64.is_float and not FLOAT64.is_integer
    assert COMPLEX64.is_complex and not COMPLEX64.is_float


def test_lookup_by_code_roundtrip():
    for d in ALL_DTYPES:
        assert dtype_by_code(d.code) is d


def test_lookup_by_code_unknown():
    with pytest.raises(TypeMismatchError):
        dtype_by_code(0xEE)


def test_lookup_by_name_and_sql_aliases():
    assert dtype_by_name("float64") is FLOAT64
    # T-SQL names from the paper's requirements list.
    assert dtype_by_name("bigint") is INT64
    assert dtype_by_name("int") is INT32
    assert dtype_by_name("smallint") is INT16
    assert dtype_by_name("tinyint") is INT8
    assert dtype_by_name("real") is FLOAT32
    assert dtype_by_name("float") is FLOAT64
    assert dtype_by_name("FLOAT") is FLOAT64  # case-insensitive
    assert dtype_by_name("complex") is COMPLEX128


def test_lookup_by_name_unknown():
    with pytest.raises(TypeMismatchError):
        dtype_by_name("decimal")


def test_schema_names_follow_sql_convention():
    assert FLOAT64.schema_name == "FloatArray"
    assert INT32.schema_name == "IntArray"
    assert INT64.schema_name == "BigIntArray"


def test_dtype_for_numpy():
    assert dtype_for_numpy(np.float64) is FLOAT64
    assert dtype_for_numpy(np.dtype(">f8")) is FLOAT64  # byte order ignored
    assert dtype_for_numpy(np.int16) is INT16
    assert dtype_for_numpy(np.complex64) is COMPLEX64


@pytest.mark.parametrize("bad", [np.bool_, np.uint32, np.float16, "U4"])
def test_dtype_for_numpy_unsupported(bad):
    with pytest.raises(TypeMismatchError):
        dtype_for_numpy(bad)
