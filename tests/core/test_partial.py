"""Partial (byte-range) read tests: correctness and minimality."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    BoundsError,
    FLOAT64,
    HeaderError,
    SqlArray,
    ops,
)
from repro.core.partial import (
    BytesBlobStream,
    iter_byte_runs,
    read_header,
    read_item,
    read_subarray,
)
from tests.conftest import small_shapes, values_for


def _stream(values, dtype="float64"):
    return BytesBlobStream(
        SqlArray.from_numpy(np.asarray(values), dtype).to_blob())


class TestByteRuns:
    def test_full_array_is_one_run(self):
        a = SqlArray.from_numpy(np.zeros((4, 5, 6)))
        runs = list(iter_byte_runs(a.header, (0, 0, 0), (4, 5, 6)))
        assert runs == [(a.header.data_offset, 4 * 5 * 6 * 8)]

    def test_full_leading_dims_merge(self):
        a = SqlArray.from_numpy(np.zeros((4, 5, 6)))
        # Full first two dims, partial third: one run per selected slab?
        # No — the window is contiguous across the merged prefix, so
        # 3 slabs of the (4, 5) plane merge into a single run.
        runs = list(iter_byte_runs(a.header, (0, 0, 2), (4, 5, 3)))
        assert len(runs) == 1
        assert runs[0][1] == 4 * 5 * 3 * 8

    def test_partial_first_dim_gives_row_runs(self):
        a = SqlArray.from_numpy(np.zeros((10, 4)))
        runs = list(iter_byte_runs(a.header, (2, 1), (3, 2)))
        assert len(runs) == 2  # one per selected column
        assert all(length == 3 * 8 for _off, length in runs)

    def test_runs_ascend_and_do_not_overlap(self):
        a = SqlArray.from_numpy(np.zeros((7, 5, 3)))
        runs = list(iter_byte_runs(a.header, (1, 1, 0), (3, 3, 3)))
        ends = [off + ln for off, ln in runs]
        starts = [off for off, _ln in runs]
        assert all(s2 >= e1 for e1, s2 in zip(ends, starts[1:]))

    def test_total_bytes_equal_window_size(self):
        a = SqlArray.from_numpy(np.zeros((6, 6, 6)))
        runs = list(iter_byte_runs(a.header, (1, 2, 3), (4, 3, 2)))
        assert sum(ln for _off, ln in runs) == 4 * 3 * 2 * 8


class TestReadHeader:
    def test_short(self):
        s = _stream([1.0, 2.0, 3.0])
        h = read_header(s)
        assert h.shape == (3,)
        assert s.bytes_read <= 24

    def test_max_high_rank_two_reads(self):
        a = SqlArray.from_numpy(np.zeros((2,) * 8))
        s = BytesBlobStream(a.to_blob())
        h = read_header(s)
        assert h.shape == (2,) * 8
        assert s.read_calls <= 2

    def test_truncated_stream_rejected(self):
        blob = SqlArray.from_numpy(np.zeros(10)).to_blob()
        with pytest.raises(HeaderError):
            read_header(BytesBlobStream(blob[:-4]))


class TestReadSubarray:
    @given(shape=small_shapes(3, 6), seed=st.integers(0, 500),
           data=st.data())
    def test_matches_in_memory_subarray(self, shape, seed, data):
        values = values_for(FLOAT64, shape, seed)
        offset, size = [], []
        for s in shape:
            o = data.draw(st.integers(0, s - 1))
            offset.append(o)
            size.append(data.draw(st.integers(1, s - o)))
        arr = SqlArray.from_numpy(values)
        stream = BytesBlobStream(arr.to_blob())
        got = read_subarray(stream, offset, size)
        expected = ops.subarray(arr, offset, size)
        np.testing.assert_array_equal(got.to_numpy(),
                                      expected.to_numpy())

    def test_reads_only_window_bytes(self):
        a = SqlArray.from_numpy(np.zeros((20, 20, 20)))
        s = BytesBlobStream(a.to_blob())
        read_subarray(s, (5, 5, 5), (8, 8, 8))
        window_bytes = 8 * 8 * 8 * 8
        header_bytes = 28
        assert s.bytes_read == window_bytes + header_bytes
        assert s.bytes_read < s.length() / 10

    def test_collapse(self):
        a = SqlArray.from_numpy(np.arange(12, dtype="f8").reshape(3, 4))
        col = read_subarray(BytesBlobStream(a.to_blob()), (0, 1), (3, 1),
                            collapse=True)
        assert col.shape == (3,)

    def test_out_of_range(self):
        s = _stream(np.zeros((4, 4)))
        with pytest.raises(BoundsError):
            read_subarray(s, (3, 0), (2, 2))


class TestReadItem:
    def test_single_element_read(self):
        values = np.arange(60, dtype="f8").reshape(3, 4, 5)
        a = SqlArray.from_numpy(values)
        s = BytesBlobStream(a.to_blob())
        assert read_item(s, 2, 1, 3) == values[2, 1, 3]
        # Header + one element.
        assert s.bytes_read <= 28 + 8

    def test_bounds(self):
        s = _stream([1.0, 2.0])
        with pytest.raises(BoundsError):
            read_item(s, 5)


class TestBytesBlobStream:
    def test_counters(self):
        s = BytesBlobStream(b"0123456789")
        assert s.read_at(2, 3) == b"234"
        assert (s.bytes_read, s.read_calls) == (3, 1)
        assert s.length() == 10

    def test_bounds(self):
        s = BytesBlobStream(b"0123")
        with pytest.raises(BoundsError):
            s.read_at(2, 5)
        with pytest.raises(BoundsError):
            s.read_at(-1, 1)
