"""Scalar complex UDT tests (paper Section 3.4)."""

import cmath

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import HeaderError, SqlComplex

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e100, max_value=1e100)


class TestSerialization:
    def test_double_is_16_bytes(self):
        assert len(SqlComplex.new(1.0, 2.0).to_bytes()) == 16

    def test_single_is_8_bytes(self):
        assert len(SqlComplex.new(1.0, 2.0, single=True).to_bytes()) == 8

    @given(re=finite, im=finite)
    def test_double_roundtrip(self, re, im):
        c = SqlComplex.new(re, im)
        assert SqlComplex.from_bytes(c.to_bytes()) == c

    def test_single_roundtrip_loses_precision_gracefully(self):
        c = SqlComplex.new(1.5, -2.25, single=True)  # representable
        back = SqlComplex.from_bytes(c.to_bytes())
        assert back == c
        assert back.single

    def test_bad_length_rejected(self):
        with pytest.raises(HeaderError):
            SqlComplex.from_bytes(b"12345")


class TestArithmetic:
    def test_add_sub_mul_div(self):
        a = SqlComplex.new(1.0, 2.0)
        b = SqlComplex.new(3.0, -1.0)
        assert (a + b).value == 4 + 1j
        assert (a - b).value == -2 + 3j
        assert (a * b).value == (1 + 2j) * (3 - 1j)
        assert (a / b).value == (1 + 2j) / (3 - 1j)

    def test_scalar_operands(self):
        a = SqlComplex.new(1.0, 1.0)
        assert (a * 2).value == 2 + 2j
        assert (a + 1).value == 2 + 1j

    def test_neg_conj(self):
        a = SqlComplex.new(1.0, 2.0)
        assert (-a).value == -1 - 2j
        assert a.conjugate().value == 1 - 2j

    def test_precision_flag_propagates(self):
        a = SqlComplex.new(1.0, 2.0, single=True)
        assert (a + a).single
        assert a.conjugate().single


class TestPolarAndText:
    def test_abs_phase(self):
        c = SqlComplex.new(3.0, 4.0)
        assert c.abs() == 5.0
        assert c.phase() == pytest.approx(cmath.phase(3 + 4j))

    @given(mag=st.floats(0, 1e10), phase=st.floats(-3.14, 3.14))
    def test_from_polar_roundtrip(self, mag, phase):
        c = SqlComplex.from_polar(mag, phase)
        assert c.abs() == pytest.approx(mag, rel=1e-12, abs=1e-12)

    @given(re=finite, im=finite)
    def test_string_roundtrip(self, re, im):
        c = SqlComplex.new(re, im)
        assert SqlComplex.from_string(c.to_string()) == c

    def test_bad_literal(self):
        with pytest.raises(HeaderError):
            SqlComplex.from_string("not complex")

    def test_complex_conversion(self):
        assert complex(SqlComplex.new(1.0, -1.0)) == 1 - 1j


class TestInSql:
    @pytest.fixture
    def conn(self):
        from repro.sqlbind import connect
        return connect()

    def test_construct_and_render(self, conn):
        out = conn.execute(
            "SELECT Complex_ToString(Complex_New(1.5, -2.0))"
        ).fetchone()[0]
        assert out == "1.5-2.0j"

    def test_arithmetic_chain(self, conn):
        out = conn.execute(
            "SELECT Complex_Abs(Complex_Mul(Complex_New(3, 4), "
            "Complex_Conj(Complex_New(3, 4))))").fetchone()[0]
        assert out == pytest.approx(25.0)

    def test_polar(self, conn):
        out = conn.execute(
            "SELECT Complex_Re(Complex_FromPolar(2.0, 0.0))"
        ).fetchone()[0]
        assert out == pytest.approx(2.0)

    def test_stored_in_table(self, conn):
        conn.execute("CREATE TABLE c (id INTEGER, z BLOB)")
        conn.execute("INSERT INTO c VALUES (1, Complex_New(1, 1))")
        conn.execute("INSERT INTO c VALUES (2, Complex_New(2, -1))")
        re_sum = conn.execute(
            "SELECT SUM(Complex_Re(z)) FROM c").fetchone()[0]
        assert re_sum == 3.0

    def test_error_surfaces(self, conn):
        import sqlite3
        with pytest.raises(sqlite3.OperationalError):
            conn.execute("SELECT Complex_Re(X'0102')").fetchone()
