"""Blob header codec tests, including hypothesis round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    HeaderError,
    ShapeError,
    ShortArrayLimitError,
    StorageClassError,
    SHORT_HEADER_SIZE,
    SHORT_MAX_BLOB_BYTES,
    STORAGE_MAX,
    STORAGE_SHORT,
    decode_header,
    encode_header,
    max_header_size,
    peek_storage_class,
)
from tests.conftest import dtype_strategy


def _blob(storage, dtype, shape):
    count = 1
    for s in shape:
        count *= s
    return encode_header(storage, dtype, shape) \
        + bytes(count * dtype.itemsize)


def test_short_header_is_24_bytes():
    # Section 3.5: "In case of short arrays the header is 24 bytes long."
    assert len(encode_header(STORAGE_SHORT, FLOAT64, (5,))) == 24
    assert SHORT_HEADER_SIZE == 24


def test_max_header_size_varies_with_rank():
    # "Because max arrays support any number of dimensions the header
    # size may vary."
    assert len(encode_header(STORAGE_MAX, FLOAT64, (5,))) == \
        max_header_size(1)
    assert len(encode_header(STORAGE_MAX, FLOAT64, (2,) * 8)) == \
        max_header_size(8)
    assert max_header_size(8) - max_header_size(1) == 7 * 4


def test_decode_short_roundtrip():
    h = decode_header(_blob(STORAGE_SHORT, INT16, (3, 4)))
    assert h.storage == STORAGE_SHORT
    assert h.dtype is INT16
    assert h.shape == (3, 4)
    assert h.count == 12
    assert h.data_offset == 24
    assert h.blob_size == 24 + 24


def test_decode_max_roundtrip_high_rank():
    shape = (2, 3, 1, 2, 2, 1, 3, 2)  # rank 8 > short limit of 6
    h = decode_header(_blob(STORAGE_MAX, FLOAT32, shape))
    assert h.shape == shape
    assert h.data_offset == max_header_size(8)


@given(dtype=dtype_strategy(),
       shape=st.lists(st.integers(1, 5), min_size=1, max_size=6))
def test_short_roundtrip_property(dtype, shape):
    shape = tuple(shape)
    count = 1
    for s in shape:
        count *= s
    if SHORT_HEADER_SIZE + count * dtype.itemsize > SHORT_MAX_BLOB_BYTES:
        return
    h = decode_header(_blob(STORAGE_SHORT, dtype, shape))
    assert (h.dtype, h.shape, h.storage) == (dtype, shape, STORAGE_SHORT)


@given(dtype=dtype_strategy(),
       shape=st.lists(st.integers(1, 4), min_size=1, max_size=9))
def test_max_roundtrip_property(dtype, shape):
    shape = tuple(shape)
    h = decode_header(_blob(STORAGE_MAX, dtype, shape))
    assert (h.dtype, h.shape, h.storage) == (dtype, shape, STORAGE_MAX)


def test_zero_size_dimension_allowed():
    h = decode_header(_blob(STORAGE_MAX, FLOAT64, (0, 4)))
    assert h.count == 0
    assert h.data_size == 0


def test_short_limits_rank():
    with pytest.raises(ShortArrayLimitError):
        encode_header(STORAGE_SHORT, INT8, (1,) * 7)


def test_short_limits_dimension_size():
    with pytest.raises(ShortArrayLimitError):
        encode_header(STORAGE_SHORT, INT8, (2 ** 15,))


def test_short_limits_blob_size():
    # 998 float64s -> 24 + 7984 = 8008 > 8000.
    with pytest.raises(ShortArrayLimitError):
        encode_header(STORAGE_SHORT, FLOAT64, (998,))
    # 997 just fits: 24 + 7976 = 8000.
    encode_header(STORAGE_SHORT, FLOAT64, (997,))


def test_unknown_storage_class():
    with pytest.raises(StorageClassError):
        encode_header(0x7F, FLOAT64, (3,))


def test_invalid_shapes():
    with pytest.raises(ShapeError):
        encode_header(STORAGE_SHORT, FLOAT64, ())
    with pytest.raises(ShapeError):
        encode_header(STORAGE_SHORT, FLOAT64, (-1,))
    with pytest.raises(ShapeError):
        encode_header(STORAGE_MAX, FLOAT64, (2 ** 31,))


def test_peek_storage_class():
    assert peek_storage_class(_blob(STORAGE_SHORT, INT8, (2,))) == \
        STORAGE_SHORT
    assert peek_storage_class(_blob(STORAGE_MAX, INT8, (2,))) == \
        STORAGE_MAX


def test_bad_magic_rejected():
    with pytest.raises(HeaderError):
        decode_header(b"XX" + bytes(30))


def test_too_small_rejected():
    with pytest.raises(HeaderError):
        decode_header(b"SA")


def test_truncated_payload_rejected():
    blob = _blob(STORAGE_SHORT, FLOAT64, (5,))
    with pytest.raises(HeaderError):
        decode_header(blob[:-1])


def test_truncated_max_dimension_list_rejected():
    blob = _blob(STORAGE_MAX, FLOAT64, (2, 2, 2))
    with pytest.raises(HeaderError):
        decode_header(blob[:18])  # cuts into the dims


def test_count_shape_mismatch_rejected():
    blob = bytearray(_blob(STORAGE_SHORT, FLOAT64, (5,)))
    blob[6:10] = (99).to_bytes(4, "little")  # corrupt element count
    with pytest.raises(HeaderError):
        decode_header(bytes(blob))


def test_nonzero_padding_in_unused_dims_rejected():
    blob = bytearray(_blob(STORAGE_SHORT, FLOAT64, (5,)))
    blob[12] = 1  # second dimension slot of a rank-1 array
    with pytest.raises(HeaderError):
        decode_header(bytes(blob))


def test_flags_magic_mismatch_rejected():
    blob = bytearray(_blob(STORAGE_SHORT, FLOAT64, (5,)))
    blob[2] = STORAGE_MAX  # short magic, max flags
    with pytest.raises(HeaderError):
        decode_header(bytes(blob))
