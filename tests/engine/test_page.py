"""Slotted page and page file tests."""

import pytest

from repro.engine import PAGE_SIZE, Page, PageFile, PageFullError
from repro.engine.constants import (
    EXTENT_PAGES,
    PAGE_BODY_SIZE,
    PAGE_DATA,
    PAGE_HEADER_SIZE,
)


class TestPage:
    def test_add_and_get(self):
        p = Page(0, PAGE_DATA)
        s0 = p.add_record(b"hello")
        s1 = p.add_record(b"world!")
        assert p.get_record(s0) == b"hello"
        assert p.get_record(s1) == b"world!"
        assert p.slot_count == 2

    def test_used_bytes_accounting(self):
        p = Page(0, PAGE_DATA)
        assert p.used_bytes == PAGE_HEADER_SIZE
        p.add_record(b"x" * 100)
        assert p.used_bytes == PAGE_HEADER_SIZE + 100 + 2
        assert p.free_bytes == PAGE_SIZE - p.used_bytes

    def test_fills_up(self):
        p = Page(0, PAGE_DATA)
        record = b"r" * 100
        added = 0
        while p.fits(len(record)):
            p.add_record(record)
            added += 1
        assert added == PAGE_BODY_SIZE // 102
        with pytest.raises(PageFullError):
            p.add_record(record)

    def test_record_never_fits(self):
        p = Page(0, PAGE_DATA)
        with pytest.raises(PageFullError):
            p.add_record(b"x" * (PAGE_BODY_SIZE + 1))

    def test_insert_keeps_order(self):
        p = Page(0, PAGE_DATA)
        p.add_record(b"a")
        p.add_record(b"c")
        p.insert_record(1, b"b")
        assert list(p.records()) == [b"a", b"b", b"c"]

    def test_delete_and_compact(self):
        p = Page(0, PAGE_DATA)
        for r in (b"a", b"bb", b"ccc"):
            p.add_record(r)
        p.delete_record(1)
        assert list(p.records()) == [b"a", b"ccc"]
        before = p.used_bytes
        p.compact()
        assert list(p.records()) == [b"a", b"ccc"]
        assert p.used_bytes < before  # garbage bytes reclaimed

    def test_take_all_records(self):
        p = Page(0, PAGE_DATA)
        p.add_record(b"a")
        p.add_record(b"b")
        assert p.take_all_records() == [b"a", b"b"]
        assert p.slot_count == 0

    def test_header_serializes(self):
        p = Page(3, PAGE_DATA, level=1)
        p.next_page = 9
        assert len(p.header_bytes()) > 0


class TestPageFile:
    def test_extent_allocation_contiguous_per_tag(self):
        f = PageFile()
        a_pages = [f.allocate(PAGE_DATA, tag="a").page_id
                   for _ in range(5)]
        b_pages = [f.allocate(PAGE_DATA, tag="b").page_id
                   for _ in range(5)]
        a2 = [f.allocate(PAGE_DATA, tag="a").page_id for _ in range(5)]
        # Same-tag pages are consecutive even when tags interleave.
        assert a_pages + a2 == list(range(a_pages[0], a_pages[0] + 10))
        assert b_pages == list(range(b_pages[0], b_pages[0] + 5))

    def test_new_extent_opens_when_full(self):
        f = PageFile()
        ids = [f.allocate(PAGE_DATA, tag="t").page_id
               for _ in range(EXTENT_PAGES + 1)]
        assert ids[EXTENT_PAGES] != ids[EXTENT_PAGES - 1] + 1 or \
            f.page_count >= 2 * EXTENT_PAGES

    def test_get_unallocated_slack_raises(self):
        f = PageFile()
        f.allocate(PAGE_DATA, tag="t")
        with pytest.raises(IndexError):
            f.get(EXTENT_PAGES - 1)  # reserved but unused slot

    def test_counts(self):
        f = PageFile()
        f.allocate(PAGE_DATA, tag="t")
        f.allocate(PAGE_DATA, tag="t")
        assert f.allocated_page_count == 2
        assert f.page_count == EXTENT_PAGES
        assert f.total_bytes == EXTENT_PAGES * PAGE_SIZE
