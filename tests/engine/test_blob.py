"""Out-of-page blob store and stream wrapper tests."""

import numpy as np
import pytest

from repro.engine import BlobStore, BufferPool, PageFile
from repro.engine.constants import BLOB_CHUNK_SIZE


@pytest.fixture
def setup():
    f = PageFile()
    store = BlobStore(f)
    pool = BufferPool(f)
    return f, store, pool


class TestStoreAndRead:
    def test_roundtrip_small(self, setup):
        _f, store, pool = setup
        ref = store.store(b"hello blob")
        assert ref.length == 10
        assert store.read_all(ref, pool) == b"hello blob"

    def test_roundtrip_multi_chunk(self, setup):
        _f, store, pool = setup
        data = np.random.default_rng(0).bytes(3 * BLOB_CHUNK_SIZE + 123)
        ref = store.store(data)
        assert store.read_all(ref, pool) == data

    def test_empty_blob(self, setup):
        _f, store, pool = setup
        ref = store.store(b"")
        assert ref.length == 0
        assert store.read_all(ref, pool) == b""

    def test_chunk_boundary_exact(self, setup):
        _f, store, pool = setup
        data = (bytes(range(256)) * (BLOB_CHUNK_SIZE // 256 + 1))
        data = data[:BLOB_CHUNK_SIZE]
        assert len(data) == BLOB_CHUNK_SIZE
        ref = store.store(data)
        assert store.read_all(ref, pool) == data


class TestPartialReads:
    def test_read_at_arbitrary_ranges(self, setup):
        _f, store, pool = setup
        data = np.random.default_rng(1).bytes(2 * BLOB_CHUNK_SIZE + 500)
        ref = store.store(data)
        stream = store.open(ref, pool)
        for start, size in [(0, 10), (BLOB_CHUNK_SIZE - 5, 10),
                            (BLOB_CHUNK_SIZE, BLOB_CHUNK_SIZE),
                            (len(data) - 7, 7), (100, 0)]:
            assert stream.read_at(start, size) == data[start:start + size]

    def test_out_of_range_rejected(self, setup):
        _f, store, pool = setup
        ref = store.store(b"0123456789")
        stream = store.open(ref, pool)
        with pytest.raises(ValueError):
            stream.read_at(5, 10)
        with pytest.raises(ValueError):
            stream.read_at(-1, 2)

    def test_partial_read_touches_fewer_pages(self, setup):
        _f, store, pool = setup
        data = bytes(10 * BLOB_CHUNK_SIZE)
        ref = store.store(data)
        pool.reset_counters()
        stream = store.open(ref, pool)
        stream.read_at(0, 100)
        small = pool.counters.logical_reads
        pool.reset_counters()
        stream2 = store.open(ref, pool)
        stream2.read_at(0, len(data))
        assert small < pool.counters.logical_reads

    def test_stream_call_accounting(self, setup):
        _f, store, pool = setup
        ref = store.store(bytes(100))
        stream = store.open(ref, pool)
        stream.read_at(0, 10)
        stream.read_at(50, 10)
        assert stream.stream_calls == 2
        assert stream.bytes_read == 20

    def test_blobstream_protocol_with_read_subarray(self, setup):
        """The engine's blob stream plugs straight into the partial
        subarray reader — the end-to-end max-array subsetting path."""
        from repro.core import SqlArray
        from repro.core.partial import read_subarray

        _f, store, pool = setup
        values = np.arange(30 ** 3, dtype="f8").reshape(30, 30, 30)
        blob = SqlArray.from_numpy(values).to_blob()
        ref = store.store(blob)
        stream = store.open(ref, pool)
        window = read_subarray(stream, (5, 6, 7), (4, 4, 4))
        np.testing.assert_array_equal(window.to_numpy(),
                                      values[5:9, 6:10, 7:11])
        assert stream.bytes_read < len(blob) / 10
