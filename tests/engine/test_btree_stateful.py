"""Stateful (model-based) B-tree testing with hypothesis.

Drives random interleavings of inserts, point lookups, range scans and
buffer-pool-tracked operations against a sorted-dict model; every step
must agree.  This catches split bookkeeping and sibling-chain bugs that
fixed scenarios miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.engine import BTree, BufferPool, PageFile
from repro.engine.btree import DuplicateKeyError
from repro.engine.constants import PAGE_DATA

KEYS = st.integers(-10 ** 6, 10 ** 6)


class BTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.file = PageFile()
        self.tree = BTree(self.file, PAGE_DATA, tag="t")
        self.pool = BufferPool(self.file)
        self.model: dict[int, bytes] = {}

    @rule(key=KEYS, size=st.integers(0, 200))
    def insert(self, key, size):
        payload = key.to_bytes(8, "little", signed=True) + bytes(size)
        if key in self.model:
            try:
                self.tree.insert(key, payload)
                raise AssertionError("duplicate accepted")
            except DuplicateKeyError:
                pass
        else:
            self.tree.insert(key, payload)
            self.model[key] = payload

    @rule(key=KEYS)
    def search(self, key):
        assert self.tree.search(key, self.pool) == self.model.get(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def search_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.search(key) == self.model[key]

    @rule(key=KEYS)
    def delete(self, key):
        existed = self.tree.delete(key)
        assert existed == (key in self.model)
        self.model.pop(key, None)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), size=st.integers(0, 300))
    def update(self, data, size):
        key = data.draw(st.sampled_from(sorted(self.model)))
        payload = key.to_bytes(8, "little", signed=True) + bytes(size)
        assert self.tree.update(key, payload)
        self.model[key] = payload

    @rule(lo=KEYS, span=st.integers(0, 10 ** 5))
    def range_scan(self, lo, span):
        hi = lo + span
        got = [(k, v) for k, v in self.tree.scan(start=lo, stop=hi)]
        want = sorted((k, v) for k, v in self.model.items()
                      if lo <= k < hi)
        assert got == want

    @invariant()
    def full_scan_matches_model(self):
        assert [k for k, _v in self.tree.scan()] == sorted(self.model)

    @invariant()
    def count_matches(self):
        assert self.tree.count == len(self.model)

    @invariant()
    def leaf_chain_is_consistent(self):
        if not self.model:
            return
        ids = self.tree.leaf_page_ids()
        assert len(ids) == len(set(ids))
        # prev pointers mirror the next chain
        for left, right in zip(ids, ids[1:]):
            assert self.file.get(right).prev_page == left


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)
