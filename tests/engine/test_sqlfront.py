"""SQL front-end tests: the paper's queries, verbatim."""

import numpy as np
import pytest

from repro.engine import Column, Database, SqlSession, SqlSyntaxError
from repro.tsql import FloatArray

N = 2000


@pytest.fixture(scope="module")
def session():
    db = Database()
    ts = db.create_table(
        "Tscalar", [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tv = db.create_table(
        "Tvector", [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)])
    rng = np.random.default_rng(0)
    values = rng.standard_normal((N, 5))
    for i in range(N):
        ts.insert((i, *values[i]))
        tv.insert((i, FloatArray.Vector_5(*values[i])))
    return SqlSession(db), values


class TestPaperQueries:
    """All five Table 1 query texts parse and produce correct values."""

    def test_query1(self, session):
        s, _v = session
        (n,), m = s.query("SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
        assert n == N
        assert m.label.startswith("SELECT COUNT(*)")

    def test_query2(self, session):
        s, _v = session
        (n,), _m = s.query("SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")
        assert n == N

    def test_query3(self, session):
        s, values = session
        (total,), _m = s.query("SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)")
        assert total == pytest.approx(values[:, 0].sum())

    def test_query4(self, session):
        s, values = session
        (total,), m = s.query(
            "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector "
            "WITH (NOLOCK)")
        assert total == pytest.approx(values[:, 0].sum())
        assert m.udf_calls == N

    def test_query5(self, session):
        s, _v = session
        (total,), m = s.query(
            "SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector "
            "WITH (NOLOCK)")
        assert total == 0.0
        assert m.udf_calls == N


class TestExpressions:
    def test_arithmetic(self, session):
        s, values = session
        (out,), _m = s.query("SELECT MAX(v1 * 2 + 1) FROM Tscalar")
        assert out == pytest.approx(values[:, 0].max() * 2 + 1)

    def test_parenthesized_expression(self, session):
        s, values = session
        (out,), _m = s.query("SELECT SUM((v1 + v2) / 2) FROM Tscalar")
        assert out == pytest.approx(
            ((values[:, 0] + values[:, 1]) / 2).sum())

    def test_unary_minus(self, session):
        s, values = session
        (out,), _m = s.query("SELECT MIN(-v1) FROM Tscalar")
        assert out == pytest.approx((-values[:, 0]).min())

    def test_multiple_aggregates(self, session):
        s, values = session
        (n, total, avg), _m = s.query(
            "SELECT COUNT(*), SUM(v3), AVG(v3) FROM Tscalar")
        assert n == N
        assert total == pytest.approx(values[:, 2].sum())
        assert avg == pytest.approx(values[:, 2].mean())

    def test_case_insensitive_columns_and_tables(self, session):
        s, values = session
        (total,), _m = s.query("SELECT SUM(V1) FROM tscalar")
        assert total == pytest.approx(values[:, 0].sum())

    def test_nested_function_calls(self, session):
        s, _v = session
        (out,), _m = s.query(
            "SELECT MAX(FloatArray.Sum(v)) FROM Tvector")
        assert np.isfinite(out)


class TestWhere:
    def test_comparison(self, session):
        s, values = session
        (n,), _m = s.query("SELECT COUNT(*) FROM Tscalar WHERE v1 > 0")
        assert n == (values[:, 0] > 0).sum()

    def test_and_or_not(self, session):
        s, values = session
        (n,), _m = s.query(
            "SELECT COUNT(*) FROM Tscalar "
            "WHERE (v1 > 1 OR v2 < 0) AND NOT id = 5")
        mask = (values[:, 0] > 1) | (values[:, 1] < 0)
        expected = int(mask.sum()) - (1 if mask[5] else 0)
        assert n == expected

    def test_where_on_id_range(self, session):
        s, _v = session
        (n,), _m = s.query(
            "SELECT COUNT(*) FROM Tscalar WHERE id >= 10 AND id < 20")
        assert n == 10

    def test_udf_in_where(self, session):
        s, values = session
        (n,), m = s.query(
            "SELECT COUNT(*) FROM Tvector "
            "WHERE FloatArray.Item_1(v, 1) > 0")
        assert n == (values[:, 1] > 0).sum()
        assert m.udf_calls == N

    def test_is_null(self, session):
        s, _v = session
        db = s.db
        t = db.create_table("with_nulls", [Column("id", "bigint"),
                                           Column("x", "float")])
        t.insert((1, 1.0))
        t.insert((2, None))
        (n,), _m = s.query(
            "SELECT COUNT(*) FROM with_nulls WHERE x IS NULL")
        assert n == 1
        (n,), _m = s.query(
            "SELECT COUNT(*) FROM with_nulls WHERE x IS NOT NULL")
        assert n == 1


class TestRegisteredFunctions:
    def test_custom_function(self, session):
        s, values = session
        s.register_function("dbo.FirstPlusOne",
                            lambda blob, i: FloatArray.Item_1(blob, i)
                            + 1.0)
        (total,), _m = s.query(
            "SELECT SUM(dbo.FirstPlusOne(v, 0)) FROM Tvector")
        assert total == pytest.approx(values[:, 0].sum() + N)


class TestErrors:
    def test_unknown_table(self, session):
        s, _v = session
        with pytest.raises(SqlSyntaxError):
            s.query("SELECT COUNT(*) FROM nosuch")

    def test_unknown_column(self, session):
        s, _v = session
        with pytest.raises(SqlSyntaxError):
            s.query("SELECT SUM(zz) FROM Tscalar")

    def test_unknown_function(self, session):
        s, _v = session
        with pytest.raises(SqlSyntaxError):
            s.query("SELECT SUM(dbo.NoSuch(v)) FROM Tvector")

    def test_syntax_errors(self, session):
        s, _v = session
        for bad in ["SELECT FROM Tscalar",
                    "SELECT COUNT(*)",
                    "SELECT COUNT(v1) FROM Tscalar",
                    "SELECT SUM(v1 FROM Tscalar",
                    "SELECT SUM(v1) FROM Tscalar trailing",
                    "COUNT(*) FROM Tscalar"]:
            with pytest.raises(SqlSyntaxError):
                s.query(bad)

    def test_metrics_match_programmatic_api(self, session):
        """The SQL path charges exactly what the programmatic plan
        does."""
        from repro.engine import Col, Count, Executor, Sum
        s, _v = session
        (_n,), via_sql = s.query(
            "SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)")
        table = s.db.tables["Tscalar"]
        (_n2,), direct = Executor(s.db).run(table, [Sum(Col("v1"))])
        assert via_sql.sim_cpu_core_seconds == pytest.approx(
            direct.sim_cpu_core_seconds)
        assert via_sql.io_bytes == direct.io_bytes


class TestExplain:
    def test_plans(self, session):
        s, _v = session
        assert s.explain("SELECT COUNT(*) FROM Tscalar") == \
            "clustered index scan on Tscalar"
        assert "residual predicate" in s.explain(
            "SELECT COUNT(*) FROM Tscalar WHERE v1 > 0")
        assert s.explain(
            "SELECT SUM(v1) FROM Tscalar WHERE id = 5") == \
            "clustered index seek on Tscalar (id = 5)"
        assert "hash aggregate" in s.explain(
            "SELECT id, COUNT(*) FROM Tscalar GROUP BY id")

    def test_index_plans(self, session):
        s, _v = session
        table = s.db.tables["Tscalar"]
        if table.index_on("v2") is None:
            table.create_index("v2")
        assert "index range scan" in s.explain(
            "SELECT COUNT(*) FROM Tscalar WHERE v2 >= 0 AND v2 < 1")
        assert "index seek" in s.explain(
            "SELECT COUNT(*) FROM Tscalar WHERE v2 = 0.5")


class TestParserFuzz:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _alphabet = "SELECTFROMWHEREGROUPBYANDORNT()*,+-<>=.'0123456789abcv_ "

    @settings(max_examples=300, deadline=None)
    @given(text=st.text(alphabet=_alphabet, min_size=0, max_size=80))
    def test_random_text_never_crashes_unexpectedly(self, session,
                                                    text):
        """Arbitrary input produces SqlSyntaxError (or parses cleanly),
        never an internal exception."""
        s, _v = session
        try:
            s.explain(text)
        except SqlSyntaxError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_mutated_valid_queries(self, session, data):
        """Token-level mutations of a valid query stay in the error
        contract."""
        s, _v = session
        base = "SELECT COUNT(*) FROM Tscalar WHERE v1 > 0 AND id < 10"
        tokens = base.split()
        st = self.st
        i = data.draw(st.integers(0, len(tokens) - 1))
        action = data.draw(st.sampled_from(["drop", "dup", "swap"]))
        if action == "drop":
            tokens = tokens[:i] + tokens[i + 1:]
        elif action == "dup":
            tokens = tokens[:i] + [tokens[i]] + tokens[i:]
        else:
            j = data.draw(st.integers(0, len(tokens) - 1))
            tokens[i], tokens[j] = tokens[j], tokens[i]
        try:
            s.explain(" ".join(tokens))
        except SqlSyntaxError:
            pass
