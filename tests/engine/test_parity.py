"""Row-engine vs vector-engine vs parallel-engine parity.

Every query here runs on ``engine="row"`` and ``engine="vector"`` —
and, when cold, on ``engine="parallel"`` too — and must return
bit-identical values *and* identical metrics (same logical/physical/
sequential/random reads, same UDF/stream counters, same simulated
cost).  Only ``wall_seconds``, the ``engine`` tag and the ``workers``
count may differ.

The parallel engine is only compared on cold runs: each worker process
keeps its own page cache, so warm-run physical reads are honest but
not reproducible against the serial engines' shared pool.
"""

import random
import struct

import pytest

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray, FloatArrayMax

ROWS = 600


def _bits(value):
    """Bit-exact comparison key: floats by their IEEE-754 pattern."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    if isinstance(value, (tuple, list)):
        return tuple(_bits(v) for v in value)
    return value


@pytest.fixture(scope="module")
def session():
    # Large enough to cache the whole table: warm-run IO is then
    # deterministic (zero misses) instead of depending on LRU state
    # left behind by whichever engine ran last.
    db = Database(buffer_pages=2048)
    table = db.create_table(
        "t", [Column("id", "bigint"), Column("x", "float"),
              Column("y", "float"), Column("k", "int"),
              Column("b", "varbinary", cap=400),
              Column("mb", "varbinary_max")])
    rng = random.Random(42)
    rows = []
    for i in range(ROWS):
        x = None if rng.random() < 0.15 else rng.uniform(-5.0, 5.0)
        y = None if rng.random() < 0.15 else rng.uniform(0.5, 9.5)
        k = None if rng.random() < 0.10 else rng.randrange(0, 6)
        b = None if rng.random() < 0.10 else FloatArray.Vector_5(
            *[rng.uniform(-1.0, 1.0) for _ in range(5)])
        mb = None if rng.random() < 0.10 else FloatArrayMax.Vector(
            [rng.uniform(-1.0, 1.0) for _ in range(400)])
        rows.append((i, x, y, k, b, mb))
    table.insert_many(rows)
    return SqlSession(db)


def assert_parity(session, sql, cold=True, seek=False):
    """Run ``sql`` on every engine and compare values and metrics.

    A query that raises (NULL blob handed to a UDF, division by zero)
    must raise the *same* exception on every engine.
    """
    def run(engine, workers=None):
        if not cold:
            # Prime the cache so each engine's measured warm run sees
            # the same (fully cached) pool state.
            session.query(sql, cold=False, engine=engine)
        return session.query(sql, cold=cold, engine=engine,
                             workers=workers)

    def strip(metrics):
        d = metrics.to_dict()
        for key in ("wall_seconds", "engine", "workers"):
            d.pop(key)
        return d

    try:
        row_vals, row_m = run("row")
    except Exception as exc:
        with pytest.raises(type(exc)) as caught:
            run("vector")
        assert str(caught.value) == str(exc), sql
        if cold:
            with pytest.raises(type(exc)) as caught:
                run("parallel", workers=2)
            assert str(caught.value) == str(exc), sql
        return
    vec_vals, vec_m = run("vector")
    assert _bits(row_vals) == _bits(vec_vals), sql
    assert row_m.engine == "row"
    # Seek/index plans execute row-at-a-time under either toggle (a
    # point lookup has no batch to vectorize) and tag metrics honestly.
    assert vec_m.engine == ("row" if seek else "vector")
    d_row, d_vec = strip(row_m), strip(vec_m)
    assert d_row == d_vec, (sql, {k: (d_row[k], d_vec[k])
                                  for k in d_row
                                  if d_row[k] != d_vec[k]})
    if not cold:
        return
    par_vals, par_m = run("parallel", workers=2)
    assert _bits(row_vals) == _bits(par_vals), sql
    assert par_m.engine == ("row" if seek else "parallel")
    d_par = strip(par_m)
    assert d_row == d_par, (sql, {k: (d_row[k], d_par[k])
                                  for k in d_row
                                  if d_row[k] != d_par[k]})


AGG_EXPRS = [
    "x", "y", "x + y", "x - y", "x * 2.5", "x / 4.0", "x * y + 1",
    "-x", "k", "k + 1", "k * k",
    "FloatArray.Item_1(b, 2)",
    "FloatArray.Item_1(b, 4) * x",
    "dbo.EmptyFunction(x)",
    "FloatArray.Item_1(FloatArray.Vector_3(x, y, 1.5), 1)",
]

PREDICATES = [
    None, "x > 0", "x > 0 AND y < 5", "x > 0 OR k = 2", "NOT x > 0",
    "x IS NULL", "x IS NOT NULL", "k = 3", "k <> 3", "x <= y",
    "x IS NOT NULL AND k IS NOT NULL", "y >= 2 AND y <= 8",
]

AGG_FUNCS = ["COUNT(*)", "SUM({e})", "AVG({e})", "MIN({e})", "MAX({e})"]


class TestRandomizedParity:
    def test_randomized_aggregate_queries(self, session):
        rng = random.Random(7)
        for _ in range(40):
            items = []
            for _ in range(rng.randrange(1, 4)):
                agg = rng.choice(AGG_FUNCS)
                items.append(agg.format(e=rng.choice(AGG_EXPRS)))
            sql = f"SELECT {', '.join(items)} FROM t"
            pred = rng.choice(PREDICATES)
            if pred is not None:
                sql += f" WHERE {pred}"
            assert_parity(session, sql, cold=rng.random() < 0.5)

    def test_blob_stream_reads_match(self, session):
        # varbinary_max goes through ReadBlob: stream calls and bytes
        # must be charged identically by both engines.
        assert_parity(
            session,
            "SELECT SUM(FloatArrayMax.Item_1(mb, 7)), COUNT(*) FROM t")
        assert_parity(
            session,
            "SELECT MAX(FloatArrayMax.Item_1(mb, 0)) FROM t "
            "WHERE x > 0")

    def test_grouped_queries(self, session):
        for sql in [
            "SELECT k, COUNT(*), SUM(x) FROM t GROUP BY k",
            "SELECT k, AVG(x), MIN(y), MAX(y) FROM t GROUP BY k",
            "SELECT k, SUM(FloatArray.Item_1(b, 1)) FROM t "
            "WHERE x IS NOT NULL GROUP BY k",
        ]:
            assert_parity(session, sql)

    def test_point_and_index_plans_accept_the_toggle(self, session):
        # Seek plans execute row-at-a-time under either engine name;
        # the toggle must still validate and return identical results.
        assert_parity(session, "SELECT SUM(x) FROM t WHERE id = 37",
                      seek=True)
        # A pk range is a clustered scan with a residual predicate —
        # that one does vectorize.
        assert_parity(session,
                      "SELECT COUNT(*) FROM t WHERE id >= 10 AND id < 40")

    def test_division_by_zero_raises_on_all_engines(self, session):
        for engine in ("row", "vector", "parallel"):
            with pytest.raises(ZeroDivisionError):
                session.query("SELECT SUM(x / (k - k)) FROM t "
                              "WHERE k IS NOT NULL AND x IS NOT NULL",
                              engine=engine)

    def test_bad_engine_name_rejected(self, session):
        with pytest.raises(ValueError):
            session.query("SELECT COUNT(*) FROM t", engine="columnar")

    def test_aggregate_empty_result_set(self, session):
        assert_parity(session,
                      "SELECT SUM(x), AVG(x), MIN(x), MAX(x), COUNT(*) "
                      "FROM t WHERE x > 1000")


class TestParityUnderTableLatches:
    """Three-way parity with the per-table latch layer forced on
    (``latch_mode="table"`` regardless of ``REPRO_LATCH``): the latch
    planning — single-table sets for row/vector, the all-table set for
    parallel snapshot cuts — must not perturb values or metrics."""

    @pytest.fixture(scope="class")
    def latched_session(self):
        db = Database(buffer_pages=2048, latch_mode="table")
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("x", "float"),
                  Column("k", "int"),
                  Column("b", "varbinary", cap=400)])
        rng = random.Random(11)
        table.insert_many([
            (i,
             None if rng.random() < 0.1 else rng.uniform(-5.0, 5.0),
             rng.randrange(0, 4),
             FloatArray.Vector_5(*[rng.uniform(-1.0, 1.0)
                                   for _ in range(5)]))
            for i in range(300)])
        # A second table proves single-table latch sets still plan
        # correctly when the catalog holds more than one table.
        db.create_table("u", [Column("id", "bigint")])
        return SqlSession(db)

    def test_three_way_parity(self, latched_session):
        for sql in [
            "SELECT COUNT(*), SUM(x) FROM t",
            "SELECT AVG(FloatArray.Item_1(b, 2)) FROM t WHERE x > 0",
            "SELECT k, COUNT(*), MAX(x) FROM t GROUP BY k",
            "SELECT MIN(x), MAX(x) FROM t WHERE x IS NOT NULL",
        ]:
            assert_parity(latched_session, sql)

    def test_seek_plan_parity(self, latched_session):
        assert_parity(latched_session,
                      "SELECT SUM(x) FROM t WHERE id = 42", seek=True)
