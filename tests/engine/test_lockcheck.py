"""Unit tests for the runtime lock-order sentinel
(``repro.engine.lockcheck``): out-of-order acquisitions raise with the
offending lock classes named, in-order stacks pass, and the same-class
rules (sorted table latch sets, reentrant pool mutex, stackable
intents) mirror the engine's discipline."""

import threading

import pytest

from repro.engine import lockcheck
from repro.engine.lockcheck import (
    DEFAULT_ORDER,
    LockOrderViolation,
    load_order,
    note_acquire,
    note_release,
    tracked_lock,
)
from repro.engine.locks import RWLock


@pytest.fixture(autouse=True)
def _sentinel_on():
    was = lockcheck.is_active()
    lockcheck.set_active(True)
    yield
    lockcheck.set_active(was)


# -- ordering ---------------------------------------------------------------

def test_in_order_stack_passes():
    for cls in ("catalog", "table", "pool"):
        note_acquire(cls)
    assert [cls for cls, _ in lockcheck.held()] == \
        ["catalog", "table", "pool"]
    for cls in ("pool", "table", "catalog"):
        note_release(cls)
    assert lockcheck.held() == ()


def test_out_of_order_raises_naming_both_classes():
    note_acquire("pool")
    with pytest.raises(LockOrderViolation) as exc:
        note_acquire("table")  # table ranks before pool
    message = str(exc.value)
    assert "'table'" in message
    assert "'pool'" in message
    # Nothing was recorded for the failed acquisition.
    assert [cls for cls, _ in lockcheck.held()] == ["pool"]


def test_latch_under_pagefile_raises():
    note_acquire("pagefile")
    with pytest.raises(LockOrderViolation):
        note_acquire("table", "t")


def test_unknown_classes_carry_no_constraints():
    note_acquire("pool")
    note_acquire("experimental")  # not in the exported order: allowed
    note_acquire("catalog2")


# -- same-class rules -------------------------------------------------------

def test_non_reentrant_same_class_raises():
    note_acquire("catalog")
    with pytest.raises(LockOrderViolation) as exc:
        note_acquire("catalog")
    assert "re-acquires" in str(exc.value)


def test_table_latches_nest_only_ascending():
    note_acquire("table", "aaa")
    note_acquire("table", "bbb")  # sorted latch-set order: fine
    with pytest.raises(LockOrderViolation) as exc:
        note_acquire("table", "abc")  # out of sorted order
    assert "'abc'" in str(exc.value)


def test_same_table_latch_twice_raises():
    note_acquire("table", "t")
    with pytest.raises(LockOrderViolation):
        note_acquire("table", "t")


def test_intents_stack():
    note_acquire("intent", "a")
    note_acquire("intent", "a")
    note_acquire("intent", "b")


def test_reentrant_pool_mutex_nests():
    lock = tracked_lock("pool", reentrant=True)
    with lock:
        with lock:
            assert [cls for cls, _ in lockcheck.held()] == ["pool", "pool"]
    assert lockcheck.held() == ()


# -- tracked locks and instrumented RWLocks ---------------------------------

def test_tracked_lock_timeout_rolls_back_record():
    lock = tracked_lock("pool")
    grabbed = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            grabbed.set()
            release.wait(timeout=5.0)

    thread = threading.Thread(target=holder)
    thread.start()
    assert grabbed.wait(timeout=5.0)
    assert lock.acquire(timeout=0.05) is False
    # The failed acquisition left no stale record behind.
    assert lockcheck.held() == ()
    release.set()
    thread.join(timeout=5.0)


def test_rwlock_acquisitions_are_instrumented():
    latch = RWLock()
    latch.lock_class = "table"
    latch.lock_name = "t"
    catalog = RWLock()
    catalog.lock_class = "catalog"
    latch.acquire_read()
    try:
        with pytest.raises(LockOrderViolation) as exc:
            catalog.acquire_read()  # catalog under a table latch
        assert "'catalog'" in str(exc.value)
        assert "'table'" in str(exc.value)
    finally:
        latch.release_read()
    assert lockcheck.held() == ()


def test_inactive_fast_path_checks_nothing():
    lockcheck.set_active(False)
    note_acquire("pool")
    note_acquire("table")  # would raise when active
    assert lockcheck.held() == ()


# -- order loading ----------------------------------------------------------

def test_load_order_matches_checked_in_graph():
    order = load_order()
    assert order == DEFAULT_ORDER  # fallback kept in sync with the JSON
    assert order.index("catalog") < order.index("table")
    assert order.index("table") < order.index("pool")


def test_load_order_missing_file_falls_back(tmp_path):
    assert load_order(str(tmp_path / "absent.json")) == DEFAULT_ORDER
