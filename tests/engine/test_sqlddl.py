"""Tests for SQL DDL/DML and GROUP BY in the front-end."""

import numpy as np
import pytest

from repro.engine import Database, SqlSession, SqlSyntaxError
from repro.tsql import FloatArray


@pytest.fixture
def session():
    return SqlSession(Database())


class TestCreateTable:
    def test_all_types(self, session):
        t = session.execute(
            "CREATE TABLE t (id BIGINT PRIMARY KEY, a INT, "
            "b SMALLINT, c TINYINT, d FLOAT, e REAL, "
            "f VARBINARY(100), g VARBINARY(MAX))")
        assert [c.type for c in t.columns] == [
            "bigint", "int", "smallint", "tinyint", "float", "real",
            "varbinary", "varbinary_max"]
        assert t.columns[6].cap == 100

    def test_registered_in_catalog(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        assert "t" in session.db.tables

    def test_primary_key_only_on_first(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute(
                "CREATE TABLE t (id BIGINT, x FLOAT PRIMARY KEY)")

    def test_unknown_type(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("CREATE TABLE t (id BIGINT, x TEXT)")

    def test_varbinary_needs_size(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("CREATE TABLE t (id BIGINT, v VARBINARY)")


class TestDropTable:
    def test_drop_removes_from_catalog(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        assert session.execute("DROP TABLE t") == 0
        assert "t" not in session.db.tables

    def test_drop_is_case_insensitive(self, session):
        session.execute("CREATE TABLE Weather (id BIGINT, x FLOAT)")
        session.execute("DROP TABLE weather")
        assert session.db.tables == {}

    def test_drop_unknown_table(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("DROP TABLE nowhere")

    def test_drop_then_recreate_round_trip(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        session.execute("INSERT INTO t VALUES (1, 2.5)")
        session.execute("DROP TABLE t")
        session.execute("CREATE TABLE t (id BIGINT, y FLOAT, z INT)")
        assert session.execute(
            "INSERT INTO t VALUES (1, 0.5, 3)") == 1
        (count,), _m = session.execute("SELECT COUNT(*) FROM t")
        assert count == 1

    def test_write_version_monotonic_across_drop(self, session):
        """Snapshot refresh keys off a monotone write_version; a
        drop/recreate cycle must never rewind it, or stale parallel
        snapshots would look fresh."""
        db = session.db
        v0 = db.write_version
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        session.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
        v1 = db.write_version
        assert v1 > v0
        session.execute("DROP TABLE t")
        v2 = db.write_version
        assert v2 > v1
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        assert db.write_version > v2

    def test_drop_invalidates_cached_plans(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        session.execute("INSERT INTO t VALUES (1, 1.0)")
        session.query("SELECT COUNT(*) FROM t")
        session.execute("DROP TABLE t")
        with pytest.raises(SqlSyntaxError):
            session.query("SELECT COUNT(*) FROM t")

    def test_drop_readonly_snapshot_rejected(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        snapshot = Database.from_snapshot_bytes(
            session.db.snapshot_bytes(), read_only=True)
        with pytest.raises(PermissionError):
            snapshot.drop_table("t")


class TestInsert:
    def test_literals_and_nulls(self, session):
        session.execute("CREATE TABLE t (id BIGINT, x FLOAT)")
        n = session.execute(
            "INSERT INTO t VALUES (1, 2.5), (2, NULL), (3, -4.5)")
        assert n == 3
        (count, total), _m = session.execute(
            "SELECT COUNT(*), SUM(x) FROM t")
        assert count == 3
        assert total == pytest.approx(-2.0)

    def test_array_constructor_values(self, session):
        session.execute("CREATE TABLE t (id BIGINT, v VARBINARY(100))")
        session.execute(
            "INSERT INTO t VALUES (1, FloatArray.Vector_3(1, 2, 3))")
        (item,), _m = session.execute(
            "SELECT SUM(FloatArray.Item_1(v, 1)) FROM t")
        assert item == 2.0

    def test_string_value(self, session):
        session.execute("CREATE TABLE t (id BIGINT, v VARBINARY(20))")
        session.execute("INSERT INTO t VALUES (1, 'abc')")
        assert session.db.tables["t"].get(1)[1] == b"abc"

    def test_insert_into_unknown_table(self, session):
        with pytest.raises(SqlSyntaxError):
            session.execute("INSERT INTO nope VALUES (1)")

    def test_full_workflow_sql_only(self, session):
        """The paper's workflow with no Python API at all."""
        session.execute(
            "CREATE TABLE Tvector (id BIGINT PRIMARY KEY, "
            "v VARBINARY(100))")
        for i in range(50):
            session.execute(
                f"INSERT INTO Tvector VALUES ({i}, "
                f"FloatArray.Vector_2({i}, {i * 2}))")
        (total,), m = session.execute(
            "SELECT SUM(FloatArray.Item_1(v, 1)) FROM Tvector "
            "WITH (NOLOCK)")
        assert total == sum(i * 2 for i in range(50))
        assert m.udf_calls == 50


class TestGroupBy:
    @pytest.fixture
    def loaded(self, session):
        session.execute("CREATE TABLE s (id BIGINT, zbin INT, "
                        "flux FLOAT)")
        rng = np.random.default_rng(0)
        data = []
        for i in range(200):
            zbin = int(rng.integers(0, 4))
            flux = float(rng.standard_normal() + zbin * 10)
            data.append((zbin, flux))
            session.execute(
                f"INSERT INTO s VALUES ({i}, {zbin}, {flux})")
        return session, data

    def test_group_means(self, loaded):
        session, data = loaded
        rows, _m = session.execute(
            "SELECT zbin, COUNT(*), AVG(flux) FROM s GROUP BY zbin")
        assert [r[0] for r in rows] == [0, 1, 2, 3]
        for zbin, count, avg in rows:
            members = [f for z, f in data if z == zbin]
            assert count == len(members)
            assert avg == pytest.approx(np.mean(members))

    def test_group_with_where(self, loaded):
        session, data = loaded
        rows, _m = session.execute(
            "SELECT zbin, COUNT(*) FROM s WHERE flux > 0 "
            "GROUP BY zbin")
        for zbin, count in rows:
            assert count == sum(1 for z, f in data
                                if z == zbin and f > 0)

    def test_group_expression(self, loaded):
        session, data = loaded
        rows, _m = session.execute(
            "SELECT zbin * 2, COUNT(*) FROM s GROUP BY zbin * 2")
        assert [r[0] for r in rows] == [0, 2, 4, 6]

    def test_group_selection_must_match(self, loaded):
        session, _data = loaded
        with pytest.raises(SqlSyntaxError):
            session.execute(
                "SELECT flux, COUNT(*) FROM s GROUP BY zbin")

    def test_group_needs_aggregate(self, loaded):
        session, _data = loaded
        with pytest.raises(SqlSyntaxError):
            session.execute("SELECT zbin FROM s GROUP BY zbin")

    def test_plain_expr_without_group_rejected(self, loaded):
        session, _data = loaded
        with pytest.raises(SqlSyntaxError):
            session.execute("SELECT zbin FROM s")

    def test_composite_by_redshift_query_shape(self, session):
        """Section 2.2's motivating query: composites grouped by
        redshift bin, via a UDF-built scalar per row."""
        session.execute("CREATE TABLE spectra (id BIGINT, zbin INT, "
                        "flux VARBINARY(200))")
        rng = np.random.default_rng(1)
        for i in range(60):
            zbin = i % 3
            values = rng.standard_normal(8) + 5 * zbin
            blob = FloatArray.Vector(values)
            session.db.tables["spectra"].insert((i, zbin, blob))
        rows, _m = session.execute(
            "SELECT zbin, AVG(FloatArray.Mean(flux)), COUNT(*) "
            "FROM spectra GROUP BY zbin")
        means = [r[1] for r in rows]
        assert means[0] < means[1] < means[2]
        assert all(r[2] == 20 for r in rows)


class TestDelete:
    def test_delete_with_predicate(self, session):
        session.execute("CREATE TABLE d (id BIGINT, x FLOAT)")
        session.execute(
            "INSERT INTO d VALUES (1, 1.0), (2, -1.0), (3, 5.0)")
        assert session.execute("DELETE FROM d WHERE x < 0") == 1
        (n,), _m = session.execute("SELECT COUNT(*) FROM d")
        assert n == 2

    def test_delete_by_key_uses_seek(self, session):
        session.execute("CREATE TABLE d2 (id BIGINT, x FLOAT)")
        for i in range(20):
            session.execute(f"INSERT INTO d2 VALUES ({i}, {i}.0)")
        assert session.execute("DELETE FROM d2 WHERE id = 7") == 1
        assert session.execute("DELETE FROM d2 WHERE id = 7") == 0
        (n,), _m = session.execute("SELECT COUNT(*) FROM d2")
        assert n == 19

    def test_delete_all(self, session):
        session.execute("CREATE TABLE d3 (id BIGINT, x FLOAT)")
        session.execute("INSERT INTO d3 VALUES (1, 1.0), (2, 2.0)")
        assert session.execute("DELETE FROM d3") == 2
        (n,), _m = session.execute("SELECT COUNT(*) FROM d3")
        assert n == 0

    def test_delete_maintains_indexes(self, session):
        session.execute("CREATE TABLE d4 (id BIGINT, cat INT)")
        for i in range(10):
            session.execute(f"INSERT INTO d4 VALUES ({i}, {i % 2})")
        table = session.db.tables["d4"]
        table.create_index("cat")
        session.execute("DELETE FROM d4 WHERE cat = 0")
        assert table.index_on("cat").seek(0) == []
        (n,), _m = session.execute(
            "SELECT COUNT(*) FROM d4 WHERE cat = 1")
        assert n == 5
