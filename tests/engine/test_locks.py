"""Dedicated suite for ``repro.engine.locks.RWLock`` — the statement-level
writer-preferring lock every query and DDL statement runs under.

Covered: shared readers, writer exclusion, writer preference under a
reader stream, timeout behavior, release-on-exception, and the documented
non-reentrancy (a read holder must not try to upgrade to write)."""

import threading
import time

import pytest

from repro.engine import lockcheck
from repro.engine.locks import RWLock


@pytest.fixture(autouse=True)
def _no_sentinel():
    # This suite exercises the raw RWLock mechanics, including the
    # documented self-deadlock shapes (upgrade attempts, re-entrant
    # writes) probed with same-thread timeouts — the runtime order
    # sentinel would reject them before the mechanics under test run.
    was = lockcheck.is_active()
    lockcheck.set_active(False)
    yield
    lockcheck.set_active(was)


def test_readers_share():
    lock = RWLock()
    entered = []
    barrier = threading.Barrier(4, timeout=5.0)

    def reader():
        with lock.read_lock():
            entered.append(threading.get_ident())
            barrier.wait()  # all four must be inside simultaneously

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5.0)
    assert len(entered) == 4


def test_writer_excludes_readers_and_writers():
    lock = RWLock()
    order = []

    def writer():
        with lock.write_lock():
            order.append("w-in")
            time.sleep(0.05)
            order.append("w-out")

    def reader():
        with lock.read_lock():
            order.append("r")

    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.01)  # let the writer get in first
    r = threading.Thread(target=reader)
    r.start()
    w.join(timeout=5.0)
    r.join(timeout=5.0)
    assert order[:2] == ["w-in", "w-out"]
    assert order[2] == "r"


def test_writer_preference_blocks_new_readers():
    lock = RWLock()
    release_reader = threading.Event()
    writer_done = threading.Event()

    def holder():
        with lock.read_lock():
            release_reader.wait(timeout=5.0)

    def writer():
        with lock.write_lock():
            writer_done.set()

    h = threading.Thread(target=holder)
    h.start()
    time.sleep(0.02)
    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.05)  # writer is now waiting on the reader

    # A *new* reader must queue behind the waiting writer, not sneak in.
    assert lock.acquire_read(timeout=0.2) is False
    assert not writer_done.is_set()

    release_reader.set()
    w.join(timeout=5.0)
    h.join(timeout=5.0)
    assert writer_done.is_set()

    # Once the writer drains, readers may enter again.
    assert lock.acquire_read(timeout=2.0) is True
    lock.release_read()


def test_reader_stream_does_not_starve_writer():
    lock = RWLock()
    stop = threading.Event()
    writer_done = threading.Event()

    def reader_stream():
        while not stop.is_set():
            if lock.acquire_read(timeout=0.05):
                time.sleep(0.002)
                lock.release_read()

    readers = [threading.Thread(target=reader_stream) for _ in range(4)]
    for t in readers:
        t.start()
    time.sleep(0.05)

    def writer():
        with lock.write_lock():
            writer_done.set()

    w = threading.Thread(target=writer)
    w.start()
    w.join(timeout=5.0)
    stop.set()
    for t in readers:
        t.join(timeout=5.0)
    assert writer_done.is_set(), "writer starved by a stream of readers"


def test_read_released_on_exception():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        with lock.read_lock():
            raise RuntimeError("boom")
    # Fully released: a writer can get in immediately.
    assert lock.acquire_write(timeout=1.0) is True
    lock.release_write()


def test_write_released_on_exception():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        with lock.write_lock():
            raise RuntimeError("boom")
    assert lock.acquire_read(timeout=1.0) is True
    lock.release_read()


def test_write_is_not_reentrant():
    lock = RWLock()
    assert lock.acquire_write(timeout=1.0) is True
    try:
        # The same thread asking again must time out, not recurse.
        assert lock.acquire_write(timeout=0.1) is False
    finally:
        lock.release_write()


def test_read_to_write_upgrade_times_out():
    lock = RWLock()
    with lock.read_lock():
        # Upgrading would deadlock; the timeout path must fire.
        assert lock.acquire_write(timeout=0.1) is False
    assert lock.acquire_write(timeout=1.0) is True
    lock.release_write()


def test_acquire_read_timeout_returns_false_under_writer():
    lock = RWLock()
    assert lock.acquire_write(timeout=1.0) is True
    try:
        start = time.monotonic()
        assert lock.acquire_read(timeout=0.1) is False
        assert time.monotonic() - start < 2.0
    finally:
        lock.release_write()


def test_release_read_without_holders_raises():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_read()


def test_sequential_reacquisition():
    lock = RWLock()
    for _ in range(3):
        with lock.write_lock():
            pass
        with lock.read_lock():
            pass
