"""QueryMetrics and cost-model arithmetic tests."""

import pytest

from repro.engine import PAPER_HARDWARE, QueryMetrics, format_table
from repro.engine.bufferpool import IoCounters


def _metrics(**kwargs):
    defaults = dict(
        label="Q", rows=1000, io_bytes=8192 * 100,
        physical_reads=100, sequential_reads=98, random_reads=2,
        sim_io_seconds=1.0, sim_io_seq_seconds=0.9,
        sim_io_random_seconds=0.1, sim_cpu_core_seconds=4.0,
        sim_exec_seconds=1.0, cores=8)
    defaults.update(kwargs)
    return QueryMetrics(**defaults)


class TestDerivedColumns:
    def test_cpu_percent(self):
        m = _metrics(sim_cpu_core_seconds=4.0, sim_exec_seconds=1.0)
        assert m.cpu_percent == pytest.approx(50.0)

    def test_cpu_percent_capped_at_100(self):
        m = _metrics(sim_cpu_core_seconds=100.0, sim_exec_seconds=1.0)
        assert m.cpu_percent == 100.0

    def test_io_rate(self):
        m = _metrics(io_bytes=115_000_000, sim_exec_seconds=0.1)
        assert m.io_mb_per_s == pytest.approx(1150.0)

    def test_zero_exec_time(self):
        m = _metrics(sim_exec_seconds=0.0)
        assert m.cpu_percent == 0.0
        assert m.io_mb_per_s == 0.0


class TestScaling:
    def test_linear_quantities_scale(self):
        m = _metrics()
        big = m.scaled(100.0)
        assert big.rows == 100_000
        assert big.io_bytes == m.io_bytes * 100
        assert big.sim_cpu_core_seconds == pytest.approx(400.0)

    def test_cpu_percent_invariant_when_everything_scales(self):
        m = _metrics(random_reads=0, sim_io_random_seconds=0.0,
                     sim_io_seconds=0.9, sim_exec_seconds=0.9)
        big = m.scaled(50.0)
        assert big.cpu_percent == pytest.approx(m.cpu_percent, abs=0.5)

    def test_fixed_random_reads_do_not_scale(self):
        m = _metrics()
        big = m.scaled(1000.0, fixed_random_reads=2)
        # Only the two descent seeks remain: random time stays put.
        assert big.random_reads == 2
        assert big.sim_io_random_seconds == pytest.approx(0.1)
        assert big.sim_io_seq_seconds == pytest.approx(900.0)

    def test_scaling_random_reads_without_fixed(self):
        m = _metrics()
        big = m.scaled(1000.0)
        assert big.random_reads == 2000
        assert big.sim_io_random_seconds == pytest.approx(100.0)


class TestCostModel:
    def test_io_split_adds_up(self):
        c = IoCounters(logical_reads=10, physical_reads=10,
                       sequential_reads=8, random_reads=2)
        seq, rand = PAPER_HARDWARE.io_seconds_split(c)
        assert seq + rand == pytest.approx(PAPER_HARDWARE.io_seconds(c))
        assert seq == pytest.approx(
            8 * 8192 / PAPER_HARDWARE.seq_read_bytes_per_sec)
        assert rand == pytest.approx(
            2 / PAPER_HARDWARE.random_reads_per_sec)

    def test_exec_is_max_of_io_and_cpu(self):
        m = PAPER_HARDWARE
        assert m.exec_seconds(10.0, 8.0) == 10.0   # IO-bound
        assert m.exec_seconds(1.0, 80.0) == 10.0   # CPU-bound, 8 cores

    def test_with_overrides(self):
        faster = PAPER_HARDWARE.with_overrides(cores=16)
        assert faster.cores == 16
        assert PAPER_HARDWARE.cores == 8  # original untouched

    def test_parallelism_ablation(self):
        """Fewer cores push a CPU-bound query's time up linearly —
        Table 1's Q4 depends on all eight cores."""
        core_secs = 1000.0
        io = 25.0
        t8 = PAPER_HARDWARE.exec_seconds(io, core_secs)
        t1 = PAPER_HARDWARE.with_overrides(cores=1).exec_seconds(
            io, core_secs)
        assert t8 == pytest.approx(core_secs / 8)
        assert t1 == pytest.approx(core_secs)


class TestFormatting:
    def test_format_table_layout(self):
        text = format_table([_metrics(label="Query 1")])
        assert "Execution time [s]" in text
        assert "Query 1" in text
        lines = text.splitlines()
        assert len(lines) == 3  # title, header, one row


class TestDictRoundTrip:
    def test_to_dict_has_every_field_and_derived_columns(self):
        m = _metrics(label="Query 4", udf_calls=42)
        d = m.to_dict()
        assert d["label"] == "Query 4"
        assert d["udf_calls"] == 42
        assert d["cpu_percent"] == pytest.approx(m.cpu_percent)
        assert d["io_mb_per_s"] == pytest.approx(m.io_mb_per_s)
        import json
        json.dumps(d)  # must be JSON-serializable as-is

    def test_from_dict_inverts_to_dict(self):
        m = _metrics(label="Query 2", stream_calls=7, wall_seconds=0.5)
        assert QueryMetrics.from_dict(m.to_dict()) == m

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            QueryMetrics.from_dict({"label": "Q", "bogus": 1})
