"""Concurrency safety of the shared engine: BufferPool under a
fetch/clear hammer, two SqlSessions over one Database, and the
reader/writer lock itself."""

import threading

import pytest

from repro.engine import (
    PAGE_DATA,
    BufferPool,
    Column,
    Database,
    PageFile,
    RWLock,
)
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray


def _counters_consistent(c):
    assert c.physical_reads == c.sequential_reads + c.random_reads
    assert c.logical_reads >= c.physical_reads
    assert c.logical_reads >= 0


class TestBufferPoolThreadSafety:
    def test_fetch_clear_hammer(self):
        """Many threads fetching while others clear: no exceptions,
        no corrupted counters, no LRU overflow."""
        pagefile = PageFile()
        page_ids = [pagefile.allocate(PAGE_DATA).page_id
                    for _ in range(64)]
        pool = BufferPool(pagefile, capacity_pages=16)
        stop = threading.Event()
        errors = []

        def fetcher(seed):
            try:
                i = seed
                while not stop.is_set():
                    pool.fetch(page_ids[i % len(page_ids)])
                    i += 7
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def clearer():
            try:
                while not stop.is_set():
                    pool.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=fetcher, args=(s,))
                   for s in range(4)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        # Let them contend for a moment.
        threading.Event().wait(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        snap = pool.snapshot_counters()
        _counters_consistent(snap)
        assert snap.logical_reads > 0
        assert pool.cached_pages <= 16

    def test_thread_counters_isolate_concurrent_fetchers(self):
        """Each thread's counter delta covers exactly its own fetches,
        however the threads interleave; the global counters aggregate
        everyone."""
        pagefile = PageFile()
        page_ids = [pagefile.allocate(PAGE_DATA).page_id
                    for _ in range(32)]
        pool = BufferPool(pagefile)
        barrier = threading.Barrier(2)
        deltas = {}
        errors = []

        def worker(idx, n_fetches):
            try:
                barrier.wait(timeout=10)
                before = pool.snapshot_thread_counters()
                for i in range(n_fetches):
                    pool.fetch(page_ids[i % len(page_ids)])
                deltas[idx] = pool.snapshot_thread_counters() \
                                  .delta_since(before)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(0, 100)),
                   threading.Thread(target=worker, args=(1, 250))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # Exact per-thread logical counts — a global-counter diff would
        # mix in the other thread's fetches.
        assert deltas[0].logical_reads == 100
        assert deltas[1].logical_reads == 250
        for d in deltas.values():
            _counters_consistent(d)
        # Every miss lands in exactly one thread's counters.
        assert deltas[0].physical_reads + deltas[1].physical_reads \
            == len(page_ids)
        glob = pool.snapshot_counters()
        _counters_consistent(glob)
        assert glob.logical_reads == 350
        assert glob.physical_reads == len(page_ids)

    def _sequential_stream_reset_by(self, reset):
        """Regression: ``clear()``/``reset_counters()`` used to reset
        only the *calling* thread's sequential-stream position.  A
        worker mid-stream would then classify its next physical read
        as sequential against a pre-clear page — chaining a read-ahead
        stream across a cache clear, which no real disk would do."""
        pagefile = PageFile()
        page_ids = [pagefile.allocate(PAGE_DATA).page_id
                    for _ in range(3)]
        assert page_ids == [0, 1, 2]  # contiguous: 1 and 2 ride 0's stream
        pool = BufferPool(pagefile)
        fetched_two = threading.Event()
        cleared = threading.Event()
        deltas = []
        errors = []

        def worker():
            try:
                pool.fetch(page_ids[0])   # random (stream start)
                pool.fetch(page_ids[1])   # sequential
                fetched_two.set()
                assert cleared.wait(timeout=10)
                pool.fetch(page_ids[2])   # must be random again
                deltas.append(pool.snapshot_thread_counters())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        assert fetched_two.wait(timeout=10)
        reset(pool)                       # from the *main* thread
        cleared.set()
        t.join(timeout=10)
        assert not errors
        (delta,) = deltas
        assert delta.physical_reads == 3
        assert delta.sequential_reads == 1, \
            "post-clear read chained onto the pre-clear stream"
        assert delta.random_reads == 2
        _counters_consistent(delta)

    def test_clear_resets_other_threads_streams(self):
        self._sequential_stream_reset_by(lambda pool: pool.clear())

    def test_reset_counters_resets_other_threads_streams(self):
        self._sequential_stream_reset_by(
            lambda pool: pool.reset_counters())

    def test_snapshot_counters_is_copy(self):
        pagefile = PageFile()
        pid = pagefile.allocate(PAGE_DATA).page_id
        pool = BufferPool(pagefile)
        before = pool.snapshot_counters()
        pool.fetch(pid)
        after = pool.snapshot_counters()
        assert before.logical_reads == 0
        assert after.logical_reads == 1
        d = after.delta_since(before)
        _counters_consistent(d)


class TestConcurrentSessions:
    @pytest.fixture
    def db(self):
        db = Database()
        t = db.create_table(
            "Tvector", [Column("id", "bigint"),
                        Column("v", "varbinary", cap=100)])
        for i in range(500):
            t.insert((i, FloatArray.Vector_3(float(i), 2.0, 3.0)))
        return db

    def test_two_sessions_hammer_queries(self, db):
        """Two sessions issuing Table 1-style queries from separate
        threads get correct values and consistent counters."""
        results = {0: [], 1: []}
        errors = []

        def worker(idx):
            session = SqlSession(db)
            try:
                for _ in range(10):
                    (n,), m = session.query(
                        "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")
                    (s,), _ = session.query(
                        "SELECT SUM(FloatArray.Item_1(v, 0)) "
                        "FROM Tvector WITH (NOLOCK)")
                    results[idx].append((n, s, m))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        expected_sum = float(sum(range(500)))
        for idx in (0, 1):
            assert len(results[idx]) == 10
            for n, s, m in results[idx]:
                assert n == 500
                assert s == pytest.approx(expected_sum)
                assert m.rows == 500
        _counters_consistent(db.pool.snapshot_counters())

    def test_concurrent_query_metrics_not_inflated(self, db):
        """A query's IO metrics must not absorb a concurrent
        neighbour's page reads: each cold COUNT reports at most the
        solo page count (sharing can make it cheaper, never dearer)."""
        solo = SqlSession(db).query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")[1]
        assert solo.physical_reads > 0
        collected = []
        errors = []

        def worker():
            session = SqlSession(db)
            try:
                for _ in range(5):
                    (n,), m = session.query(
                        "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")
                    collected.append((n, m))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(collected) == 15
        for n, m in collected:
            assert n == 500
            assert 0 < m.physical_reads <= solo.physical_reads
            assert m.physical_reads \
                == m.sequential_reads + m.random_reads

    def test_concurrent_clear_charges_refetch_to_refetcher(self, db):
        """Pins the documented concurrent-cold-query semantics
        (docs/SERVER.md): a cold neighbour's cache clear makes a warm
        session re-fetch its pages, and that IO is charged to whoever
        actually re-fetches — the counts stay accurate, they just move
        to the session doing the reads."""
        session_a = SqlSession(db)
        # Prime the cache and learn the table's full physical cost.
        (_, cold_m) = session_a.query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
            engine="vector")
        assert cold_m.physical_reads > 0
        (_, warm_m) = session_a.query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)", cold=False,
            engine="vector")
        assert warm_m.physical_reads == 0

        # Session B (another thread) runs a cold query to completion:
        # the clear *and* the re-fetch IO both belong to B.
        b_metrics = []

        def cold_neighbour():
            session_b = SqlSession(db)
            b_metrics.append(session_b.query(
                "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
            engine="vector")[1])

        t = threading.Thread(target=cold_neighbour)
        t.start()
        t.join(timeout=60)
        assert b_metrics[0].physical_reads == cold_m.physical_reads

        # B left the cache warm, so A still reads for free...
        (_, warm_m2) = session_a.query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)", cold=False,
            engine="vector")
        assert warm_m2.physical_reads == 0

        # ...but after a bare concurrent clear (a cold query's first
        # act), A's next warm query re-fetches everything and the IO
        # lands in *A's* metrics, while the clearing thread is charged
        # nothing.
        clearer_counters = []

        def clearer():
            db.pool.clear()
            clearer_counters.append(db.pool.snapshot_thread_counters())

        t = threading.Thread(target=clearer)
        t.start()
        t.join(timeout=10)
        assert clearer_counters[0].physical_reads == 0
        (_, evicted_m) = session_a.query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)", cold=False,
            engine="vector")
        assert evicted_m.physical_reads == cold_m.physical_reads

    def test_two_concurrent_cold_scans_match_serial_counters(self, db):
        """Per-query IO counters are independent under concurrency:
        two cold scans racing each other each report exactly what a
        serial cold run reports.  Under MVCC a cold query charges
        itself through a private cold *view* (per-thread forced
        misses) instead of clearing the shared pool, so a neighbour
        can neither donate hits to it nor eat re-fetch charges."""
        if not db.mvcc:
            pytest.skip("legacy cold=clear mode documents shifted IO")
        serial = SqlSession(db).query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
            engine="vector")[1]
        assert serial.physical_reads > 0
        barrier = threading.Barrier(2)
        metrics = []
        errors = []

        def worker():
            session = SqlSession(db)
            try:
                barrier.wait(timeout=10)
                metrics.append(session.query(
                    "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
                    engine="vector")[1])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(metrics) == 2
        for m in metrics:
            assert m.physical_reads == serial.physical_reads
            assert m.sequential_reads == serial.sequential_reads
            assert m.random_reads == serial.random_reads
            assert m.rows == serial.rows

    def test_writer_excludes_readers(self, db):
        """An INSERT in one session never interleaves mid-scan with a
        COUNT in another: counts observed are consistent totals."""
        errors = []
        counts = []

        def reader():
            session = SqlSession(db)
            try:
                for _ in range(20):
                    (n,), _ = session.query(
                        "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
                        cold=False)
                    counts.append(n)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            session = SqlSession(db)
            try:
                for i in range(20):
                    session.execute(
                        f"INSERT INTO Tvector VALUES ({1000 + i}, "
                        "FloatArray.Vector_3(1.0, 2.0, 3.0))")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # Monotone non-decreasing totals within [500, 520]: a torn scan
        # would show a value outside the range.
        assert all(500 <= n <= 520 for n in counts)
        final = SqlSession(db).query(
            "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")[0][0]
        assert final == 520


class TestRWLock:
    @pytest.fixture(autouse=True)
    def _no_sentinel(self):
        # These tests exercise the raw RWLock mechanics — including the
        # same-thread upgrade-timeout path the runtime sentinel exists
        # to reject — so the order check is suspended here.
        from repro.engine import lockcheck

        was = lockcheck.is_active()
        lockcheck.set_active(False)
        yield
        lockcheck.set_active(was)

    def test_readers_share(self):
        lock = RWLock()
        acquired = []

        def reader():
            with lock.read_lock():
                acquired.append(1)
                barrier.wait(timeout=10)

        barrier = threading.Barrier(3)
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(acquired) == 3

    def test_writer_exclusive(self):
        lock = RWLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_lock():
                order.append("read")

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()          # blocked behind the writer
        order.append("write-done")
        lock.release_write()
        t.join(timeout=10)
        assert order == ["write-done", "read"]

    def test_write_timeout(self):
        lock = RWLock()
        lock.acquire_read()
        assert lock.acquire_write(timeout=0.05) is False
        lock.release_read()
        assert lock.acquire_write(timeout=1.0) is True
        lock.release_write()

    def test_read_timeout_behind_writer(self):
        lock = RWLock()
        lock.acquire_write()
        assert lock.acquire_read(timeout=0.05) is False
        lock.release_write()
