"""Buffer pool accounting tests."""

from repro.engine import BufferPool, PageFile
from repro.engine.bufferpool import SEQ_READ_WINDOW
from repro.engine.constants import PAGE_DATA


def _file_with(n):
    f = PageFile()
    pages = [f.allocate(PAGE_DATA, tag="t") for _ in range(n)]
    return f, [p.page_id for p in pages]


class TestHitMiss:
    def test_first_fetch_is_physical(self):
        f, ids = _file_with(3)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        assert pool.counters.physical_reads == 1
        assert pool.counters.logical_reads == 1

    def test_second_fetch_is_logical_only(self):
        f, ids = _file_with(3)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        pool.fetch(ids[0])
        assert pool.counters.physical_reads == 1
        assert pool.counters.logical_reads == 2

    def test_clear_forces_reread(self):
        f, ids = _file_with(3)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        pool.clear()
        pool.fetch(ids[0])
        assert pool.counters.physical_reads == 2

    def test_lru_eviction(self):
        f, ids = _file_with(5)
        pool = BufferPool(f, capacity_pages=2)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        pool.fetch(ids[2])  # evicts ids[0]
        assert pool.cached_pages == 2
        pool.fetch(ids[0])
        assert pool.counters.physical_reads == 4

    def test_lru_recency_update(self):
        f, ids = _file_with(5)
        pool = BufferPool(f, capacity_pages=2)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        pool.fetch(ids[0])  # refresh 0
        pool.fetch(ids[2])  # evicts 1, not 0
        pool.fetch(ids[0])
        assert pool.counters.physical_reads == 3


class TestSequentialDetection:
    def test_ascending_run_is_sequential(self):
        f, ids = _file_with(10)
        pool = BufferPool(f)
        for pid in ids:
            pool.fetch(pid)
        # First read has no predecessor -> random; rest sequential.
        assert pool.counters.sequential_reads == 9
        assert pool.counters.random_reads == 1

    def test_short_forward_jump_rides_readahead(self):
        f, ids = _file_with(10)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        pool.fetch(ids[5])  # small forward gap
        assert pool.counters.sequential_reads == 1

    def test_backward_jump_is_random(self):
        f, ids = _file_with(10)
        pool = BufferPool(f)
        pool.fetch(ids[5])
        pool.fetch(ids[0])
        assert pool.counters.random_reads == 2

    def test_long_forward_jump_is_random(self):
        f = PageFile()
        first = f.allocate(PAGE_DATA, tag="a")
        for _ in range(SEQ_READ_WINDOW + 300):
            last = f.allocate(PAGE_DATA, tag="a")
        pool = BufferPool(f)
        pool.fetch(first.page_id)
        pool.fetch(last.page_id)
        assert pool.counters.random_reads == 2


class TestCounters:
    def test_snapshot_delta(self):
        f, ids = _file_with(4)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        before = pool.counters.snapshot()
        pool.fetch(ids[1])
        pool.fetch(ids[1])
        delta = pool.counters.delta_since(before)
        assert delta.physical_reads == 1
        assert delta.logical_reads == 2

    def test_physical_bytes(self):
        from repro.engine import PAGE_SIZE
        f, ids = _file_with(3)
        pool = BufferPool(f)
        for pid in ids:
            pool.fetch(pid)
        assert pool.counters.physical_bytes == 3 * PAGE_SIZE

    def test_reset(self):
        f, ids = _file_with(2)
        pool = BufferPool(f)
        pool.fetch(ids[0])
        old = pool.reset_counters()
        assert old.physical_reads == 1
        assert pool.counters.physical_reads == 0
