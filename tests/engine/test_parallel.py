"""The parallel engine's machinery: pools, snapshots, fallbacks,
and the batch kernels added for Subarray/Concat.

Value/metrics *parity* against the serial engines lives in
``test_parity.py``; this file covers the moving parts around it —
worker-crash recovery, pool lifecycle, read-only snapshots, honest
fallback reporting, and the env-var defaults.
"""

import os
import pickle
import random
import struct

import numpy as np
import pytest

from repro.core.errors import BoundsError
from repro.engine import Column, Database
from repro.engine import executor as executor_mod
from repro.engine import parallel
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray, IntArray

ROWS = 500


def _bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    if isinstance(value, (tuple, list)):
        return tuple(_bits(v) for v in value)
    return value


@pytest.fixture()
def session():
    db = Database(buffer_pages=2048)
    table = db.create_table(
        "t", [Column("id", "bigint"), Column("x", "float"),
              Column("k", "int"),
              Column("b", "varbinary", cap=400)])
    rng = random.Random(11)
    rows = []
    for i in range(ROWS):
        x = None if rng.random() < 0.1 else rng.uniform(-4.0, 4.0)
        k = rng.randrange(0, 4)
        b = FloatArray.Vector_5(*[rng.uniform(-1, 1) for _ in range(5)])
        rows.append((i, x, k, b))
    table.insert_many(rows)
    yield SqlSession(db)
    pool = getattr(db, "_worker_pool", None)
    if pool is not None:
        pool.shutdown()


class TestEngineSelection:
    def test_scan_reports_parallel(self, session):
        vals, m = session.query("SELECT SUM(x), COUNT(*) FROM t",
                                engine="parallel", workers=2)
        assert m.engine == "parallel"
        assert m.workers == 2
        ref, _ = session.query("SELECT SUM(x), COUNT(*) FROM t",
                               engine="vector")
        assert _bits(vals) == _bits(ref)

    def test_grouped_scan_reports_parallel(self, session):
        vals, m = session.query(
            "SELECT k, SUM(x), COUNT(*) FROM t GROUP BY k",
            engine="parallel", workers=2)
        assert m.engine == "parallel"
        ref, _ = session.query(
            "SELECT k, SUM(x), COUNT(*) FROM t GROUP BY k",
            engine="vector")
        assert _bits(vals) == _bits(ref)

    def test_seek_plan_falls_back_to_row(self, session):
        vals, m = session.query("SELECT SUM(x) FROM t WHERE id = 7",
                                engine="parallel", workers=2)
        assert m.engine == "row"  # a point lookup has nothing to fan out
        ref, _ = session.query("SELECT SUM(x) FROM t WHERE id = 7")
        assert _bits(vals) == _bits(ref)

    def test_parallel_unsafe_udf_falls_back_to_vector(self, session):
        calls = []

        def tally(v):
            calls.append(v)
            return (v or 0.0) * 2.0

        session.register_function("dbo.Tally", tally,
                                  parallel_safe=False)
        vals, m = session.query(
            "SELECT SUM(dbo.Tally(x)) FROM t WHERE x IS NOT NULL",
            engine="parallel", workers=2)
        assert m.engine == "vector"  # honest fallback, not a lie
        assert calls  # ran in this process, not in a worker
        ref, _ = session.query(
            "SELECT SUM(dbo.Tally(x)) FROM t WHERE x IS NOT NULL",
            engine="vector")
        assert _bits(vals) == _bits(ref)
        # The flag lives in the session registry, not stamped onto the
        # caller's function object (which may be shared across sessions).
        assert not hasattr(tally, "_parallel_safe")

    def test_parallel_safe_flag_is_per_session(self, session):
        def doubler(v):
            return (v or 0.0) * 2.0

        session.register_function("dbo.Doubler", doubler,
                                  parallel_safe=False)
        assert not hasattr(doubler, "_parallel_safe")
        from repro.engine.sqlfront import SqlSession
        other = SqlSession(session.db)
        other.register_function("dbo.Doubler", doubler)
        _, _, safe = other._resolve_function("dbo", "Doubler")
        assert safe is True  # the first session's False did not leak
        _, _, unsafe = session._resolve_function("dbo", "Doubler")
        assert unsafe is False

    def test_unpicklable_udf_falls_back_to_vector(self, session):
        box = {"scale": 3.0}
        session.register_function(
            "dbo.Closure", lambda v: (v or 0.0) * box["scale"])
        vals, m = session.query("SELECT SUM(dbo.Closure(x)) FROM t",
                                engine="parallel", workers=2)
        assert m.engine == "vector"
        ref, _ = session.query("SELECT SUM(dbo.Closure(x)) FROM t",
                               engine="vector")
        assert _bits(vals) == _bits(ref)

    def test_workers_must_be_positive(self, session):
        with pytest.raises(ValueError):
            session.query("SELECT COUNT(*) FROM t", engine="parallel",
                          workers=0)


class TestEnvDefaults:
    def test_env_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "parallel")
        assert executor_mod._env_default_engine() == "parallel"
        monkeypatch.setenv("REPRO_ENGINE", "ROW")
        assert executor_mod._env_default_engine() == "row"
        monkeypatch.setenv("REPRO_ENGINE", "columnar")
        assert executor_mod._env_default_engine() == "vector"
        monkeypatch.delenv("REPRO_ENGINE")
        assert executor_mod._env_default_engine() == "vector"

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert executor_mod._env_default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert executor_mod._env_default_workers() is None
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert executor_mod._env_default_workers() is None


class TestWorkerPool:
    def test_killed_workers_raise_not_hang(self, session):
        sql = "SELECT SUM(x), COUNT(*) FROM t"
        ref, _ = session.query(sql, engine="parallel", workers=2)
        pool = session.db._worker_pool
        for proc in pool._procs:
            proc.kill()
        for proc in pool._procs:
            proc.join(5.0)
        with pytest.raises(parallel.WorkerDied):
            session.query(sql, engine="parallel", workers=2)
        # The broken pool is retired; the next query respawns and works.
        vals, m = session.query(sql, engine="parallel", workers=2)
        assert m.engine == "parallel"
        assert _bits(vals) == _bits(ref)
        assert session.db._worker_pool is not pool

    def test_shutdown_removes_snapshots_and_workers(self, session):
        session.query("SELECT COUNT(*) FROM t", engine="parallel",
                      workers=2)
        pool = session.db._worker_pool
        ref = pool._snap_ref
        assert ref is not None and ref[0] == "shm"
        assert pool._segments._segments  # live segment owned by pool
        pool.shutdown()
        assert pool.broken
        assert not pool._procs
        assert not pool._segments._segments
        assert pool._snap_ref is None
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory
            shared_memory.SharedMemory(name=ref[1])

    def test_file_fallback_when_shm_disabled(self, session,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        (count,), _ = session.query("SELECT COUNT(*) FROM t",
                                    engine="parallel", workers=2)
        assert count == ROWS
        pool = session.db._worker_pool
        assert pool._snap_ref[0] == "file"
        paths = list(pool._snapshot_paths)
        assert paths and all(os.path.exists(p) for p in paths)
        pool.shutdown()
        assert not any(os.path.exists(p) for p in paths)

    def test_file_fallback_when_over_budget(self, session,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BUDGET", "1024")
        (count,), _ = session.query("SELECT COUNT(*) FROM t",
                                    engine="parallel", workers=2)
        assert count == ROWS
        assert session.db._worker_pool._snap_ref[0] == "file"

    def test_snapshot_refreshes_after_writes(self, session):
        sql = "SELECT COUNT(*) FROM t"
        (count1,), _ = session.query(sql, engine="parallel", workers=2)
        session.execute("INSERT INTO t VALUES (9001, 1.0, 0, NULL)")
        (count2,), _ = session.query(sql, engine="parallel", workers=2)
        assert count2 == count1 + 1

    def test_refresh_is_lazy_per_table(self, session):
        """A write to table B must not force a snapshot re-cut (and a
        per-worker re-open) for queries against untouched table A."""
        session.execute(
            "CREATE TABLE other (id bigint, y float)")
        session.db.tables["other"].insert_many(
            [(i, float(i)) for i in range(50)])
        sql_t = "SELECT COUNT(*) FROM t"
        session.query(sql_t, engine="parallel", workers=2)
        pool = session.db._worker_pool
        assert pool.snapshot_cuts == 1
        # Write to the *other* table: t's snapshot stays valid.
        session.execute("INSERT INTO other VALUES (100, 1.0)")
        session.query(sql_t, engine="parallel", workers=2)
        assert pool.snapshot_cuts == 1
        # Now query the written table: re-cut exactly once, and the
        # fresh snapshot covers both tables again.
        (n,), _ = session.query("SELECT COUNT(*) FROM other",
                                engine="parallel", workers=2)
        assert n == 51
        assert pool.snapshot_cuts == 2
        session.query(sql_t, engine="parallel", workers=2)
        assert pool.snapshot_cuts == 2

    def test_refresh_recuts_for_written_table(self, session):
        sql = "SELECT COUNT(*) FROM t"
        session.query(sql, engine="parallel", workers=2)
        pool = session.db._worker_pool
        session.execute("INSERT INTO t VALUES (9002, 1.0, 0, NULL)")
        session.query(sql, engine="parallel", workers=2)
        assert pool.snapshot_cuts == 2

    def test_morsels_align_to_batch_boundaries(self, session):
        session.query("SELECT COUNT(*) FROM t", engine="parallel",
                      workers=2)
        pool = session.db._worker_pool
        for n_pages in (1, 63, 64, 65, 1000, 100_000):
            size = pool._morsel_pages(n_pages, 64)
            assert size % 64 == 0 and size >= 64

    def test_active_workers_gauge(self, session):
        before = parallel.active_workers()
        session.query("SELECT COUNT(*) FROM t", engine="parallel",
                      workers=2)
        assert parallel.active_workers() >= before + 2
        session.db._worker_pool.shutdown()
        assert parallel.active_workers() <= before


class TestSnapshots:
    def test_save_open_round_trip(self, session, tmp_path):
        path = str(tmp_path / "db.snap")
        session.db.save(path)
        clone = Database.open(path)
        ref, _ = session.query("SELECT SUM(x), COUNT(*) FROM t")
        vals, _ = SqlSession(clone).query(
            "SELECT SUM(x), COUNT(*) FROM t")
        assert _bits(vals) == _bits(ref)

    def test_read_only_snapshot_refuses_writes(self, session, tmp_path):
        path = str(tmp_path / "db.snap")
        session.db.save(path)
        clone = Database.open(path, read_only=True)
        with pytest.raises(PermissionError):
            clone.tables["t"].insert((9999, 1.0, 0, None))
        with pytest.raises(PermissionError):
            clone.create_table("u", [Column("id", "bigint")])

    def test_snapshot_pools_start_cold(self, session):
        # A pickled buffer pool must not inherit the coordinator's
        # cache, or worker "physical" reads would silently become hits.
        session.query("SELECT COUNT(*) FROM t", cold=False)
        pool2 = pickle.loads(pickle.dumps(session.db.pool))
        assert not pool2._cached
        assert pool2.counters.logical_reads == 0


class TestPlanPickling:
    def test_namespace_functions_pickle_by_name(self):
        blob = parallel.dumps_plan(
            {"fn": FloatArray.Item_1, "agg": FloatArray.Vector_3})
        plan = parallel.loads_plan(blob)
        assert plan["fn"] is FloatArray.Item_1
        assert plan["agg"] is FloatArray.Vector_3

    def test_bound_namespace_methods_pickle_by_name(self):
        blob = parallel.dumps_plan({"sub": FloatArray.Subarray,
                                    "cat": FloatArray.Concat})
        plan = parallel.loads_plan(blob)
        v = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
        assert plan["sub"](v, IntArray.Vector_1(2),
                           IntArray.Vector_1(3), 0) == \
            FloatArray.Subarray(v, IntArray.Vector_1(2),
                                IntArray.Vector_1(3), 0)


def _obj_col(values):
    """Column as the vectorized executor hands it to a kernel: a numpy
    object array."""
    col = np.empty(len(values), dtype=object)
    col[:] = values
    return col


class TestSubarrayKernel:
    def test_batch_matches_per_row(self):
        rng = random.Random(3)
        blobs = [FloatArray.Vector_5(*[rng.uniform(-9, 9)
                                       for _ in range(5)])
                 for _ in range(50)]
        off, size = IntArray.Vector_1(2), IntArray.Vector_1(3)
        kernel = FloatArray.Subarray.vectorized
        out = kernel([_obj_col(blobs), _obj_col([off] * 50),
                      _obj_col([size] * 50)])
        assert out is not None
        for got, blob in zip(out, blobs):
            assert got == FloatArray.Subarray(blob, off, size)

    def test_batch_with_collapse(self):
        m = FloatArray.Matrix_2(1.0, 2.0, 3.0, 4.0)
        off, size = IntArray.Vector_2(0, 1), IntArray.Vector_2(2, 1)
        kernel = FloatArray.Subarray.vectorized
        out = kernel([_obj_col([m, m]), _obj_col([off, off]),
                      _obj_col([size, size]), _obj_col([1, 1])])
        assert out is not None
        assert out[0] == FloatArray.Subarray(m, off, size, 1)

    def test_irregular_batch_declines(self):
        v5 = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
        v3 = FloatArray.Vector_3(1.0, 2.0, 3.0)
        off, size = IntArray.Vector_1(1), IntArray.Vector_1(2)
        kernel = FloatArray.Subarray.vectorized
        assert kernel([_obj_col([v5, v3]), _obj_col([off, off]),
                       _obj_col([size, size])]) is None
        assert kernel([_obj_col([v5, v5]),
                       _obj_col([off, IntArray.Vector_1(2)]),
                       _obj_col([size, size])]) is None


class TestConcatKernel:
    @staticmethod
    def _rows(n, rng, dims=(60,)):
        cells = rng.sample(range(int(np.prod(dims))), n)
        rows = []
        for flat in cells:
            idx = np.unravel_index(flat, dims, order="F")
            rows.append((IntArray.Vector(list(int(i) for i in idx)),
                         rng.uniform(-5, 5)))
        return rows

    def test_fast_path_matches_reader(self):
        rng = random.Random(5)
        rows = self._rows(40, rng)
        dims = IntArray.Vector_1(60)
        fast = FloatArray._concat_vectorized(rows, [60])
        assert fast is not None
        # Force the per-row reader by mixing in a bytearray index blob
        # (same bytes, but the fast path only trusts exact bytes).
        irregular = [(bytearray(rows[0][0]), rows[0][1])] + rows[1:]
        assert FloatArray._concat_vectorized(irregular, [60]) is None
        slow = FloatArray.Concat(irregular, dims)
        assert fast == slow

    def test_duplicate_indices_fall_back_to_last_write_wins(self):
        idx = IntArray.Vector_1(4)
        rows = [(idx, 1.0), (idx, 2.0)]
        assert FloatArray._concat_vectorized(rows, [10]) is None
        out = FloatArray.Concat(rows, IntArray.Vector_1(10))
        assert FloatArray.Item_1(out, 4) == 2.0

    def test_out_of_bounds_raises_canonical_error(self):
        rows = [(IntArray.Vector_1(12), 1.0)]
        with pytest.raises(BoundsError):
            FloatArray.Concat(rows, IntArray.Vector_1(10))

    def test_matrix_concat_fortran_order(self):
        rng = random.Random(9)
        rows = self._rows(12, rng, dims=(4, 5))
        out = FloatArray.Concat(rows, IntArray.Vector_2(4, 5))
        for idx_blob, value in rows:
            i, j = IntArray.Item_1(idx_blob, 0), \
                IntArray.Item_1(idx_blob, 1)
            assert FloatArray.Item_2(out, int(i), int(j)) == \
                pytest.approx(value)
