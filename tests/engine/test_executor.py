"""Executor tests: query correctness and Table 1 metric shape."""

import numpy as np
import pytest

from repro.engine import (
    Avg,
    Col,
    Const,
    Count,
    Database,
    Executor,
    Column,
    Max,
    Min,
    ReadBlob,
    ScalarUdf,
    Sum,
)
from repro.tsql import FloatArray

N_ROWS = 4000


@pytest.fixture(scope="module")
def loaded():
    """The two evaluation tables of Section 6.2, scaled down."""
    db = Database()
    ts = db.create_table("Tscalar",
                         [Column("id", "bigint")] +
                         [Column(f"v{i}", "float") for i in range(1, 6)])
    tv = db.create_table("Tvector", [Column("id", "bigint"),
                                     Column("v", "varbinary", cap=100)])
    rng = np.random.default_rng(0)
    values = rng.standard_normal((N_ROWS, 5))
    for i in range(N_ROWS):
        ts.insert((i, *values[i]))
        tv.insert((i, FloatArray.Vector_5(*values[i])))
    return db, ts, tv, values


def _item_udf(blob, i):
    return FloatArray.Item_1(blob, i)


def _empty_udf(blob, i):
    return 0.0


class TestCorrectness:
    def test_count(self, loaded):
        db, ts, tv, _values = loaded
        ex = Executor(db)
        (n,), _m = ex.run(ts, [Count()])
        assert n == N_ROWS
        (n,), _m = ex.run(tv, [Count()])
        assert n == N_ROWS

    def test_sum_scalar_column(self, loaded):
        db, ts, _tv, values = loaded
        (total,), _m = Executor(db).run(ts, [Sum(Col("v1"))])
        assert total == pytest.approx(values[:, 0].sum())

    def test_sum_via_udf_matches_scalar_sum(self, loaded):
        db, _ts, tv, values = loaded
        expr = ScalarUdf(_item_udf, Col("v"), Const(0), body_cost="item")
        (total,), _m = Executor(db).run(tv, [Sum(expr)])
        assert total == pytest.approx(values[:, 0].sum())

    def test_multiple_aggregates_one_pass(self, loaded):
        db, ts, _tv, values = loaded
        (n, total, lo, hi, avg), _m = Executor(db).run(
            ts, [Count(), Sum(Col("v2")), Min(Col("v2")),
                 Max(Col("v2")), Avg(Col("v2"))])
        assert n == N_ROWS
        assert total == pytest.approx(values[:, 1].sum())
        assert lo == pytest.approx(values[:, 1].min())
        assert hi == pytest.approx(values[:, 1].max())
        assert avg == pytest.approx(values[:, 1].mean())

    def test_where_filter(self, loaded):
        db, ts, _tv, values = loaded

        class Positive:
            def columns(self):
                return {"v1"}

            def static_cpu_cost(self, table, model):
                return model.cpu_decode_fixed

            def eval(self, ctx):
                return ctx.row[1] > 0

        (n,), _m = Executor(db).run(ts, [Count()], where=Positive())
        assert n == (values[:, 0] > 0).sum()

    def test_sum_skips_nulls(self):
        db = Database()
        t = db.create_table("t", [Column("id", "bigint"),
                                  Column("x", "float")])
        t.insert((1, 1.5))
        t.insert((2, None))
        t.insert((3, 2.5))
        (total, avg), _m = Executor(db).run(t, [Sum(Col("x")),
                                                Avg(Col("x"))])
        assert total == 4.0
        assert avg == 2.0


class TestTable1Shape:
    """The relational facts of Table 1, at reduced scale.

    Absolute numbers need the 357 M row projection (see the benchmark
    harness); the *orderings* hold at any scale.
    """

    @pytest.fixture(scope="class")
    def metrics(self, loaded):
        db, ts, tv, _values = loaded
        ex = Executor(db)
        out = {}
        (_,), out["q1"] = ex.run(ts, [Count()], label="Query 1")
        (_,), out["q2"] = ex.run(tv, [Count()], label="Query 2")
        (_,), out["q3"] = ex.run(ts, [Sum(Col("v1"))], label="Query 3")
        (_,), out["q4"] = ex.run(tv, [Sum(ScalarUdf(
            _item_udf, Col("v"), Const(0), body_cost="item"))],
            label="Query 4")
        (_,), out["q5"] = ex.run(tv, [Sum(ScalarUdf(
            _empty_udf, Col("v"), Const(0), body_cost="empty"))],
            label="Query 5")
        return out

    def test_q1_q3_io_bound(self, metrics):
        # Queries 1 and 3 read the same table and are both IO-bound:
        # identical execution time at full IO rate.
        assert metrics["q1"].sim_exec_seconds == pytest.approx(
            metrics["q3"].sim_exec_seconds)
        assert metrics["q1"].cpu_percent < 60
        assert metrics["q3"].cpu_percent > metrics["q1"].cpu_percent

    def test_q2_reads_bigger_table(self, metrics):
        ratio = metrics["q2"].io_bytes / metrics["q1"].io_bytes
        assert 1.3 < ratio < 1.6  # the 43 % size overhead
        assert metrics["q2"].sim_exec_seconds > \
            metrics["q1"].sim_exec_seconds

    def test_q4_q5_cpu_bound(self, metrics):
        for q in ("q4", "q5"):
            assert metrics[q].cpu_percent > 90
            assert metrics[q].sim_exec_seconds > \
                3 * metrics["q2"].sim_exec_seconds
            # IO rate collapses when CPU-bound.
            assert metrics[q].io_mb_per_s < \
                metrics["q2"].io_mb_per_s / 2

    def test_q4_costs_more_than_q5(self, metrics):
        # Real item extraction adds ~22 % over the empty call
        # (Section 7.1).
        ratio = metrics["q4"].sim_cpu_core_seconds / \
            metrics["q5"].sim_cpu_core_seconds
        assert 1.1 < ratio < 1.4

    def test_udf_calls_counted(self, metrics):
        assert metrics["q4"].udf_calls == N_ROWS
        assert metrics["q5"].udf_calls == N_ROWS
        assert metrics["q1"].udf_calls == 0

    def test_scaled_projection_preserves_cpu_percent(self, metrics):
        m = metrics["q4"]
        big = m.scaled(1000.0)
        assert big.rows == m.rows * 1000
        assert big.cpu_percent == pytest.approx(m.cpu_percent, abs=1.0)
        assert big.sim_exec_seconds == pytest.approx(
            m.sim_exec_seconds * 1000, rel=0.01)


class TestBlobExpressions:
    def test_read_blob_materializes_out_of_page(self):
        db = Database()
        t = db.create_table("cubes", [Column("id", "bigint"),
                                      Column("data", "varbinary_max")])
        payload = np.random.default_rng(0).bytes(40_000)
        t.insert((1, payload))

        def length_udf(blob):
            return len(blob)

        (total,), m = Executor(db).run(
            t, [Sum(ScalarUdf(length_udf, ReadBlob(Col("data")),
                              body_cost=1e-6))])
        assert total == 40_000
        assert m.stream_calls >= 1


class TestGroupedExecution:
    def test_run_grouped_directly(self):
        db = Database()
        t = db.create_table("g", [Column("id", "bigint"),
                                  Column("bucket", "int"),
                                  Column("x", "float")])
        rng = np.random.default_rng(0)
        data = []
        for i in range(300):
            b = int(rng.integers(0, 5))
            x = float(rng.standard_normal())
            data.append((b, x))
            t.insert((i, b, x))
        rows, m = Executor(db).run_grouped(
            t, Col("bucket"), [Count(), Sum(Col("x"))])
        assert [r[0] for r in rows] == [0, 1, 2, 3, 4]
        for b, count, total in rows:
            members = [x for bb, x in data if bb == b]
            assert count == len(members)
            assert total == pytest.approx(sum(members))
        assert m.rows == 300

    def test_grouped_metrics_cost_more_than_plain(self):
        db = Database()
        t = db.create_table("g2", [Column("id", "bigint"),
                                   Column("bucket", "int")])
        for i in range(500):
            t.insert((i, i % 3))
        ex = Executor(db)
        _rows, grouped = ex.run_grouped(t, Col("bucket"), [Count()])
        (_n,), plain = ex.run(t, [Count()])
        # The hash probe and group-column decode are charged.
        assert grouped.sim_cpu_core_seconds > plain.sim_cpu_core_seconds

    def test_null_group_sorts_last(self):
        db = Database()
        t = db.create_table("g3", [Column("id", "bigint"),
                                   Column("bucket", "int")])
        t.insert((1, 0))
        t.insert((2, None))
        t.insert((3, 0))
        rows, _m = Executor(db).run_grouped(t, Col("bucket"), [Count()])
        assert rows == [(0, 2), (None, 1)]
