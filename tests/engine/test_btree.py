"""B+tree tests: ordered scans, point lookups, splits, random orders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BTree, BufferPool, DuplicateKeyError, PageFile
from repro.engine.constants import PAGE_DATA


def _tree_with(keys, payload=lambda k: f"row{k}".encode()):
    f = PageFile()
    t = BTree(f, PAGE_DATA, tag="t")
    for k in keys:
        t.insert(k, payload(k))
    return f, t


class TestBasics:
    def test_insert_and_search(self):
        _f, t = _tree_with([5, 1, 9, 3])
        assert t.search(3) == b"row3"
        assert t.search(9) == b"row9"
        assert t.search(2) is None
        assert t.count == 4

    def test_duplicate_rejected(self):
        _f, t = _tree_with([1])
        with pytest.raises(DuplicateKeyError):
            t.insert(1, b"again")
        assert t.count == 1

    def test_scan_is_ordered(self):
        keys = [7, 2, 9, 4, 1, 8]
        _f, t = _tree_with(keys)
        assert [k for k, _v in t.scan()] == sorted(keys)

    def test_scan_range(self):
        _f, t = _tree_with(range(0, 100, 2))
        got = [k for k, _v in t.scan(start=10, stop=30)]
        assert got == list(range(10, 30, 2))
        # start between keys
        got = [k for k, _v in t.scan(start=11, stop=19)]
        assert got == [12, 14, 16, 18]

    def test_empty_tree(self):
        f = PageFile()
        t = BTree(f, PAGE_DATA)
        assert t.search(1) is None
        assert list(t.scan()) == []
        assert t.height == 1


class TestSplitting:
    def test_grows_beyond_one_page(self):
        n = 2000
        _f, t = _tree_with(range(n), payload=lambda k: bytes(64))
        assert t.height >= 2
        assert len(t.leaf_page_ids()) > 1
        assert [k for k, _v in t.scan()] == list(range(n))
        for k in (0, 1234, n - 1):
            assert t.search(k) is not None

    def test_ascending_load_packs_pages(self):
        # The append-split optimization: in-order loads should fill
        # pages nearly fully, not 50 %.
        n = 3000
        _f, t = _tree_with(range(n), payload=lambda k: bytes(64))
        leaves = t.leaf_page_ids()
        payload_per_page = n / len(leaves)
        # 64+8 bytes per record + 2 slot => ~109 records/page max.
        assert payload_per_page > 0.9 * (8096 // 74)

    def test_random_load_still_correct(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(5000).tolist()
        _f, t = _tree_with(keys, payload=lambda k: bytes(32))
        assert [k for k, _v in t.scan()] == sorted(keys)
        assert t.count == 5000

    def test_descending_load(self):
        _f, t = _tree_with(range(1999, -1, -1), payload=lambda k: bytes(64))
        assert [k for k, _v in t.scan()] == list(range(2000))

    def test_leaf_chain_consistent_after_splits(self):
        f, t = _tree_with(np.random.default_rng(1).permutation(3000)
                          .tolist(), payload=lambda k: bytes(48))
        leaves = t.leaf_page_ids()
        # Chain covers every record exactly once, in order.
        seen = []
        for pid in leaves:
            page = f.get(pid)
            for record in page.records():
                seen.append(int.from_bytes(record[:8], "little"))
        assert seen == sorted(seen)
        assert len(seen) == 3000


class TestBufferPoolIntegration:
    def test_scan_counts_pages(self):
        f, t = _tree_with(range(2000), payload=lambda k: bytes(64))
        pool = BufferPool(f)
        list(t.scan(pool))
        assert pool.counters.physical_reads >= len(t.leaf_page_ids())

    def test_point_lookup_touches_height_pages(self):
        f, t = _tree_with(range(5000), payload=lambda k: bytes(64))
        pool = BufferPool(f)
        t.search(2500, pool)
        assert pool.counters.logical_reads == t.height


@settings(max_examples=25, deadline=None)
@given(keys=st.lists(st.integers(-10 ** 9, 10 ** 9), min_size=1,
                     max_size=300, unique=True))
def test_model_based_property(keys):
    """The tree behaves exactly like a sorted dict."""
    _f, t = _tree_with(keys, payload=lambda k: k.to_bytes(8, "little",
                                                          signed=True))
    model = {k: k for k in keys}
    assert [k for k, _v in t.scan()] == sorted(model)
    for k in list(model)[:20]:
        assert int.from_bytes(t.search(k), "little", signed=True) == k
    assert t.search(10 ** 10) is None


class TestDeleteAndUpdate:
    def test_delete_existing(self):
        _f, t = _tree_with([1, 2, 3])
        assert t.delete(2)
        assert t.search(2) is None
        assert [k for k, _v in t.scan()] == [1, 3]
        assert t.count == 2

    def test_delete_missing(self):
        _f, t = _tree_with([1])
        assert not t.delete(9)
        assert t.count == 1

    def test_delete_all_then_reinsert(self):
        keys = list(range(500))
        _f, t = _tree_with(keys, payload=lambda k: bytes(64))
        for k in keys:
            assert t.delete(k)
        assert t.count == 0
        assert list(t.scan()) == []
        t.insert(42, b"back")
        assert t.search(42) == b"back"

    def test_delete_empties_leaves_and_scan_stays_correct(self):
        n = 3000
        f, t = _tree_with(range(n), payload=lambda k: bytes(64))
        # Wipe a whole band of keys, emptying interior leaves.
        for k in range(1000, 2000):
            assert t.delete(k)
        remaining = [k for k, _v in t.scan()]
        assert remaining == list(range(1000)) + list(range(2000, n))
        assert t.search(1500) is None
        assert t.search(999) is not None

    def test_interleaved_delete_insert(self):
        rng = np.random.default_rng(3)
        _f, t = _tree_with([])
        model = {}
        for step in range(2000):
            k = int(rng.integers(0, 300))
            if k in model:
                assert t.delete(k)
                del model[k]
            else:
                t.insert(k, k.to_bytes(8, "little"))
                model[k] = True
        assert [k for k, _v in t.scan()] == sorted(model)

    def test_update_in_place(self):
        _f, t = _tree_with([1, 2, 3])
        assert t.update(2, b"new payload")
        assert t.search(2) == b"new payload"
        assert t.count == 3

    def test_update_missing(self):
        _f, t = _tree_with([1])
        assert not t.update(9, b"x")

    def test_update_growing_payload_forwards_row(self):
        # Fill a page nearly full, then grow one record so it cannot
        # stay: it must be rewritten, not lost.
        _f, t = _tree_with(range(100), payload=lambda k: bytes(70))
        assert t.update(50, bytes(4000))
        assert t.search(50) == bytes(4000)
        assert [k for k, _v in t.scan()] == list(range(100))
