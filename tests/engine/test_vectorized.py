"""Unit tests for the vectorized scan path: columnar batch decoding,
batched buffer-pool accounting, and bulk loading.

The end-to-end row-vs-vector equivalence lives in ``test_parity.py``;
this file exercises the building blocks directly.
"""

import random

import numpy as np
import pytest

from repro.engine import Column, Database, DuplicateKeyError
from repro.engine.table import MaxBlobHandle
from repro.engine.vectorized import DEFAULT_BATCH_PAGES
from repro.tsql import FloatArray


def make_table(db, rows, *, nulls=True, with_max=True, seed=0,
               name="t"):
    """A table covering every column family: fixed-width numerics,
    short varbinary, and (optionally) varbinary_max with a mix of
    inline and out-of-page blobs."""
    cols = [Column("id", "bigint"), Column("a", "float"),
            Column("b", "int"), Column("s", "varbinary", cap=64)]
    if with_max:
        cols.append(Column("m", "varbinary_max"))
    table = db.create_table(name, cols)
    rng = random.Random(seed)

    def maybe_null(value):
        return None if nulls and rng.random() < 0.12 else value

    data = []
    for i in range(rows):
        row = [i,
               maybe_null(rng.uniform(-10.0, 10.0)),
               maybe_null(rng.randrange(-1000, 1000)),
               maybe_null(rng.randbytes(rng.randrange(0, 20)))]
        if with_max:
            if rng.random() < 0.25:
                blob = rng.randbytes(9000)  # forced out of page
            else:
                blob = FloatArray.Vector_5(
                    *[rng.random() for _ in range(5)])
            row.append(maybe_null(blob))
        data.append(tuple(row))
    table.insert_many(data)
    return table, data


class TestScanBatches:
    def test_batches_reproduce_the_row_scan(self):
        db = Database()
        table, _data = make_table(db, 700)
        expected = list(table.scan())
        got = [row for batch in table.scan_batches()
               for row in batch.rows()]
        assert got == expected

    def test_batch_sizes_respect_the_page_budget(self):
        db = Database()
        table, data = make_table(db, 700, with_max=False)
        batches = list(table.scan_batches(batch_pages=2))
        assert len(batches) > 1
        assert sum(b.n for b in batches) == len(data)

    def test_column_decode_matches_tuples(self):
        db = Database()
        table, data = make_table(db, 500)
        seen = 0
        for batch in table.scan_batches():
            for idx, name in enumerate(["id", "a", "b", "s", "m"]):
                values, mask = batch.column(name)
                for lane in range(batch.n):
                    expected = data[seen + lane][idx]
                    if mask is not None and mask[lane]:
                        assert expected is None
                    else:
                        got = values[lane]
                        if isinstance(got, np.generic):
                            got = got.item()
                        elif isinstance(got, MaxBlobHandle):
                            # Out-of-page cells decode to handles, by
                            # design; materialize to compare.
                            got = got.read_all(db.pool)
                        assert got == expected
            seen += batch.n
        assert seen == len(data)

    def test_nullfree_fixed_column_has_no_mask(self):
        db = Database()
        table, data = make_table(db, 200, nulls=False, with_max=False)
        for batch in table.scan_batches():
            values, mask = batch.column("a")
            assert mask is None
            assert values.dtype == np.dtype("<f8")

    def test_compact_filters_rows_and_cached_columns(self):
        db = Database()
        table, data = make_table(db, 300, with_max=False)
        batch = next(iter(table.scan_batches()))
        batch.column("a")  # prime the column cache
        keep = np.arange(batch.n) % 3 == 0
        small = batch.compact(keep)
        assert small.n == int(keep.sum())
        expected = [row for row, k in zip(batch.rows(), keep) if k]
        assert small.rows() == expected
        values, mask = small.column("a")
        assert len(values) == small.n


class TestFetchMany:
    def _leaf_page_ids(self, table):
        return [page.page_id
                for run in table._tree.scan_leaf_batches()
                for page in run]

    def test_cold_accounting_matches_per_page_fetches(self):
        db = Database()
        table, _data = make_table(db, 800, with_max=False)
        ids = self._leaf_page_ids(table)
        pool = db.pool

        pool.clear()
        before = pool.snapshot_counters()
        one_by_one = [pool.fetch(i) for i in ids]
        per_page = pool.snapshot_counters().delta_since(before)

        pool.clear()
        before = pool.snapshot_counters()
        batched = pool.fetch_many(ids)
        many = pool.snapshot_counters().delta_since(before)

        assert many == per_page
        assert many.physical_reads == len(ids)
        assert [p.page_id for p in batched] == \
            [p.page_id for p in one_by_one]

    def test_warm_fetch_many_counts_logical_reads_only(self):
        db = Database()
        table, _data = make_table(db, 300, with_max=False)
        ids = self._leaf_page_ids(table)
        pool = db.pool
        pool.fetch_many(ids)  # warm the cache
        before = pool.snapshot_counters()
        pool.fetch_many(ids)
        delta = pool.snapshot_counters().delta_since(before)
        assert delta.logical_reads == len(ids)
        assert delta.physical_reads == 0


class TestInsertMany:
    def test_bulk_load_layout_matches_incremental_inserts(self):
        db_bulk, db_one = Database(), Database()
        t_bulk, data = make_table(db_bulk, 900, name="t")
        t_one = db_one.create_table(
            "t", [Column(c.name, c.type, cap=c.cap)
                  for c in t_bulk.columns])
        for row in data:
            t_one.insert(row)
        s_bulk, s_one = t_bulk.page_fill_stats(), t_one.page_fill_stats()
        assert s_bulk == s_one
        rows_bulk = [r[:4] for r in t_bulk.scan()]
        rows_one = [r[:4] for r in t_one.scan()]
        assert rows_bulk == rows_one

    def test_bulk_load_backfills_secondary_indexes(self):
        db = Database()
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("a", "float")])
        table.create_index("a")
        table.insert_many([(i, float(i % 7)) for i in range(200)])
        index = table._indexes["a"]
        assert sorted(index.seek(3.0)) == \
            [i for i in range(200) if i % 7 == 3]

    def test_non_ascending_keys_fall_back_to_per_row_inserts(self):
        db = Database()
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("a", "float")])
        rows = [(i, float(i)) for i in range(100)]
        random.Random(3).shuffle(rows)
        assert table.insert_many(rows) == 100
        assert [r[0] for r in table.scan()] == list(range(100))

    def test_duplicate_keys_raise_like_insert(self):
        db = Database()
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("a", "float")])
        with pytest.raises(DuplicateKeyError):
            table.insert_many([(1, 1.0), (2, 2.0), (2, 3.0)])

    def test_insert_many_into_nonempty_table(self):
        db = Database()
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("a", "float")])
        table.insert((0, 0.0))
        assert table.insert_many([(i, float(i)) for i in range(1, 50)]) \
            == 49
        assert len(list(table.scan())) == 50

    def test_empty_iterable_is_a_noop(self):
        db = Database()
        table = db.create_table(
            "t", [Column("id", "bigint"), Column("a", "float")])
        assert table.insert_many([]) == 0
        assert list(table.scan()) == []
