"""MVCC copy-on-write page versions: latch-free snapshot readers,
intra-table reader/writer overlap, version retirement, write intents.

The randomized parity test is the core correctness bar: with writers
and readers interleaving freely on ONE table, every value a reader
observes must be bit-identical to some serial prefix of the write
history — a snapshot can be stale, never torn.
"""

import random
import threading

import pytest

from repro.engine import Column, Database
from repro.engine.latches import MVCC_MODES, mvcc_from_env
from repro.engine.sqlfront import SqlSession
from repro.tsql import FloatArray

READ_SQL = ("SELECT SUM(FloatArray.Item_1(v, 0)), COUNT(*) "
            "FROM ta WITH (NOLOCK)")


def build_db(rows=300, mvcc_mode="on"):
    # latch_mode is pinned: under REPRO_LATCH=coarse every latch maps
    # onto the one database RWLock, which cannot overlap by design.
    db = Database(mvcc_mode=mvcc_mode, latch_mode="table")
    t = db.create_table(
        "ta", [Column("id", "bigint"),
               Column("v", "varbinary", cap=100)])
    for i in range(rows):
        t.insert((i, FloatArray.Vector_3(float(i), 2.0, 3.0)))
    return db, t


def insert_sql(key):
    return (f"INSERT INTO ta VALUES ({key}, "
            f"FloatArray.Vector_3({float(key)!r}, 2.0, 3.0))")


# -- mode plumbing ----------------------------------------------------------

class TestModeSelection:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_MVCC", raising=False)
        assert mvcc_from_env() == "on"

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_MVCC", "off")
        assert mvcc_from_env() == "off"

    def test_env_unknown_means_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_MVCC", "bogus")
        assert mvcc_from_env() == "on"

    def test_database_validates_mode(self):
        with pytest.raises(ValueError):
            Database(mvcc_mode="sometimes")
        assert MVCC_MODES == ("on", "off")

    def test_off_mode_tables_are_unversioned(self):
        db, t = build_db(rows=10, mvcc_mode="off")
        assert not db.mvcc
        assert not t.mvcc
        session = SqlSession(db)
        (s, n), _ = session.query(READ_SQL)
        assert n == 10
        assert s == pytest.approx(float(sum(range(10))))
        assert session.execute("DELETE FROM ta WHERE id = 3") == 1
        assert session.execute(insert_sql(100)) == 1
        (s, n), _ = session.query(READ_SQL)
        assert n == 10
        assert s == pytest.approx(float(sum(range(10)) - 3 + 100))


# -- reader/writer overlap on one table -------------------------------------

class TestIntraTableOverlap:
    def test_reader_completes_while_writer_holds_table_latch(self):
        """The acceptance bar: a SELECT on T finishes while a writer
        on T is parked mid-statement (exclusive table latch held)."""
        db, _ = build_db()
        acquired = threading.Event()
        release = threading.Event()

        def writer_mid_statement():
            with db.latches.write_latch("ta"):
                acquired.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=writer_mid_statement)
        holder.start()
        assert acquired.wait(timeout=10)
        result = []
        # engine="vector" pins the serial latch-free path: the parallel
        # coordinator takes a brief all-table shared latch to cut its
        # worker snapshot, which a *parked* writer (never happens in a
        # real statement) would block.  Parallel-engine overlap is
        # covered by the parity test below with real writers.
        reader = threading.Thread(target=lambda: result.append(
            SqlSession(db).query(READ_SQL, cold=False,
                                 engine="vector")))
        reader.start()
        reader.join(timeout=15)
        try:
            assert result, "reader blocked behind the held write latch"
            (s, n), _ = result[0]
            assert n == 300
            assert s == pytest.approx(float(sum(range(300))))
        finally:
            release.set()
            holder.join(timeout=10)

    def test_writer_completes_while_snapshot_pinned(self):
        db, t = build_db()
        snap = t.pin_snapshot()
        try:
            session = SqlSession(db)
            assert session.execute(insert_sql(1000)) == 1
            assert session.execute("DELETE FROM ta WHERE id = 0") == 1
            # The pinned snapshot still reads its frozen version.
            assert snap.row_count == 300
            assert snap.get(0) is not None
            assert snap.get(1000) is None
        finally:
            snap.unpin(db.pool)
        assert t.get(0) is None
        assert t.get(1000) is not None

    def test_snapshot_consistent_across_mid_scan_publish(self):
        db, t = build_db()
        snap = t.pin_snapshot()
        try:
            it = snap.scan()
            seen = [next(it) for _ in range(100)]
            session = SqlSession(db)
            session.execute("DELETE FROM ta WHERE id < 150")
            session.execute(insert_sql(2000))
            seen.extend(it)
        finally:
            snap.unpin(db.pool)
        assert [row[0] for row in seen] == list(range(300))
        assert t.row_count == 151

    def test_randomized_serial_prefix_parity(self):
        """Interleaved writers/readers on one table: every read is
        bit-identical to some serial prefix of the write history."""
        db, _ = build_db(rows=200)
        rng = random.Random(0xC0117)
        live = set(range(200))
        next_key = 200
        ops = []
        for _ in range(120):
            if live and rng.random() < 0.45:
                key = rng.choice(sorted(live))
                live.discard(key)
                ops.append(f"DELETE FROM ta WHERE id = {key}")
            else:
                key, next_key = next_key, next_key + 1
                live.add(key)
                ops.append(insert_sql(key))
        # Serial prefix states (sum is exact: integer-valued floats).
        prefix_states = set()
        count, total = 200, sum(range(200))
        prefix_states.add((count, total))
        replay = set(range(200))
        for op in ops:
            if op.startswith("DELETE"):
                key = int(op.rsplit("= ", 1)[1])
                replay.discard(key)
                count, total = count - 1, total - key
            else:
                key = int(op.split("(", 1)[1].split(",")[0])
                replay.add(key)
                count, total = count + 1, total + key
            prefix_states.add((count, total))

        done = threading.Event()
        observed = []
        errors = []

        def writer():
            session = SqlSession(db)
            try:
                for op in ops:
                    assert session.execute(op) == 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def reader():
            session = SqlSession(db)
            try:
                while not done.is_set():
                    (s, n), _ = session.query(READ_SQL, cold=False)
                    observed.append((n, int(s)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert observed, "readers never completed a query"
        stray = [state for state in observed
                 if state not in prefix_states]
        assert not stray, f"torn reads: {stray[:5]}"
        final = SqlSession(db).query(READ_SQL)[0]
        assert (final[1], int(final[0])) == (count, total)


# -- version chain retirement ------------------------------------------------

class TestVersionRetirement:
    def test_unpinned_versions_retire_immediately(self):
        db, t = build_db(rows=100)
        session = SqlSession(db)
        for i in range(10):
            session.execute(insert_sql(1000 + i))
            session.execute(f"DELETE FROM ta WHERE id = {i}")
        # No pins: every superseded version retires at publish.
        assert list(t._published) == [t.version]
        assert not any(t._pagefile._history.values())
        # Cached versioned keys all belong to live current pages.
        live = {(page.page_id, page.pv)
                for page in t._pagefile._pages if page is not None}
        for key in list(db.pool._cached):
            if isinstance(key, tuple):
                assert key in live, f"dead version {key} still cached"

    def test_pinned_version_survives_then_retires(self):
        db, t = build_db(rows=100)
        session = SqlSession(db)
        snap = t.pin_snapshot()
        pinned = snap.version
        session.execute(insert_sql(500))
        session.execute(insert_sql(501))
        assert pinned in t._published
        assert t.version != pinned
        assert any(t._pagefile._history.values())
        # The frozen version still reads consistently under churn.
        assert snap.row_count == 100
        assert snap.get(500) is None
        snap.unpin(db.pool)
        assert pinned not in t._published
        assert not any(t._pagefile._history.values())
        assert t.pinned_versions() == {}

    def test_snapshot_unpin_idempotent(self):
        db, t = build_db(rows=20)
        snap = t.pin_snapshot()
        snap.unpin(db.pool)
        snap.unpin(db.pool)  # second unpin is a no-op
        assert t.pinned_versions() == {}
        with t.pin_snapshot() as ctx_snap:
            assert ctx_snap.row_count == 20
        assert t.pinned_versions() == {}


# -- write intents -----------------------------------------------------------

class TestWriteIntents:
    def test_disjoint_ranges_overlap(self):
        _, t = build_db(rows=10)
        token_a = t.acquire_intent(0, 100)
        token_b = t.acquire_intent(100, 200)  # disjoint: no blocking
        t.release_intent(token_a)
        t.release_intent(token_b)

    def test_overlapping_range_blocks_until_release(self):
        _, t = build_db(rows=10)
        token_a = t.acquire_intent(0, 100)
        entered = threading.Event()
        finished = threading.Event()
        tokens = []

        def contender():
            entered.set()
            tokens.append(t.acquire_intent(50, 150))
            finished.set()

        thread = threading.Thread(target=contender)
        thread.start()
        assert entered.wait(timeout=5)
        assert not finished.wait(timeout=0.3), \
            "overlapping intent did not block"
        t.release_intent(token_a)
        assert finished.wait(timeout=10)
        t.release_intent(tokens[0])
        thread.join(timeout=5)

    def test_unbounded_intent_blocks_everything(self):
        _, t = build_db(rows=10)
        token = t.acquire_intent(None, None)
        blocked = threading.Event()

        def contender():
            inner = t.acquire_intent(7, 8)
            t.release_intent(inner)
            blocked.set()

        thread = threading.Thread(target=contender)
        thread.start()
        assert not blocked.wait(timeout=0.3)
        t.release_intent(token)
        assert blocked.wait(timeout=10)
        thread.join(timeout=5)


# -- persistence -------------------------------------------------------------

class TestSnapshotRoundtrip:
    def test_save_reload_keeps_only_live_version(self, tmp_path):
        db, t = build_db(rows=50)
        session = SqlSession(db)
        snap = t.pin_snapshot()  # a pin must not leak into the bytes
        try:
            session.execute(insert_sql(500))
            payload = db.snapshot_bytes()
        finally:
            snap.unpin(db.pool)
        clone = Database.from_snapshot_bytes(payload)
        t2 = clone.tables["ta"]
        assert t2.pinned_versions() == {}
        assert list(t2._published) == [t2.version]
        assert t2.row_count == 51
        (s, n), _ = SqlSession(clone).query(READ_SQL)
        assert n == 51
        assert s == pytest.approx(float(sum(range(50)) + 500))
        # The clone is writable again (locks were re-created).
        assert SqlSession(clone).execute(insert_sql(600)) == 1
