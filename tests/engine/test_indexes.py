"""Secondary (nonclustered) index tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Column,
    Database,
    SchemaError,
    SqlSession,
    float_to_ordered_int,
    ordered_int_to_float,
)


class TestFloatKeyTransform:
    @settings(max_examples=200)
    @given(a=st.floats(allow_nan=False), b=st.floats(allow_nan=False))
    def test_order_preserving(self, a, b):
        ka, kb = float_to_ordered_int(a), float_to_ordered_int(b)
        if a < b:
            assert ka < kb
        elif a > b:
            assert ka > kb

    @settings(max_examples=200)
    @given(v=st.floats(allow_nan=False))
    def test_roundtrip(self, v):
        assert ordered_int_to_float(float_to_ordered_int(v)) == v

    def test_extremes(self):
        import math
        assert float_to_ordered_int(-math.inf) < \
            float_to_ordered_int(-1e308) < \
            float_to_ordered_int(0.0) < \
            float_to_ordered_int(5e-324) < \
            float_to_ordered_int(math.inf)


@pytest.fixture
def indexed_table():
    db = Database()
    t = db.create_table("m", [Column("id", "bigint"),
                              Column("temp", "float"),
                              Column("cat", "int")])
    rng = np.random.default_rng(1)
    temps = rng.uniform(0.0, 100.0, 500)
    cats = rng.integers(0, 8, 500)
    for i in range(500):
        t.insert((i, float(temps[i]), int(cats[i])))
    t.create_index("temp")
    t.create_index("cat")
    return db, t, temps, cats


class TestMaintenance:
    def test_backfill_counts(self, indexed_table):
        _db, t, _temps, cats = indexed_table
        assert t.index_on("cat").entry_count == 500
        assert t.index_on("cat").distinct_keys == len(np.unique(cats))

    def test_seek_equality(self, indexed_table):
        _db, t, _temps, cats = indexed_table
        for value in range(8):
            got = sorted(t.index_on("cat").seek(value))
            want = sorted(np.nonzero(cats == value)[0])
            assert got == want

    def test_range_scan_floats(self, indexed_table):
        _db, t, temps, _cats = indexed_table
        got = sorted(t.index_on("temp").range(25.0, 50.0))
        want = sorted(np.nonzero((temps >= 25.0) & (temps < 50.0))[0])
        assert got == want

    def test_open_ranges(self, indexed_table):
        _db, t, temps, _cats = indexed_table
        assert sorted(t.index_on("temp").range(hi=10.0)) == \
            sorted(np.nonzero(temps < 10.0)[0])
        assert sorted(t.index_on("temp").range(lo=90.0)) == \
            sorted(np.nonzero(temps >= 90.0)[0])

    def test_delete_removes_entries(self, indexed_table):
        _db, t, _temps, cats = indexed_table
        victim_cat = int(cats[10])
        assert 10 in t.index_on("cat").seek(victim_cat)
        t.delete(10)
        assert 10 not in t.index_on("cat").seek(victim_cat)
        assert t.index_on("cat").entry_count == 499

    def test_update_moves_entries(self, indexed_table):
        _db, t, temps, cats = indexed_table
        t.update((5, 999.0, int(cats[5])))
        assert 5 not in sorted(t.index_on("temp").range(0.0, 100.0))
        assert t.index_on("temp").seek(999.0) == [5]

    def test_null_values_not_indexed(self):
        db = Database()
        t = db.create_table("t", [Column("id", "bigint"),
                                  Column("x", "int")])
        t.create_index("x")
        t.insert((1, None))
        t.insert((2, 7))
        assert t.index_on("x").entry_count == 1
        assert t.index_on("x").seek(None) == []

    def test_duplicate_values_share_posting_list(self):
        db = Database()
        t = db.create_table("t", [Column("id", "bigint"),
                                  Column("x", "int")])
        t.create_index("x")
        for i in range(20):
            t.insert((i, 42))
        idx = t.index_on("x")
        assert idx.distinct_keys == 1
        assert sorted(idx.seek(42)) == list(range(20))


class TestSchemaRules:
    def test_cannot_index_pk(self, indexed_table):
        _db, t, _temps, _cats = indexed_table
        with pytest.raises(SchemaError):
            t.create_index("id")

    def test_cannot_index_twice(self, indexed_table):
        _db, t, _temps, _cats = indexed_table
        with pytest.raises(SchemaError):
            t.create_index("temp")

    def test_cannot_index_varbinary(self):
        db = Database()
        t = db.create_table("t", [Column("id", "bigint"),
                                  Column("v", "varbinary", cap=10)])
        with pytest.raises(SchemaError):
            t.create_index("v")


class TestPlanner:
    def test_equality_uses_index(self, indexed_table):
        db, t, _temps, cats = indexed_table
        s = SqlSession(db)
        (n,), m = s.query("SELECT COUNT(*) FROM m WHERE cat = 3")
        assert n == (cats == 3).sum()
        # Index plan reads far fewer rows than the table holds.
        assert m.rows == n

    def test_range_uses_index(self, indexed_table):
        db, _t, temps, _cats = indexed_table
        s = SqlSession(db)
        (n,), m = s.query(
            "SELECT COUNT(*) FROM m WHERE temp >= 10 AND temp < 20")
        assert n == ((temps >= 10) & (temps < 20)).sum()
        assert m.rows == n  # only qualifying rows touched

    def test_scan_fallback_same_answer(self, indexed_table):
        db, _t, temps, _cats = indexed_table
        s = SqlSession(db)
        # '>' is not index-plannable here; falls back to a scan.
        (n,), m = s.query(
            "SELECT COUNT(*) FROM m WHERE temp > 10 AND temp < 20")
        assert n == ((temps > 10) & (temps < 20)).sum()
        assert m.rows == 500  # full scan touched every row

    def test_unindexed_column_scans(self, indexed_table):
        db, _t, _temps, _cats = indexed_table
        s = SqlSession(db)
        (n,), m = s.query("SELECT COUNT(*) FROM m WHERE id >= 0")
        assert m.rows == 500

    def test_aggregate_over_index_plan(self, indexed_table):
        db, _t, temps, cats = indexed_table
        s = SqlSession(db)
        (avg,), _m = s.query(
            "SELECT AVG(temp) FROM m WHERE cat = 2")
        assert avg == pytest.approx(temps[cats == 2].mean())
