"""The per-table latch layer: writers on one table overlap readers of
another, acquisition order prevents deadlock, DDL excludes everything,
and ``coarse`` mode restores the old single-RWLock behaviour."""

import pickle
import threading

import pytest

from repro.engine import Column, Database, RWLock
from repro.engine.latches import LATCH_MODES, LatchManager, _mode_from_env
from repro.engine.sqlfront import SqlSession, _tokenize
from repro.tsql import FloatArray


def _blocked(fn, settle=0.2):
    """Run ``fn`` on a thread; report whether it is still blocked after
    ``settle`` seconds.  Returns (thread, done_event)."""
    done = threading.Event()

    def run():
        fn()
        done.set()

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t, done, not done.wait(settle)


class TestLatchManagerUnit:
    @pytest.fixture(autouse=True)
    def _no_sentinel(self):
        # Unit tests probe blocking with same-thread timeout attempts
        # (acquire while already holding) — the exact shape the runtime
        # order sentinel rejects, so it is suspended here.
        from repro.engine import lockcheck

        was = lockcheck.is_active()
        lockcheck.set_active(False)
        yield
        lockcheck.set_active(was)

    def _manager(self, mode="table", tables=("a", "b")):
        return LatchManager(RWLock(), lambda: list(tables), mode=mode)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self._manager(mode="fine")

    def test_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATCH", "coarse")
        assert _mode_from_env() == "coarse"
        monkeypatch.setenv("REPRO_LATCH", " Table ")
        assert _mode_from_env() == "table"
        monkeypatch.setenv("REPRO_LATCH", "bogus")
        assert _mode_from_env() == "table"
        monkeypatch.delenv("REPRO_LATCH")
        assert _mode_from_env() == "table"

    def test_latch_is_case_insensitive(self):
        lm = self._manager()
        assert lm.latch_for("Ta") is lm.latch_for("ta")
        assert lm.latch_for("TA") is lm.latch_for("ta")

    def test_forget_drops_the_latch(self):
        lm = self._manager()
        first = lm.latch_for("x")
        lm.forget("X")
        assert lm.latch_for("x") is not first

    def test_write_latch_requires_a_table(self):
        lm = self._manager()
        with pytest.raises(ValueError):
            with lm.write_latch():
                pass

    def test_writer_excludes_reader_of_same_table(self):
        lm = self._manager()
        with lm.write_latch("a"):
            def read():
                with lm.read_latch("a"):
                    pass
            t, done, blocked = _blocked(read)
            assert blocked
        assert done.wait(10)
        t.join(timeout=10)

    def test_writer_does_not_block_reader_of_other_table(self):
        lm = self._manager()
        with lm.write_latch("b"):
            def read():
                with lm.read_latch("a"):
                    pass
            t, done, blocked = _blocked(read)
            assert not blocked, "reader of A blocked behind writer of B"
        t.join(timeout=10)

    def test_writers_of_distinct_tables_overlap(self):
        lm = self._manager()
        with lm.write_latch("a"):
            def write_other():
                with lm.write_latch("b"):
                    pass
            t, done, blocked = _blocked(write_other)
            assert not blocked
        t.join(timeout=10)

    def test_sorted_acquisition_order_prevents_deadlock(self):
        """Two threads latching the same pair in opposite textual order
        never deadlock: both sets are acquired in sorted-name order."""
        lm = self._manager()
        errors = []

        def worker(names):
            try:
                for _ in range(200):
                    with lm.write_latch(*names):
                        pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(("a", "b"),)),
                   threading.Thread(target=worker, args=(("b", "a"),))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "latch deadlock"
        assert not errors

    def test_ddl_excludes_readers_and_writers(self):
        lm = self._manager()
        with lm.ddl_latch():
            def read():
                with lm.read_latch("a"):
                    pass
            def write():
                with lm.write_latch("b"):
                    pass
            tr, doner, blockedr = _blocked(read)
            tw, donew, blockedw = _blocked(write)
            assert blockedr and blockedw
        assert doner.wait(10) and donew.wait(10)
        tr.join(timeout=10)
        tw.join(timeout=10)

    def test_statements_exclude_ddl(self):
        lm = self._manager()
        with lm.read_latch("a"):
            def ddl():
                with lm.ddl_latch():
                    pass
            t, done, blocked = _blocked(ddl)
            assert blocked
        assert done.wait(10)
        t.join(timeout=10)

    def test_empty_read_latch_covers_all_tables(self):
        lm = self._manager(tables=("a", "b"))
        with lm.read_latch():
            def write():
                with lm.write_latch("b"):
                    pass
            t, done, blocked = _blocked(write)
            assert blocked, "all-table read latch let a writer through"
        assert done.wait(10)
        t.join(timeout=10)

    def test_coarse_mode_maps_onto_db_lock(self):
        db_lock = RWLock()
        lm = LatchManager(db_lock, lambda: ["a"], mode="coarse")
        with lm.read_latch("a"):
            assert db_lock.acquire_write(timeout=0.05) is False
        assert db_lock.acquire_write(timeout=5.0) is True
        db_lock.release_write()
        with lm.write_latch("a"):
            assert db_lock.acquire_read(timeout=0.05) is False

    def test_coarse_mode_serializes_distinct_tables(self):
        lm = self._manager(mode="coarse")
        with lm.write_latch("b"):
            def read():
                with lm.read_latch("a"):
                    pass
            t, done, blocked = _blocked(read)
            assert blocked, "coarse mode must serialize across tables"
        assert done.wait(10)
        t.join(timeout=10)


def _two_table_db(**kwargs):
    db = Database(**kwargs)
    for name in ("Ta", "Tb"):
        t = db.create_table(
            name, [Column("id", "bigint"),
                   Column("v", "varbinary", cap=100)])
        for i in range(200):
            t.insert((i, FloatArray.Vector_3(float(i), 2.0, 3.0)))
    return db


class TestStatementsOverlap:
    """The tentpole's acceptance: a SELECT on A proceeds while a writer
    holds B in ``table`` mode, and blocks in ``coarse`` mode."""

    def _query_ta(self, db, results):
        (n,), _ = SqlSession(db).query(
            "SELECT COUNT(*) FROM Ta WITH (NOLOCK)", cold=False,
            engine="vector")
        results.append(n)

    def test_reader_of_a_proceeds_while_writer_holds_b(self):
        db = _two_table_db(latch_mode="table")
        results = []
        with db.latches.write_latch("Tb"):
            t, done, blocked = _blocked(
                lambda: self._query_ta(db, results), settle=2.0)
            assert not blocked, \
                "SELECT on Ta blocked behind a write latch on Tb"
        t.join(timeout=10)
        assert results == [200]

    def test_coarse_mode_reader_blocks_behind_any_writer(self):
        db = _two_table_db(latch_mode="coarse")
        results = []
        with db.latches.write_latch("Tb"):
            t, done, blocked = _blocked(
                lambda: self._query_ta(db, results))
            assert blocked, "coarse mode should serialize everything"
        assert done.wait(10)
        t.join(timeout=10)
        assert results == [200]

    def test_serial_results_identical_across_modes(self):
        for mode in LATCH_MODES:
            db = _two_table_db(latch_mode=mode)
            session = SqlSession(db)
            (s,), _ = session.query(
                "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Ta "
                "WITH (NOLOCK)")
            assert s == pytest.approx(float(sum(range(200))))
            session.execute(
                "INSERT INTO Ta VALUES (999, "
                "FloatArray.Vector_3(7.0, 8.0, 9.0))")
            (n,), _ = session.query(
                "SELECT COUNT(*) FROM Ta WITH (NOLOCK)")
            assert n == 201

    def test_latch_set_planning(self):
        """Row/vector SELECTs latch only the scanned table; a query
        that may run on the parallel engine latches everything (its
        workers re-open a whole-database snapshot)."""
        db = _two_table_db(latch_mode="table")
        session = SqlSession(db)
        tokens = _tokenize("SELECT COUNT(*) FROM Ta WITH (NOLOCK)")
        assert session._latch_set(tokens, "vector") == ("Ta",)
        assert session._latch_set(tokens, "row") == ("Ta",)
        assert session._latch_set(tokens, "parallel") == ()

    def test_ddl_via_sql_excludes_concurrent_reader(self):
        db = _two_table_db(latch_mode="table")
        holder = SqlSession(db)
        entered = threading.Event()
        release = threading.Event()

        def long_read():
            def hold(result):
                entered.set()
                release.wait(10)
                return result
            holder.query("SELECT COUNT(*) FROM Ta WITH (NOLOCK)",
                         cold=False, engine="vector", finalize=hold)

        reader = threading.Thread(target=long_read, daemon=True)
        reader.start()
        assert entered.wait(10)
        t, done, blocked = _blocked(
            lambda: SqlSession(db).execute(
                "CREATE TABLE Tc (id bigint)"))
        assert blocked, "CREATE TABLE ran inside a reader's statement"
        release.set()
        assert done.wait(10)
        reader.join(timeout=10)
        t.join(timeout=10)
        assert "tc" in {n.lower() for n in db.tables}


class TestMixedTrafficStress:
    def test_readers_on_a_while_writer_churns_b(self):
        """Readers of A must see bit-stable values while a writer
        mutates B the whole time — a torn read would surface as a
        wrong COUNT or SUM."""
        db = _two_table_db(latch_mode="table")
        expected_sum = float(sum(range(200)))
        errors = []
        reads = []
        writer_done = threading.Event()

        def reader():
            session = SqlSession(db)
            try:
                while not writer_done.is_set():
                    (n,), _ = session.query(
                        "SELECT COUNT(*) FROM Ta WITH (NOLOCK)",
                        cold=False, engine="vector")
                    (s,), _ = session.query(
                        "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Ta "
                        "WITH (NOLOCK)", cold=False, engine="vector")
                    reads.append((n, s))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            session = SqlSession(db)
            try:
                for i in range(40):
                    session.execute(
                        f"INSERT INTO Tb VALUES ({1000 + i}, "
                        "FloatArray.Vector_3(1.0, 2.0, 3.0))")
                    if i % 10 == 9:
                        session.execute(
                            f"DELETE FROM Tb WHERE id = {1000 + i}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                writer_done.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert reads, "readers never completed a query"
        for n, s in reads:
            assert n == 200
            assert s == pytest.approx(expected_sum)
        (nb,), _ = SqlSession(db).query(
            "SELECT COUNT(*) FROM Tb WITH (NOLOCK)")
        assert nb == 200 + 40 - 4

    def test_concurrent_writers_on_distinct_tables(self):
        """Writers of different tables overlap under table latches; the
        page file's extent bookkeeping (shared across tables) must stay
        consistent under that overlap."""
        db = _two_table_db(latch_mode="table")
        errors = []

        def writer(table, base):
            session = SqlSession(db)
            try:
                for i in range(60):
                    session.execute(
                        f"INSERT INTO {table} VALUES ({base + i}, "
                        f"FloatArray.Vector_3({float(i)}, 0.0, 0.0))")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=("Ta", 5000)),
                   threading.Thread(target=writer, args=("Tb", 6000))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        session = SqlSession(db)
        for table in ("Ta", "Tb"):
            (n,), _ = session.query(
                f"SELECT COUNT(*) FROM {table} WITH (NOLOCK)")
            assert n == 260
            # The inserted vectors decode correctly: no torn blob pages.
            (s,), _ = session.query(
                "SELECT SUM(FloatArray.Item_1(v, 0)) "
                f"FROM {table} WITH (NOLOCK)")
            assert s == pytest.approx(
                float(sum(range(200))) + float(sum(range(60))))


class TestDatabaseIntegration:
    def test_default_mode_comes_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATCH", "coarse")
        assert Database().latches.mode == "coarse"
        monkeypatch.delenv("REPRO_LATCH")
        assert Database().latches.mode == "table"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATCH", "coarse")
        assert Database(latch_mode="table").latches.mode == "table"

    def test_pickle_roundtrip_recreates_latches(self):
        db = _two_table_db(latch_mode="table")
        clone = pickle.loads(pickle.dumps(db))
        assert clone.latches.mode in LATCH_MODES
        (n,), _ = SqlSession(clone).query(
            "SELECT COUNT(*) FROM Ta WITH (NOLOCK)")
        assert n == 200
