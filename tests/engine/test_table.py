"""Clustered table tests: schema validation, row codec, blob routing."""

import numpy as np
import pytest

from repro.engine import (
    BlobStore,
    BufferPool,
    Column,
    MaxBlobHandle,
    PageFile,
    SchemaError,
    Table,
)
from repro.engine.constants import MAX_IN_ROW_BYTES


@pytest.fixture
def db():
    f = PageFile()
    return f, BlobStore(f), BufferPool(f)


def _table(f, store, columns):
    return Table("t", columns, f, store)


class TestSchema:
    def test_pk_must_be_bigint(self, db):
        f, store, _pool = db
        with pytest.raises(SchemaError):
            _table(f, store, [Column("id", "int")])

    def test_no_columns(self, db):
        f, store, _pool = db
        with pytest.raises(SchemaError):
            _table(f, store, [])

    def test_duplicate_names(self, db):
        f, store, _pool = db
        with pytest.raises(SchemaError):
            _table(f, store, [Column("id", "bigint"),
                              Column("id", "float")])

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("x", "text")

    def test_varbinary_cap_required(self):
        with pytest.raises(SchemaError):
            Column("v", "varbinary")  # cap 0
        with pytest.raises(SchemaError):
            Column("v", "varbinary", cap=MAX_IN_ROW_BYTES + 1)

    def test_max_column_needs_blob_store(self, db):
        f, _store, _pool = db
        with pytest.raises(SchemaError):
            Table("t", [Column("id", "bigint"),
                        Column("v", "varbinary_max")], f, None)


class TestRowCodec:
    def test_fixed_columns_roundtrip(self, db):
        f, store, pool = db
        t = _table(f, store, [
            Column("id", "bigint"), Column("a", "int"),
            Column("b", "smallint"), Column("c", "tinyint"),
            Column("d", "float"), Column("e", "real")])
        t.insert((1, -7, 300, -5, 2.5, 1.25))
        assert t.get(1) == (1, -7, 300, -5, 2.5, 1.25)

    def test_nulls_roundtrip(self, db):
        f, store, pool = db
        t = _table(f, store, [
            Column("id", "bigint"), Column("a", "int"),
            Column("v", "varbinary", cap=10),
            Column("m", "varbinary_max")])
        t.insert((1, None, None, None))
        assert t.get(1) == (1, None, None, None)
        t.insert((2, 5, b"xy", b"zz"))
        assert t.get(2) == (2, 5, b"xy", b"zz")

    def test_varbinary_cap_enforced(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("v", "varbinary", cap=4)])
        with pytest.raises(SchemaError):
            t.insert((1, b"12345"))

    def test_wrong_arity(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        with pytest.raises(SchemaError):
            t.insert((1,))

    def test_small_max_value_stays_inline(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("m", "varbinary_max")])
        t.insert((1, b"small"))
        assert t.get(1)[1] == b"small"

    def test_large_max_value_goes_out_of_page(self, db):
        f, store, pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("m", "varbinary_max")])
        big = np.random.default_rng(0).bytes(50_000)
        t.insert((1, big))
        handle = t.get(1)[1]
        assert isinstance(handle, MaxBlobHandle)
        assert handle.length == 50_000
        assert handle.read_all(pool) == big

    def test_empty_varbinary_vs_null(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("v", "varbinary", cap=8)])
        t.insert((1, b""))
        t.insert((2, None))
        assert t.get(1)[1] == b""
        assert t.get(2)[1] is None


class TestScan:
    def test_scan_in_key_order(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        for k in (5, 1, 3):
            t.insert((k, float(k)))
        assert [row[0] for row in t.scan()] == [1, 3, 5]

    def test_scan_range(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        for k in range(20):
            t.insert((k, float(k)))
        got = [r[0] for r in t.scan(start=5, stop=10)]
        assert got == [5, 6, 7, 8, 9]

    def test_get_missing(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        assert t.get(42) is None

    def test_column_index(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        assert t.column_index("a") == 1
        with pytest.raises(SchemaError):
            t.column_index("zz")


class TestSizeAccounting:
    def test_vector_table_is_about_43_percent_bigger(self, db):
        """Reproduces the Section 6.2 claim from first principles."""
        from repro.tsql import FloatArray

        f, store, _pool = db
        ts = Table("Tscalar",
                   [Column("id", "bigint")] +
                   [Column(f"v{i}", "float") for i in range(1, 6)],
                   f, store)
        tv = Table("Tvector",
                   [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)], f, store)
        rng = np.random.default_rng(0)
        for i in range(4000):
            vals = rng.standard_normal(5)
            ts.insert((i, *vals))
            tv.insert((i, FloatArray.Vector_5(*vals)))
        ratio = tv.data_bytes() / ts.data_bytes()
        # Paper reports 43 %; the exact overhead depends on per-row
        # bookkeeping, so accept the 35-55 % band.
        assert 1.35 < ratio < 1.55


class TestDeleteUpdate:
    def test_delete_row(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        t.insert((1, 1.0))
        t.insert((2, 2.0))
        assert t.delete(1)
        assert t.get(1) is None
        assert t.row_count == 1
        assert not t.delete(1)

    def test_update_row(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("v", "varbinary", cap=50)])
        t.insert((1, b"old"))
        assert t.update((1, b"new value"))
        assert t.get(1)[1] == b"new value"
        assert not t.update((99, b"x"))

    def test_scan_after_mixed_mutations(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        for k in range(50):
            t.insert((k, float(k)))
        for k in range(0, 50, 2):
            t.delete(k)
        t.update((1, -1.0))
        rows = list(t.scan())
        assert [r[0] for r in rows] == list(range(1, 50, 2))
        assert rows[0][1] == -1.0


class TestCodecProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _col_types = st.sampled_from(
        ["int", "smallint", "tinyint", "float", "real", "varbinary",
         "varbinary_max"])

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_schema_roundtrip(self, data):
        """Any schema, any rows (NULLs included) round-trip exactly."""
        st = self.st
        f = PageFile()
        store = BlobStore(f)
        pool = BufferPool(f)
        n_cols = data.draw(st.integers(1, 6))
        columns = [Column("id", "bigint")]
        for i in range(n_cols):
            ctype = data.draw(self._col_types)
            cap = data.draw(st.integers(1, 64)) \
                if ctype == "varbinary" else 0
            columns.append(Column(f"c{i}", ctype, cap=cap))
        table = Table("t", columns, f, store)

        rows = []
        for key in range(data.draw(st.integers(1, 12))):
            row = [key]
            for col in columns[1:]:
                if data.draw(st.booleans()) and data.draw(st.booleans()):
                    row.append(None)
                elif col.type == "varbinary":
                    row.append(data.draw(st.binary(max_size=col.cap)))
                elif col.type == "varbinary_max":
                    row.append(data.draw(st.binary(max_size=200)))
                elif col.type in ("float", "real"):
                    value = data.draw(st.floats(
                        allow_nan=False, allow_infinity=False,
                        width=32 if col.type == "real" else 64))
                    row.append(value)
                else:
                    bits = {"int": 31, "smallint": 15, "tinyint": 7}
                    b = bits[col.type]
                    row.append(data.draw(
                        st.integers(-(2 ** b), 2 ** b - 1)))
            rows.append(tuple(row))
            table.insert(rows[-1])
        for row in rows:
            assert table.get(row[0], pool) == row


class TestStats:
    def test_page_fill_stats(self, db):
        f, store, _pool = db
        t = _table(f, store, [Column("id", "bigint"),
                              Column("a", "float")])
        for k in range(2000):
            t.insert((k, float(k)))
        stats = t.page_fill_stats()
        assert stats["rows"] == 2000
        assert stats["leaf_pages"] > 1
        assert 0.5 < stats["avg_fill"] <= 1.0
        assert stats["height"] >= 2
        assert stats["indexes"] == []

    def test_database_report(self):
        from repro.engine import Database
        db = Database()
        t = db.create_table("things", [Column("id", "bigint"),
                                       Column("x", "float")])
        for k in range(100):
            t.insert((k, float(k)))
        t.create_index("x")
        report = db.report()
        assert "things" in report
        assert "100" in report
        assert "x" in report.splitlines()[1]
