"""SQLite binding tests: scalar UDFs, aggregates, blob streaming."""

import sqlite3

import numpy as np
import pytest

from repro.core import SqlArray
from repro.core.partial import read_subarray
from repro.sqlbind import SCALAR_EXPORTS, connect


@pytest.fixture
def conn():
    c = connect()
    yield c
    c.close()


class TestRegistration:
    def test_function_count(self, conn):
        from repro.tsql import MATH_EXPORTS
        per_schema = len(SCALAR_EXPORTS) + 3  # + 3 aggregates
        math = 8 * len(MATH_EXPORTS)  # float/complex schemas only
        complex_udt = 15
        assert conn.registered_functions == \
            16 * per_schema + math + complex_udt + 1

    def test_every_schema_callable(self, conn):
        for schema in ("FloatArray", "FloatArrayMax", "IntArray",
                       "BigIntArrayMax", "TinyIntArray", "RealArray"):
            blob = conn.execute(
                f"SELECT {schema}_Vector_2(1, 2)").fetchone()[0]
            assert conn.execute(
                f"SELECT {schema}_Count(?)", (blob,)).fetchone()[0] == 2


class TestScalarFunctions:
    def test_paper_workflow_in_sql(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v BLOB)")
        conn.execute(
            "INSERT INTO t VALUES (1, FloatArray_Vector_5(1,2,3,4,5))")
        item, total = conn.execute(
            "SELECT FloatArray_Item_1(v, 3), FloatArray_Sum(v) FROM t"
        ).fetchone()
        assert (item, total) == (4.0, 15.0)

    def test_subarray_in_sql(self, conn):
        row = conn.execute(
            "SELECT FloatArray_Subarray(FloatArray_Vector_5(1,2,3,4,5),"
            " IntArray_Vector_1(1), IntArray_Vector_1(3), 0)"
        ).fetchone()[0]
        np.testing.assert_array_equal(conn.load_array(row),
                                      [2.0, 3.0, 4.0])

    def test_update_item_in_sql(self, conn):
        row = conn.execute(
            "SELECT FloatArray_Item_1(FloatArray_UpdateItem_1("
            "FloatArray_Vector_3(1,2,3), 0, 9.5), 0)").fetchone()[0]
        assert row == 9.5

    def test_tostring(self, conn):
        text = conn.execute(
            "SELECT IntArray_ToString(IntArray_Vector_2(3, 4))"
        ).fetchone()[0]
        assert text == "int32[2]{3,4}"
        blob = conn.execute("SELECT Array_FromString(?)",
                            (text,)).fetchone()[0]
        np.testing.assert_array_equal(conn.load_array(blob), [3, 4])

    def test_complex_returned_as_text(self, conn):
        out = conn.execute(
            "SELECT ComplexArray_Sum(ComplexArray_Vector_2(1, 2))"
        ).fetchone()[0]
        assert complex(out.strip("()")) == 3 + 0j

    def test_errors_surface_as_operational_error(self, conn):
        with pytest.raises(sqlite3.OperationalError):
            conn.execute(
                "SELECT FloatArray_Item_1(FloatArray_Vector_2(1,2), 5)"
            ).fetchone()
        with pytest.raises(sqlite3.OperationalError):
            conn.execute("SELECT FloatArray_Sum(X'00112233')").fetchone()

    def test_type_mismatch_detected_in_sql(self, conn):
        with pytest.raises(sqlite3.OperationalError):
            conn.execute(
                "SELECT FloatArray_Sum(IntArray_Vector_2(1, 2))"
            ).fetchone()


class TestAggregates:
    def test_concat_agg(self, conn):
        conn.execute("CREATE TABLE cells (ix BLOB, val REAL)")
        for i in range(6):
            conn.execute(
                "INSERT INTO cells VALUES (IntArray_Vector_2(?, ?), ?)",
                (i % 2, i // 2, float(i)))
        blob = conn.execute(
            "SELECT FloatArray_ConcatAgg(IntArray_Vector_2(2, 3), ix, "
            "val) FROM cells").fetchone()[0]
        out = conn.load_array(blob)
        np.testing.assert_array_equal(
            out, np.arange(6.0).reshape((2, 3), order="F"))

    def test_avg_agg_composites(self, conn):
        conn.execute("CREATE TABLE spectra (id INTEGER, flux BLOB)")
        rng = np.random.default_rng(0)
        fluxes = [rng.standard_normal(16) for _ in range(5)]
        for i, f in enumerate(fluxes):
            conn.execute("INSERT INTO spectra VALUES (?, ?)",
                         (i, conn.store_array(f)))
        blob = conn.execute(
            "SELECT FloatArray_AvgAgg(flux) FROM spectra").fetchone()[0]
        np.testing.assert_allclose(conn.load_array(blob),
                                   np.mean(fluxes, axis=0))

    def test_avg_agg_group_by(self, conn):
        # The paper's composite-by-redshift-bin query shape.
        conn.execute(
            "CREATE TABLE s (zbin INTEGER, flux BLOB)")
        for zbin, base in ((0, 1.0), (0, 3.0), (1, 10.0)):
            conn.execute("INSERT INTO s VALUES (?, ?)",
                         (zbin, conn.store_array(
                             np.full(4, base))))
        rows = conn.execute(
            "SELECT zbin, FloatArray_AvgAgg(flux) FROM s GROUP BY zbin "
            "ORDER BY zbin").fetchall()
        np.testing.assert_array_equal(conn.load_array(rows[0][1]),
                                      np.full(4, 2.0))
        np.testing.assert_array_equal(conn.load_array(rows[1][1]),
                                      np.full(4, 10.0))

    def test_sum_agg(self, conn):
        conn.execute("CREATE TABLE s (flux BLOB)")
        for base in (1.0, 2.0):
            conn.execute("INSERT INTO s VALUES (?)",
                         (conn.store_array(np.full(3, base)),))
        blob = conn.execute(
            "SELECT FloatArray_SumAgg(flux) FROM s").fetchone()[0]
        np.testing.assert_array_equal(conn.load_array(blob),
                                      np.full(3, 3.0))

    def test_agg_null_handling(self, conn):
        conn.execute("CREATE TABLE s (flux BLOB)")
        conn.execute("INSERT INTO s VALUES (NULL)")
        assert conn.execute(
            "SELECT FloatArray_AvgAgg(flux) FROM s").fetchone()[0] is None

    def test_agg_shape_mismatch_errors(self, conn):
        conn.execute("CREATE TABLE s (flux BLOB)")
        conn.execute("INSERT INTO s VALUES (?)",
                     (conn.store_array(np.zeros(2)),))
        conn.execute("INSERT INTO s VALUES (?)",
                     (conn.store_array(np.zeros(3)),))
        with pytest.raises(sqlite3.OperationalError):
            conn.execute("SELECT FloatArray_AvgAgg(flux) FROM s"
                         ).fetchone()


class TestClientHelpers:
    def test_store_load_roundtrip(self, conn):
        m = np.random.default_rng(1).standard_normal((3, 4))
        out = conn.load_array(conn.store_array(m))
        np.testing.assert_array_equal(out, m)
        assert out.flags["F_CONTIGUOUS"]

    def test_to_table(self, conn):
        blob = conn.store_array(np.array([[1.0, 2.0]]))
        rows = list(conn.to_table(blob))
        assert rows == [(0, 0, 1.0), (0, 1, 2.0)]

    def test_incremental_blob_subarray(self, conn):
        values = np.arange(16 ** 3, dtype="f8").reshape(16, 16, 16)
        conn.execute(
            "CREATE TABLE cubes (id INTEGER PRIMARY KEY, data BLOB)")
        conn.execute("INSERT INTO cubes VALUES (1, ?)",
                     (conn.store_array(values),))
        with conn.open_array_blob("cubes", "data", 1) as stream:
            window = read_subarray(stream, (2, 3, 4), (5, 5, 5))
            np.testing.assert_array_equal(
                window.to_numpy(), values[2:7, 3:8, 4:9])
            assert stream.bytes_read < values.nbytes / 5

    def test_context_manager_transaction(self):
        with connect() as conn:
            conn.execute("CREATE TABLE t (x BLOB)")
            conn.execute("INSERT INTO t VALUES (FloatArray_Vector_1(1))")
        assert conn.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 1
