"""Tests for the ``python -m repro`` command-line entry point."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "float64" in out
        assert "T-SQL schemas: 16" in out

    def test_usage_on_unknown(self, capsys):
        assert main(["nope"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_usage_on_empty(self, capsys):
        assert main([]) == 2

    def test_table1_small(self, capsys):
        assert main(["table1", "500"]) == 0
        out = capsys.readouterr().out
        assert "Query 1" in out
        assert "Query 5" in out
        assert "Section 7.1" in out


class TestServeAndClient:
    @pytest.fixture(scope="class")
    def served(self):
        """A server over the demo tables, on a background thread."""
        from repro.__main__ import _load_demo_db
        from repro.server import ServerThread

        with ServerThread(_load_demo_db(200)) as handle:
            yield handle

    def test_client_query(self, served, capsys):
        assert main(["client", "--port", str(served.port),
                     "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)"]) == 0
        out = capsys.readouterr().out
        assert "200" in out
        assert "MB/s" in out

    def test_client_blob_query_prints_hex(self, served, capsys):
        assert main(["client", "--port", str(served.port),
                     "SELECT MAX(v) FROM Tvector WHERE id = 3"]) == 0
        assert "0x" in capsys.readouterr().out

    def test_client_stats(self, served, capsys):
        assert main(["client", "--port", str(served.port),
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert '"queries_ok"' in out
        assert '"latency_p95"' in out

    def test_client_sql_error(self, served, capsys):
        assert main(["client", "--port", str(served.port),
                     "SELECT FROM"]) == 1
        assert "SQL_ERROR" in capsys.readouterr().err

    def test_client_connection_refused(self, capsys):
        # A port nothing listens on.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert main(["client", "--port", str(free_port),
                     "SELECT 1 FROM T"]) == 1
        assert "cannot reach" in capsys.readouterr().err


def test_serve_subprocess_round_trip():
    """``repro serve`` in a real subprocess, queried by ``repro
    client``."""
    import re

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--rows", "200"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        port = None
        for _ in range(50):
            line = proc.stdout.readline()
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port = int(m.group(1))
                break
        assert port, "server never reported its port"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "client", "--port",
             str(port), "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "200" in result.stdout
    finally:
        proc.terminate()
        proc.wait(timeout=30)


def test_module_invocation():
    """``python -m repro info`` works as a subprocess too."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Element types" in result.stdout
