"""Tests for the ``python -m repro`` command-line entry point."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestMain:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "float64" in out
        assert "T-SQL schemas: 16" in out

    def test_usage_on_unknown(self, capsys):
        assert main(["nope"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_usage_on_empty(self, capsys):
        assert main([]) == 2

    def test_table1_small(self, capsys):
        assert main(["table1", "500"]) == 0
        out = capsys.readouterr().out
        assert "Query 1" in out
        assert "Query 5" in out
        assert "Section 7.1" in out


def test_module_invocation():
    """``python -m repro info`` works as a subprocess too."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Element types" in result.stdout
