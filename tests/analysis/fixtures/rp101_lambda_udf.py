"""Seeded RP101 violation: a lambda registered as a SQL UDF cannot be
pickled by name into a parallel worker."""


def install_udfs(session):
    # RP101: lambdas have no importable name; workers cannot resolve them.
    session.register_function("dbo.DoubleIt", lambda v: v * 2.0)
