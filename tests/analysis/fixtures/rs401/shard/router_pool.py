"""RS401 fixture: coordinator code reading pages from the buffer pool.

The coordinator owns no storage; a page read here races shard-side
writers with no latch covering the pair.
"""


def coordinator_scan(db, page_id):
    return db.pool.fetch(page_id)
