"""RS401 fixture: a shard merge function that mutates its argument.

Folding partial states must be pure — extending the left state in
place makes the merge result depend on whether the caller reuses the
list across folds.
"""


def merge_count_lists(state, partial):
    state.extend(partial)
    return state
