"""RS401 fixture: a failover replay that consults the catalog mirror.

The replay must ship the *already-planned* request to a sibling
replica verbatim; touching the planner's catalog mid-failover can
route differently (a concurrent DDL may have moved the mirror) and
the sibling would execute a different statement than the replica that
died.
"""


def failover_read(self, shard_id, header):
    table = self.catalog.tables[header["table"]]
    header = dict(header, columns=len(table.columns))
    return self._exchange_on(self.replica_sets[shard_id][1],
                             header, ())
