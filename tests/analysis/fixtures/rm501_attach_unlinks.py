"""RM501 fixture: attach-side function unlinks a segment it doesn't own."""

from multiprocessing import shared_memory


def read_segment(name, size, loads):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return loads(bytes(shm.buf[:size]))
    finally:
        shm.close()
        shm.unlink()
