"""Seeded RV201 violation: a batch kernel writes into its input column
array instead of producing a fresh result."""


def scale_kernel(args):
    values = args[0]
    # RV201: in-place store into the shared input buffer.
    values[:] = [v * 2.0 for v in values]
    return list(values), None
