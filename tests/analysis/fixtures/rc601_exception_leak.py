"""Seeded RC601 violation: a pin that leaks *only* on an exception
path.

The unpin sits in a ``finally`` — a lexical balance check is satisfied
— but ``codec.header`` runs between the pin and the ``try``: if it
raises, the exception unwinds past the pin before any cleanup is
armed, and the snapshot's version chain is never retired.  Only the
flow-sensitive analysis sees that exit path.
"""


def export_rows(table, pool, codec):
    snap = table.pin_snapshot()
    header = codec.header(table.name)  # may raise: pin not yet guarded
    try:
        return header + codec.encode(snap.scan())
    finally:
        snap.unpin(pool)
