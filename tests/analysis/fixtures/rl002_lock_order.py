"""Seeded RL002 violation: the database RWLock is acquired while the pool's
internal mutex is already held (inverse of the engine's lock order)."""

import threading
from contextlib import contextmanager


class RWLockStub:
    @contextmanager
    def write_lock(self):
        yield self


class Pool:
    def __init__(self):
        self._lock = threading.Lock()


def flush_pages(pool, db_lock):
    with pool._lock:
        # RL002: RWLock taken under the pool mutex — inverse lock order.
        with db_lock.write_lock():
            return True
