"""Seeded RW301 violation: a wire-protocol module that grew an error code
without regenerating its checked-in schema.

Frames::

    {"type": "query", "sql": str}
    {"type": "result", "kind": str, "rows": list}
    {"type": "error", "code": str, "message": str}
"""

PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 16 * 1024 * 1024
NO_TIMEOUT = "none"

SERVER_BUSY = "SERVER_BUSY"
SQL_ERROR = "SQL_ERROR"
# Added after the schema was frozen -- replint must flag the drift.
SHARD_MOVED = "SHARD_MOVED"
