"""Seeded RL005 violation: a blocking sleep reached while an exclusive
table latch is held.

Every reader and writer of the latched table stalls behind the sleep
for its full duration — the latch is exclusive, so nothing overlaps
it.  Blocking calls (sleep, sockets, subprocesses) must happen outside
the latch; the latch should cover only the in-memory mutation.
"""

import time


def compact_table(db, table):
    with db.latches.write_latch(table):
        time.sleep(0.25)
        return table
