"""Seeded RL004 violation: two page pools take each other's mutex in
opposite orders.

``PagePoolA.ship`` calls ``PagePoolB.pull`` while holding A's mutex
(edge ``mutex:PagePoolA -> mutex:PagePoolB``); ``PagePoolB.drain``
calls ``PagePoolA.stash`` while holding B's (the reverse edge).  Each
path is deadlock-free on its own — only the whole-program lock-order
graph sees the cycle, which RL004 must report with both witness call
paths.
"""

import threading


class PagePoolA:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def ship(self, peer):
        with self._lock:
            peer.pull()

    def stash(self):
        with self._lock:
            self._items.append(1)


class PagePoolB:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def pull(self):
        with self._lock:
            self._items.append(2)

    def drain(self, peer):
        with self._lock:
            peer.stash()
