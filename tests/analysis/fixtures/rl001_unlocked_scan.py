"""Seeded RL001 violation: a public session entry point reaches the buffer
pool without taking the database RWLock first."""


class BufferPool:
    def fetch(self, page_id):
        return page_id


class RWLockStub:
    def read_lock(self):
        raise NotImplementedError

    def write_lock(self):
        raise NotImplementedError


class Database:
    def __init__(self):
        self.pool = BufferPool()
        self.lock = RWLockStub()


class SqlSession:
    def __init__(self, db):
        self.db = db

    def peek_page(self, page_id):
        # RL001: no `with self.db.lock.read_lock():` around the pool access.
        return self.db.pool.fetch(page_id)
