"""Seeded RL003 violation: a generator yields while a latch is held.

The consumer decides when (and whether) the next row is pulled, so the
table latch is parked across an unbounded suspension.  The guard
helper itself is a ``@contextmanager`` and therefore exempt.
"""

from contextlib import contextmanager


class LatchStub:
    @contextmanager
    def read_latch(self, *tables):
        yield self


def scan_rows(latches, table):
    with latches.read_latch(table.name):
        for row in table.rows:
            yield row
