"""RM501 fixture: owner class creates segments but never unlink()s."""

from multiprocessing import shared_memory


class LeakyOwner:
    def __init__(self):
        self._segments = {}

    def export(self, payload):
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload)))
        shm.buf[:len(payload)] = payload
        self._segments[shm.name] = shm
        return shm.name

    def release(self, name):
        shm = self._segments.pop(name, None)
        if shm is not None:
            shm.close()
