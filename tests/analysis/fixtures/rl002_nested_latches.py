"""Seeded RL002 violation: a second table latch is acquired while one
is already held.  A statement's whole latch set must be taken in one
sorted ``read_latch``/``write_latch`` call — incremental acquisition
reintroduces the deadlock the sorted order exists to prevent."""

from contextlib import contextmanager


class LatchStub:
    @contextmanager
    def read_latch(self, *tables):
        yield self

    @contextmanager
    def write_latch(self, *tables):
        yield self


def copy_table(latches):
    with latches.read_latch("src"):
        # RL002: nested latch acquisition — unordered multi-table lock.
        with latches.write_latch("dst"):
            return True
