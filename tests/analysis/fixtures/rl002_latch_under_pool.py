"""Seeded RL002 violation: a table latch is acquired while the pool's
internal mutex is already held (the pool lock is a leaf *below* the
latch level, so this inverts the latch hierarchy)."""

import threading
from contextlib import contextmanager


class LatchStub:
    @contextmanager
    def read_latch(self, *tables):
        yield self


class Pool:
    def __init__(self):
        self._lock = threading.Lock()


def evict_and_rescan(pool, latches):
    with pool._lock:
        # RL002: latch taken under the pool mutex — hierarchy inversion.
        with latches.read_latch("t"):
            return True
