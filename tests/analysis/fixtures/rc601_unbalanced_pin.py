"""Seeded RC601 violation: a pinned snapshot with no unpin on the
error path — an exception inside the scan loop leaks the pin, so the
version chain (and its buffer-pool entries) can never be retired."""


def count_rows(table):
    snap = table.pin_snapshot()
    total = 0
    for _row in snap.scan():
        total += 1
    snap.unpin(None)  # not in a finally: skipped when scan() raises
    return total
