"""Flow-layer tests: CFG construction, the held-lock-set and resource
dataflows, the whole-program lock-order graph, and the CLI surfaces
built on them (``--baseline``, ``--changed``, ``--write-lock-graph``)."""

import ast
import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import lint_paths
from repro.analysis.callgraph import CallGraph
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.dataflow import (
    LockClassifier,
    _mode_compatible,
    analyze_locks,
    analyze_resources,
)
from repro.analysis.flow.lockgraph import (
    LockGraph,
    ProgramLockAnalysis,
    default_lock_graph_path,
    load_lock_graph,
)
from repro.analysis.framework import SourceFile, collect_files

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")


def _func(src, name=None):
    tree = ast.parse(textwrap.dedent(src))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return node
    raise AssertionError(f"no function {name!r} in source")


def _program(*texts):
    files = [
        SourceFile(f"/virtual/m{idx}.py", textwrap.dedent(text),
                   display_path=f"m{idx}.py")
        for idx, text in enumerate(texts)
    ]
    return ProgramLockAnalysis(files, CallGraph.build(files))


# -- CFG --------------------------------------------------------------------

def test_cfg_linear_reaches_exit():
    cfg = build_cfg(_func("def f():\n    x = 1\n    return x\n"))
    seen, work = set(), [cfg.entry]
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        work.extend(edge.dst for edge in cfg.succ[node])
    assert cfg.exit in seen


def test_cfg_calls_get_exceptional_edges():
    cfg = build_cfg(_func("def f(x):\n    x.risky()\n    return 1\n"))
    exceptional = [edge for succ in cfg.succ for edge in succ
                   if edge.exceptional]
    assert exceptional
    assert any(edge.dst == cfg.raise_exit for edge in exceptional)


def test_cfg_branches_keep_both_arms():
    cfg = build_cfg(_func(
        "def f(c):\n"
        "    if c:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"))
    real = [stmt for stmt in cfg.stmts if stmt is not None]
    assert len(real) == 4  # if, both assigns, return


# -- lock dataflow ----------------------------------------------------------

def test_blocking_call_records_exclusive_held_set():
    facts = analyze_locks(_func(
        "def f(db):\n"
        "    with db.latches.write_latch('t'):\n"
        "        time.sleep(1)\n"), None, LockClassifier({}))
    assert [blk.name for blk in facts.blocking] == ["sleep"]
    for state in facts.blocking[0].held:
        assert any(exclusive for _cls, exclusive in state)


def test_with_exit_releases_held_set():
    facts = analyze_locks(_func(
        "def f(db):\n"
        "    with db.latches.write_latch('t'):\n"
        "        pass\n"
        "    time.sleep(1)\n"), None, LockClassifier({}))
    assert facts.blocking[0].held == (frozenset(),)


def test_yield_states_capture_held_latch():
    facts = analyze_locks(_func(
        "def gen(db):\n"
        "    with db.latches.read_latch('t'):\n"
        "        yield 1\n"), None, LockClassifier({}))
    assert facts.yield_states
    assert all(state for state in facts.yield_states)


def test_mode_exclusivity_filters_alternatives():
    legacy = frozenset({("db", True)})
    mvcc = frozenset({("catalog", False)})
    assert _mode_compatible(legacy, (("db", True),))
    assert not _mode_compatible(legacy, (("catalog", False), ("table", True)))
    assert not _mode_compatible(mvcc, (("db", False),))
    assert _mode_compatible(frozenset(), (("db", False),))


# -- resource dataflow ------------------------------------------------------

def test_pin_leaks_on_early_return():
    res = analyze_resources(_func(
        "def first(table, pool):\n"
        "    snap = table.pin_snapshot()\n"
        "    for row in snap.scan():\n"
        "        return row\n"
        "    snap.unpin(pool)\n"
        "    return None\n"))
    assert [(leak.kind, leak.name) for leak in res.leaks] == [("pin", "snap")]


def test_pin_leaks_only_on_exception_path():
    res = analyze_resources(_func(
        "def export(table, pool, codec):\n"
        "    snap = table.pin_snapshot()\n"
        "    header = codec.header()\n"
        "    try:\n"
        "        return header + codec.encode(snap.scan())\n"
        "    finally:\n"
        "        snap.unpin(pool)\n"))
    assert [leak.paths for leak in res.leaks] == [("exception",)]


def test_returned_pin_transfers_ownership():
    res = analyze_resources(_func(
        "def pin(table):\n"
        "    snap = table.pin_snapshot()\n"
        "    return snap\n"))
    assert res.leaks == []


def test_finally_unpin_is_leak_free():
    res = analyze_resources(_func(
        "def scan(table, pool):\n"
        "    snap = table.pin_snapshot()\n"
        "    try:\n"
        "        return list(snap.scan())\n"
        "    finally:\n"
        "        snap.unpin(pool)\n"))
    assert res.leaks == []


# -- lock graph mechanics ---------------------------------------------------

def test_lockgraph_cycle_detection_and_topo():
    graph = LockGraph()
    graph.add_edge("a", "b", "w1")
    graph.add_edge("b", "a", "w2")
    assert graph.cycles() == [["a", "b", "a"]]
    assert graph.topo_order() is None


def test_lockgraph_acyclic_topo_is_deterministic():
    graph = LockGraph()
    graph.add_edge("a", "b", "w1")
    graph.add_edge("a", "c", "w2")
    graph.add_edge("b", "c", "w3")
    assert graph.topo_order() == ["a", "b", "c"]
    assert graph.cycles() == []


def test_lockgraph_workerpool_incoming_exempt():
    graph = LockGraph()
    graph.add_edge("workerpool", "catalog", "pool-then-latch")
    graph.add_edge("catalog", "workerpool", "latch-then-pool")
    assert graph.cycles() == []
    assert ("catalog", "workerpool") not in graph.order_edges()
    assert graph.topo_order() == ["workerpool", "catalog"]


def test_lockgraph_cross_family_edges_skipped():
    graph = LockGraph()
    graph.add_edge("db", "table", "phantom")
    graph.add_edge("catalog", "db", "phantom")
    assert graph.edges == {}
    graph.add_edge("catalog", "pool", "real")
    assert ("catalog", "pool") in graph.edges


def test_lockgraph_witness_cap():
    graph = LockGraph()
    for idx in range(5):
        graph.add_edge("a", "b", f"w{idx}")
    assert len(graph.edges[("a", "b")]) == 3


# -- whole-program analysis -------------------------------------------------

_CYCLE_SRC = """
import threading


class PagePoolA:
    def ship(self, peer):
        with self._lock:
            peer.pull()

    def stash(self):
        with self._lock:
            self._items.append(1)


class PagePoolB:
    def pull(self):
        with self._lock:
            self._items.append(2)

    def drain(self, peer):
        with self._lock:
            peer.stash()
"""


def test_program_analysis_finds_cycle_with_both_edges():
    analysis = _program(_CYCLE_SRC)
    graph = analysis.lock_graph
    assert ("mutex:PagePoolA", "mutex:PagePoolB") in graph.edges
    assert ("mutex:PagePoolB", "mutex:PagePoolA") in graph.edges
    assert graph.cycles() == [
        ["mutex:PagePoolA", "mutex:PagePoolB", "mutex:PagePoolA"]]


def test_program_analysis_blocking_chain_through_helper():
    analysis = _program(
        "import time\n"
        "def slow_write(db):\n"
        "    with db.latches.write_latch('t'):\n"
        "        helper()\n"
        "def helper():\n"
        "    time.sleep(0.1)\n")
    sites = analysis.blocking_under_exclusive()
    assert len(sites) == 1
    info, name, _line, _col, cls, chain = sites[0]
    assert info.qualname == "slow_write"
    assert name == "helper"
    assert cls in ("db", "table")
    assert any("helper" in hop for hop in chain)


def test_program_analysis_skips_reacquisition_edges():
    # helper re-takes latch classes the caller already holds: that is a
    # re-entrancy question (RL002), not an ordering edge — no
    # table -> catalog back-edge, no cycle.
    analysis = _program(
        "def outer(db):\n"
        "    with db.latches.write_latch('t'):\n"
        "        helper(db)\n"
        "def helper(db):\n"
        "    with db.latches.write_latch('t'):\n"
        "        pass\n")
    graph = analysis.lock_graph
    assert ("table", "catalog") not in graph.edges
    assert ("table", "db") not in graph.edges
    assert graph.cycles() == []


def test_checked_in_lock_graph_matches_tree():
    files = collect_files([SRC_TREE], root=REPO_ROOT)
    analysis = ProgramLockAnalysis(files, CallGraph.build(files))
    computed = analysis.lock_graph.to_json_dict()
    assert computed["order"], "the real tree's lock graph must be acyclic"
    assert load_lock_graph(default_lock_graph_path()) == computed


def test_rl004_reports_stale_graph_for_divergent_engine(tmp_path):
    # A tree containing engine/latches.py triggers the drift check; its
    # (empty) computed graph cannot match the checked-in one.
    engine = tmp_path / "engine"
    engine.mkdir()
    (engine / "latches.py").write_text("def noop():\n    return None\n")
    findings = lint_paths([str(tmp_path)], root=str(tmp_path))
    assert [finding.rule for finding in findings] == ["RL004"]
    assert "stale" in findings[0].message
    assert "--write-lock-graph" in findings[0].message


# -- CLI: baseline, changed, lock graph -------------------------------------

def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


def test_cli_baseline_round_trip(tmp_path):
    baseline = str(tmp_path / "baseline.json")
    proc = _run_cli(FIXTURES, "--write-baseline", baseline)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    recorded = json.loads(open(baseline, encoding="utf-8").read())
    assert recorded["entries"]
    proc = _run_cli(FIXTURES, "--baseline", baseline, "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["count"] == 0


def test_cli_malformed_baseline_exit_two(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all {")
    proc = _run_cli(FIXTURES, "--baseline", str(bad))
    assert proc.returncode == 2
    assert "cannot load baseline" in proc.stderr


def test_cli_changed_mode(tmp_path):
    subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
    proc = _run_cli("--changed", cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
    (tmp_path / "udf.py").write_text(
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v)\n")
    proc = _run_cli("--changed", cwd=str(tmp_path))
    assert proc.returncode == 1
    assert "RP101" in proc.stdout


def test_cli_write_lock_graph_refuses_cycle():
    before = open(default_lock_graph_path(), encoding="utf-8").read()
    proc = _run_cli(
        "--write-lock-graph",
        os.path.join("tests", "analysis", "fixtures",
                     "rl004_lock_cycle.py"))
    assert proc.returncode == 1
    assert "cycle" in proc.stderr
    assert open(default_lock_graph_path(), encoding="utf-8").read() == before


def test_cli_write_lock_graph_is_fresh():
    # Regenerating over the real tree must reproduce the checked-in
    # file byte-for-byte — i.e. lock_graph.json is not stale.
    before = open(default_lock_graph_path(), encoding="utf-8").read()
    proc = _run_cli("--write-lock-graph", os.path.join("src", "repro"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert open(default_lock_graph_path(), encoding="utf-8").read() == before
