"""replint self-tests: framework behavior, fixtures, and the real tree."""

import json
import os
import re
import subprocess
import sys

import pytest

from repro.analysis import ALL_RULES, lint_paths, render_human, render_json
from repro.analysis.framework import (
    Finding,
    LintContext,
    SourceFile,
    collect_files,
    run_rules,
)
from repro.analysis.rules_wire import extract_schema

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_TREE = os.path.join(REPO_ROOT, "src", "repro")

_RULE_PREFIX = re.compile(r"^(r[a-z]\d{3})")


def _discover_expected():
    """Auto-discover the fixture matrix: every ``.py`` under fixtures/
    is one seeded violation whose rule code is the ``rXNNN`` prefix of
    its filename (or, for fixtures that need a package layout such as
    ``rw301/`` and ``rs401/``, of the nearest named ancestor
    directory).  New fixtures join the matrix just by being named
    right — no hand-maintained table to forget to update."""
    expected = {}
    for dirpath, dirnames, filenames in os.walk(FIXTURES):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, filename), FIXTURES)
            parts = rel.split(os.sep)
            for part in (filename, *reversed(parts[:-1])):
                match = _RULE_PREFIX.match(part)
                if match:
                    expected[rel] = match.group(1).upper()
                    break
            else:
                raise AssertionError(
                    f"fixture {rel} has no rXNNN rule prefix in its "
                    "filename or directory path")
    return expected


EXPECTED = _discover_expected()


def test_fixture_matrix_discovered():
    # The matrix is derived from the tree; make a silent discovery
    # regression (empty dir, renamed fixtures) loud.
    assert len(EXPECTED) >= 16
    assert set(EXPECTED.values()) >= {
        "RC601", "RL001", "RL002", "RL003", "RL004", "RL005",
        "RM501", "RP101", "RS401", "RV201", "RW301",
    }


def lint_fixture(relpath):
    return lint_paths([os.path.join(FIXTURES, relpath)], root=FIXTURES)


# -- fixtures: one seeded violation each, exactly its own rule -------------

@pytest.mark.parametrize("relpath,rule", sorted(EXPECTED.items()))
def test_fixture_triggers_exactly_its_rule(relpath, rule):
    findings = lint_fixture(relpath)
    assert len(findings) == 1, findings
    assert findings[0].rule == rule


@pytest.mark.parametrize("relpath,rule", sorted(EXPECTED.items()))
def test_fixture_triggers_no_other_rule(relpath, rule):
    other_rules = [r for r in ALL_RULES if r.code != rule]
    findings = lint_paths(
        [os.path.join(FIXTURES, relpath)], rules=other_rules, root=FIXTURES
    )
    assert findings == []


def test_fixture_directory_as_a_whole():
    findings = lint_paths([FIXTURES], root=FIXTURES)
    assert sorted(f.rule for f in findings) == sorted(EXPECTED.values())


def test_rl004_fixture_reports_both_witness_paths():
    findings = lint_fixture("rl004_lock_cycle.py")
    message = findings[0].message
    assert "[mutex:PagePoolA -> mutex:PagePoolB] PagePoolA.ship" in message
    assert "[mutex:PagePoolB -> mutex:PagePoolA] PagePoolB.drain" in message


def test_rl005_fixture_names_call_and_latch():
    findings = lint_fixture("rl005_sleep_under_latch.py")
    assert findings[0].severity == "warn"
    assert "sleep()" in findings[0].message
    assert "exclusive 'table' latch" in findings[0].message


def test_rc601_exception_path_fixture():
    # The unpin is in a finally — a lexical balance scan is satisfied —
    # but the leak on the pre-try exception path is still caught.
    findings = lint_fixture("rc601_exception_leak.py")
    assert "when an exception unwinds past it" in findings[0].message


# -- the real tree lints clean ---------------------------------------------

def test_real_tree_is_clean():
    findings = lint_paths([SRC_TREE], root=REPO_ROOT)
    assert findings == [], render_human(findings)


# -- suppressions ----------------------------------------------------------

def _lint_texts(tmp_path, texts):
    paths = []
    for name, text in texts.items():
        path = tmp_path / name
        path.write_text(text)
        paths.append(str(path))
    return lint_paths(paths, root=str(tmp_path))


def test_line_suppression(tmp_path):
    text = (
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v)"
        "  # replint: disable=RP101\n"
    )
    assert _lint_texts(tmp_path, {"sup.py": text}) == []


def test_line_suppression_all(tmp_path):
    text = (
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v)"
        "  # replint: disable=all\n"
    )
    assert _lint_texts(tmp_path, {"sup.py": text}) == []


def test_file_suppression(tmp_path):
    text = (
        "# replint: disable-file=RP101\n"
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v)\n"
    )
    assert _lint_texts(tmp_path, {"sup.py": text}) == []


def test_wrong_rule_suppression_does_not_hide(tmp_path):
    text = (
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v)"
        "  # replint: disable=RV201\n"
    )
    findings = _lint_texts(tmp_path, {"sup.py": text})
    assert [f.rule for f in findings] == ["RP101"]


# -- framework mechanics ---------------------------------------------------

def test_parse_error_reports_finding(tmp_path):
    findings = _lint_texts(tmp_path, {"bad.py": "def broken(:\n"})
    assert [f.rule for f in findings] == ["PARSE"]


def test_json_output_roundtrips():
    findings = [
        Finding(rule="RL001", path="a.py", line=3, message="m"),
    ]
    payload = json.loads(render_json(findings))
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "RL001"


def test_findings_sorted_and_deduped_paths(tmp_path):
    texts = {
        "b.py": "def f(session):\n"
                "    session.register_function('x', lambda v: v)\n",
        "a.py": "def g(session):\n"
                "    session.register_function('y', lambda v: v)\n",
    }
    findings = _lint_texts(tmp_path, texts)
    assert [os.path.basename(f.path) for f in findings] == ["a.py", "b.py"]


def test_parallel_safe_false_exempts(tmp_path):
    text = (
        "def install(session):\n"
        "    session.register_function('dbo.F', lambda v: v,\n"
        "                              parallel_safe=False)\n"
    )
    assert _lint_texts(tmp_path, {"ok.py": text}) == []


def test_rv201_out_kwarg_flagged(tmp_path):
    text = (
        "import numpy as np\n"
        "def add_kernel(args):\n"
        "    return np.add(args[0], args[1], out=args[0]), None\n"
    )
    findings = _lint_texts(tmp_path, {"k.py": text})
    assert [f.rule for f in findings] == ["RV201"]


def test_rv201_returning_input_flagged(tmp_path):
    text = (
        "def passthrough_kernel(args):\n"
        "    return args[0]\n"
    )
    findings = _lint_texts(tmp_path, {"k.py": text})
    assert [f.rule for f in findings] == ["RV201"]


def test_rv201_fresh_kernel_clean(tmp_path):
    text = (
        "import numpy as np\n"
        "def scale_kernel(args):\n"
        "    out = np.empty(len(args[0]))\n"
        "    np.multiply(args[0], 2.0, out=out)\n"
        "    return out\n"
    )
    assert _lint_texts(tmp_path, {"k.py": text}) == []


def test_rl002_reentrant_flagged(tmp_path):
    text = (
        "def statement(db):\n"
        "    with db.lock.write_lock():\n"
        "        with db.lock.read_lock():\n"
        "            return 1\n"
    )
    findings = _lint_texts(tmp_path, {"l.py": text})
    assert [f.rule for f in findings] == ["RL002"]


def test_rl002_latch_through_call_flagged(tmp_path):
    # A helper that takes its own latch, called while one is held:
    # the nested acquisition is reached through the call graph, not
    # lexically.
    text = (
        "from contextlib import contextmanager\n"
        "class LatchStub:\n"
        "    @contextmanager\n"
        "    def write_latch(self, *tables):\n"
        "        yield self\n"
        "def refresh(latches):\n"
        "    with latches.write_latch('aux'):\n"
        "        return 1\n"
        "def statement(latches):\n"
        "    with latches.write_latch('main'):\n"
        "        return refresh(latches)\n"
    )
    findings = _lint_texts(tmp_path, {"l.py": text})
    assert [f.rule for f in findings] == ["RL002"]
    assert "another latch" in findings[0].message


def test_rl001_latch_guarded_entry_clean(tmp_path):
    # A SqlSession entry point reaching a sink through a table-latch
    # guard satisfies RL001 just like the legacy db.lock guard does.
    text = (
        "class BufferPool:\n"
        "    def fetch(self, page_id):\n"
        "        return page_id\n"
        "class SqlSession:\n"
        "    def __init__(self, db):\n"
        "        self.db = db\n"
        "    def peek_page(self, page_id):\n"
        "        with self.db.latches.read_latch('t'):\n"
        "            return self.db.pool.fetch(page_id)\n"
    )
    assert _lint_texts(tmp_path, {"s.py": text}) == []


def test_rl001_unlatched_entry_flagged(tmp_path):
    # Same shape without the guard: RL001 fires.
    text = (
        "class BufferPool:\n"
        "    def fetch(self, page_id):\n"
        "        return page_id\n"
        "class SqlSession:\n"
        "    def __init__(self, db):\n"
        "        self.db = db\n"
        "    def peek_page(self, page_id):\n"
        "        return self.db.pool.fetch(page_id)\n"
    )
    findings = _lint_texts(tmp_path, {"s.py": text})
    assert [f.rule for f in findings] == ["RL001"]


def test_rl001_guarded_entry_clean(tmp_path):
    text = (
        "class BufferPool:\n"
        "    def fetch(self, page_id):\n"
        "        return page_id\n"
        "class SqlSession:\n"
        "    def __init__(self, db):\n"
        "        self.db = db\n"
        "    def peek_page(self, page_id):\n"
        "        with self.db.lock.read_lock():\n"
        "            return self.db.pool.fetch(page_id)\n"
    )
    assert _lint_texts(tmp_path, {"s.py": text}) == []


# -- severity tiers --------------------------------------------------------

def test_rule_severities():
    by_code = {rule.code: rule.severity for rule in ALL_RULES}
    assert by_code["RL003"] == "warn"
    assert by_code["RC601"] == "error"
    assert all(sev in ("error", "warn") for sev in by_code.values())


def test_findings_stamped_with_rule_severity():
    findings = lint_fixture("rl003_yield_under_latch.py")
    assert [f.severity for f in findings] == ["warn"]
    findings = lint_fixture("rc601_unbalanced_pin.py")
    assert [f.severity for f in findings] == ["error"]


def test_render_human_severity_summary():
    findings = lint_paths(
        [os.path.join(FIXTURES, "rl003_yield_under_latch.py"),
         os.path.join(FIXTURES, "rc601_unbalanced_pin.py")],
        root=FIXTURES,
    )
    text = render_human(findings)
    assert "[warn]" in text
    assert "(1 error(s), 1 warning(s))" in text


def test_json_includes_severity():
    findings = lint_fixture("rl003_yield_under_latch.py")
    payload = json.loads(render_json(findings))
    assert payload["errors"] == 0
    assert payload["findings"][0]["severity"] == "warn"


def test_cli_warning_only_exit_zero():
    proc = _run_cli(
        os.path.join(FIXTURES, "rl003_yield_under_latch.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "RL003" in proc.stdout


def test_cli_error_fixture_exit_one():
    proc = _run_cli(
        os.path.join(FIXTURES, "rc601_unbalanced_pin.py"))
    assert proc.returncode == 1


# -- RL003 / RC601 mechanics ------------------------------------------------

def test_rl003_contextmanager_exempt(tmp_path):
    text = (
        "from contextlib import contextmanager\n"
        "@contextmanager\n"
        "def guard(db):\n"
        "    with db.latches.read_latch('t'):\n"
        "        yield db\n"
    )
    assert _lint_texts(tmp_path, {"g.py": text}) == []


def test_rl003_yield_outside_guard_clean(tmp_path):
    text = (
        "def scan(db, table):\n"
        "    with db.latches.read_latch(table):\n"
        "        rows = list(range(3))\n"
        "    for row in rows:\n"
        "        yield row\n"
    )
    assert _lint_texts(tmp_path, {"g.py": text}) == []


def test_rc601_finally_unpin_clean(tmp_path):
    text = (
        "def scan(table, pool):\n"
        "    snap = table.pin_snapshot()\n"
        "    try:\n"
        "        return list(snap.scan())\n"
        "    finally:\n"
        "        snap.unpin(pool)\n"
    )
    assert _lint_texts(tmp_path, {"s.py": text}) == []


def test_rc601_context_manager_clean(tmp_path):
    text = (
        "def scan(table):\n"
        "    with table.pin_snapshot() as snap:\n"
        "        return list(snap.scan())\n"
        "def scan2(table):\n"
        "    snap = table.pin_snapshot()\n"
        "    with snap:\n"
        "        return list(snap.scan())\n"
    )
    assert _lint_texts(tmp_path, {"s.py": text}) == []


def test_rc601_ownership_transfer_clean(tmp_path):
    text = (
        "def pin(table):\n"
        "    snap = table.pin_snapshot()\n"
        "    return snap\n"
    )
    assert _lint_texts(tmp_path, {"s.py": text}) == []


def test_rc601_derived_return_still_flagged(tmp_path):
    text = (
        "def rows(table):\n"
        "    snap = table.pin_snapshot()\n"
        "    return list(snap.scan())\n"
    )
    findings = _lint_texts(tmp_path, {"s.py": text})
    assert [f.rule for f in findings] == ["RC601"]


def test_rc601_begin_write_unpaired_flagged(tmp_path):
    text = (
        "def mutate(tree, key, payload):\n"
        "    tree.begin_write(2)\n"
        "    tree.insert(key, payload)\n"
        "    tree.end_write()\n"
    )
    findings = _lint_texts(tmp_path, {"w.py": text})
    assert [f.rule for f in findings] == ["RC601"]
    assert "end_write" in findings[0].message


def test_rc601_begin_write_finally_clean(tmp_path):
    text = (
        "def mutate(tree, key, payload):\n"
        "    tree.begin_write(2)\n"
        "    try:\n"
        "        tree.insert(key, payload)\n"
        "    finally:\n"
        "        cow = tree.end_write()\n"
        "    return cow\n"
    )
    assert _lint_texts(tmp_path, {"w.py": text}) == []


# -- schema extraction -----------------------------------------------------

def test_extract_schema_matches_checked_in_file():
    import ast

    protocol_path = os.path.join(SRC_TREE, "server", "protocol.py")
    schema_path = os.path.join(SRC_TREE, "server", "protocol_schema.json")
    with open(protocol_path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    with open(schema_path, encoding="utf-8") as handle:
        frozen = json.load(handle)
    assert extract_schema(tree) == frozen


# -- CLI -------------------------------------------------------------------

def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


def test_cli_clean_tree_exit_zero():
    proc = _run_cli(os.path.join("src", "repro"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_fixture_exit_one_json():
    proc = _run_cli(FIXTURES, "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == len(EXPECTED)


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule in ALL_RULES:
        assert rule.code in proc.stdout


def test_cli_unknown_rule_exit_two():
    proc = _run_cli("--rules", "NOPE")
    assert proc.returncode == 2


def test_cli_rule_filter():
    proc = _run_cli(FIXTURES, "--rules", "RP101", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert [f["rule"] for f in payload["findings"]] == ["RP101"]


def test_repro_lint_subcommand():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", os.path.join("src", "repro")],
        capture_output=True, text=True, cwd=REPO_ROOT, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_collect_files_skips_pycache(tmp_path):
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text("def f(session):\n"
                                   "    session.register_function('x', lambda v: v)\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    files = collect_files([str(tmp_path)], root=str(tmp_path))
    assert [f.basename for f in files] == ["ok.py"]


def test_run_rules_with_explicit_context(tmp_path):
    (tmp_path / "m.py").write_text("x = 1\n")
    files = collect_files([str(tmp_path)], root=str(tmp_path))
    ctx = LintContext(str(tmp_path))
    assert run_rules(files, ALL_RULES, ctx) == []


def test_source_file_suppression_table():
    source = SourceFile(
        "/virtual/x.py",
        "a = 1  # replint: disable=RL001,RL002\n"
        "# replint: disable-file=RW301\n",
    )
    assert source.is_suppressed("RL001", 1)
    assert source.is_suppressed("RL002", 1)
    assert not source.is_suppressed("RL001", 2)
    assert source.is_suppressed("RW301", 99)
