"""Wire-protocol documentation drift: every error code, frame type, and
protocol constant in ``repro.server.protocol`` must be documented in
``docs/SERVER.md`` and frozen in ``protocol_schema.json``.

This is the standalone CI guard the lint job runs even when replint itself
changes; RW301 enforces the same contract inside ``repro lint``.
"""

import ast
import json
import os
import re

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
PROTOCOL = os.path.join(REPO_ROOT, "src", "repro", "server", "protocol.py")
SCHEMA = os.path.join(REPO_ROOT, "src", "repro", "server",
                      "protocol_schema.json")
SERVER_MD = os.path.join(REPO_ROOT, "docs", "SERVER.md")


def _protocol_error_codes():
    with open(PROTOCOL, encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    codes = []
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and re.match(r"^[A-Z][A-Z_]+$", node.targets[0].id)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
                and node.value.value.isupper()):
            codes.append(node.value.value)
    return codes


def test_every_error_code_documented_in_server_md():
    with open(SERVER_MD, encoding="utf-8") as handle:
        docs = handle.read()
    codes = _protocol_error_codes()
    assert codes, "no error codes extracted from protocol.py"
    missing = [code for code in codes if code not in docs]
    assert not missing, f"undocumented error codes: {missing}"


def test_every_error_code_frozen_in_schema():
    with open(SCHEMA, encoding="utf-8") as handle:
        frozen = json.load(handle)
    assert sorted(set(_protocol_error_codes())) == frozen["error_codes"]


def test_replint_wire_rule_passes_on_tree():
    from repro.analysis import lint_paths
    from repro.analysis.rules_wire import WireSchemaRule

    findings = lint_paths(
        [os.path.join(REPO_ROOT, "src", "repro", "server")],
        rules=[WireSchemaRule()],
        root=REPO_ROOT,
    )
    assert findings == [], [f.render() for f in findings]
