"""Sharded data plane: coordinator plan cache, pipelined statements
through the coordinator, and bquery streams relayed chunk-at-a-time
from the owning shard without re-buffering the slice."""

import numpy as np
import pytest

from repro.core import SqlArray
from repro.server import ArrayClient, ServerError, protocol
from repro.server.server import ServerConfig, ServerThread
from repro.shard import ShardConfig, ShardFleet, ShardRouter, ShardServer

KEY_HI = 100
ARR_SHAPE = (30, 20)
BLOB_IDS = (5, 60)

CREATE = "CREATE TABLE tb (id BIGINT PRIMARY KEY, m VARBINARY(MAX))"


def make_blob_array(blob_id: int) -> np.ndarray:
    rng = np.random.default_rng(300 + blob_id)
    return rng.random(ARR_SHAPE)


@pytest.fixture(scope="module")
def cluster():
    config = ShardConfig(shards=2, key_lo=0, key_hi=KEY_HI)
    with ShardFleet(config) as fleet:
        router = ShardRouter(fleet.addresses,
                             config.make_partitioner())
        router.execute(CREATE)
        rows = [(i, SqlArray.from_numpy(make_blob_array(i)).to_blob())
                for i in BLOB_IDS]
        assert router.insert_rows("tb", rows) == len(rows)
        coordinator = ShardServer(router, ServerConfig(
            name="coord-dataplane"))
        with ServerThread(server=coordinator) as handle:
            yield {"router": router, "port": handle.port}


@pytest.fixture
def client(cluster):
    with ArrayClient("127.0.0.1", cluster["port"]) as c:
        yield c


def blob_sql(blob_id: int) -> str:
    return f"SELECT MAX(m) FROM tb WHERE id = {blob_id}"


class TestCoordinatorPlanCache:
    def test_prepare_through_coordinator(self, client):
        info = client.prepare(blob_sql(60))
        assert info == {"kind": "point", "table": "tb"}

    def test_plan_cache_hits_and_ddl_invalidation(self, cluster,
                                                  client):
        router = cluster["router"]
        client.prepare(blob_sql(5))
        assert blob_sql(5) in router._plan_cache
        plan = router._plan_cache[blob_sql(5)]
        # Re-preparing returns the cached object, not a re-plan.
        assert router.prepare(blob_sql(5)) is plan
        # DDL clears the cache (new tables can shadow plans).
        router.execute("CREATE TABLE tddl "
                       "(id BIGINT PRIMARY KEY, x FLOAT)")
        assert router._plan_cache == {}

    def test_data_writes_leave_plans_cached(self, cluster, client):
        router = cluster["router"]
        router.prepare("SELECT COUNT(*) FROM tb")
        router.execute("INSERT INTO tb VALUES (7, NULL)")
        try:
            assert "SELECT COUNT(*) FROM tb" in router._plan_cache
        finally:
            router.execute("DELETE FROM tb WHERE id = 7")


class TestShardPipeline:
    def test_pipeline_through_coordinator(self, client):
        results = client.query_pipeline(
            ["SELECT COUNT(*) FROM tb"] * 3)
        assert [r.scalar() for r in results] == [len(BLOB_IDS)] * 3

    def test_pipeline_error_slot(self, client):
        results = client.query_pipeline(
            ["SELECT COUNT(*) FROM tb",
             "SELECT FROM nowhere",
             "SELECT COUNT(*) FROM tb"],
            return_exceptions=True)
        assert results[0].scalar() == len(BLOB_IDS)
        assert isinstance(results[1], ServerError)
        assert results[2].scalar() == len(BLOB_IDS)

    def test_pipeline_counts_in_stats(self, client):
        before = client.stats()["pipeline"]
        client.query_pipeline(["SELECT COUNT(*) FROM tb"] * 4)
        after = client.stats()["pipeline"]
        assert after["statements"] >= before["statements"] + 4


class TestShardBquery:
    def test_relayed_slice_bit_identical(self, client):
        full = client.query(blob_sql(60)).scalar()
        result = client.query_blob(blob_sql(60), offset=64,
                                   length=512, chunk_bytes=128)
        assert result.data == bytes(full)[64:576]
        assert result.chunks == 4
        assert result.blob_len == len(full)

    def test_relayed_full_read(self, client):
        full = client.query(blob_sql(5)).scalar()
        result = client.query_blob(blob_sql(5))
        assert result.data == bytes(full)

    def test_relayed_window(self, client):
        arr = make_blob_array(5)
        got = client.query_array(blob_sql(5), slice=((2, 3), (4, 5)))
        np.testing.assert_array_equal(got, arr[2:6, 3:8])

    def test_scatter_bquery_rejected(self, client):
        """bquery needs exactly one owning shard: a non-point SELECT
        has no single owner and must fail cleanly."""
        with pytest.raises(ServerError) as err:
            client.query_blob("SELECT MAX(m) FROM tb", length=4)
        assert err.value.code == protocol.BAD_FRAME
        # Coordinator connection survives the rejection.
        assert client.query("SELECT COUNT(*) FROM tb").scalar() == \
            len(BLOB_IDS)

    def test_out_of_range_slice_relays_shard_error(self, client):
        blob_len = len(bytes(client.query(blob_sql(5)).scalar()))
        with pytest.raises(ServerError) as err:
            client.query_blob(blob_sql(5), offset=blob_len + 1)
        assert err.value.code == protocol.BAD_FRAME

    def test_bquery_counts_in_coordinator_stats(self, client):
        before = client.stats()["bquery"]
        client.query_blob(blob_sql(60), offset=0, length=256)
        after = client.stats()["bquery"]
        assert after["streams"] == before["streams"] + 1
        assert after["payload_bytes"] >= before["payload_bytes"] + 256
