"""Shared helpers for the sharded-backend test suite.

Cluster startup spawns real OS processes, so fixtures are
module-scoped and the data sets stay small.  ``setup_udfs`` must be a
module-level function: it is pickled into the spawn-context shard
processes.
"""

import struct

from repro.engine import Column, Database
from repro.engine.sqlfront import SqlSession

ROWS = 3000
KEY_HI = ROWS


def scale_udf(v):
    """A deterministic float UDF exercised through the shard path."""
    return (v or 0.0) * 1.5 + 0.25


def setup_udfs(session):
    session.register_function("dbo.Scale", scale_udf)


def make_rows(n=ROWS):
    """Deterministic rows with negatives, NULLs and repeated groups —
    enough texture that a wrong merge order shows up in float bits."""
    rows = []
    for i in range(n):
        v = None if i % 37 == 0 else (i % 211) * 0.37 - 31.0
        rows.append((i, v, i % 13))
    return rows


def make_reference(rows):
    """A single-node session holding the same data and UDFs — the
    bit-for-bit oracle every cluster answer is compared against."""
    db = Database()
    session = SqlSession(db)
    setup_udfs(session)
    db.create_table("t", [Column("id", "bigint"), Column("v", "float"),
                          Column("g", "int")])
    table = session._resolve_table("t")
    table.insert_many(rows)
    return session


def bits(rows):
    """Rows with floats replaced by their IEEE-754 bit patterns, so
    equality is bitwise, not approximate."""
    return [tuple(struct.pack(">d", c).hex() if isinstance(c, float)
                  else c for c in row)
            for row in rows]


def normalize(result):
    """Local ``SqlSession.query`` row payloads as a list of tuples."""
    values = result[0] if isinstance(result, tuple) else result
    if isinstance(values, list):
        return [tuple(r) for r in values]
    return [tuple(values)]
