"""Sharded execution is bit-identical to single-node execution.

Every query here runs twice: once on a plain single-node
``SqlSession`` over the full data set, once against a cluster of
1 / 2 / 4 shard processes — and the answers are compared down to the
IEEE-754 bit patterns of every float, because the coordinator's
shard-order merge must replay the exact serial fold, not an
approximation of it.
"""

import random

import pytest

from repro.server.server import ServerConfig, ServerThread
from repro.shard import (ShardClient, ShardConfig, ShardFleet,
                         ShardRouter, ShardServer)

from .conftest import (KEY_HI, ROWS, bits, make_reference, make_rows,
                       normalize, setup_udfs)

CREATE = ("CREATE TABLE t (id BIGINT PRIMARY KEY, v FLOAT, g INT)")

FIXED_QUERIES = [
    "SELECT SUM(v), AVG(v), COUNT(*), MIN(v), MAX(v) FROM t",
    "SELECT SUM(v), COUNT(*) FROM t WHERE v > 0.0",
    "SELECT COUNT(*), SUM(v), AVG(v) FROM t WHERE id >= 500 AND id < 1700",
    "SELECT SUM(v), COUNT(*) FROM t WHERE id = 123",
    "SELECT SUM(v) FROM t WHERE id = 2999",
    "SELECT COUNT(*) FROM t WHERE id = 999999",
    "SELECT g, SUM(v), AVG(v), COUNT(*) FROM t GROUP BY g",
    "SELECT g, MIN(v), MAX(v) FROM t WHERE v IS NOT NULL GROUP BY g",
    "SELECT SUM(dbo.Scale(v)), AVG(dbo.Scale(v)) FROM t",
    "SELECT g, SUM(dbo.Scale(v)) FROM t GROUP BY g",
]


def random_queries(n=8, seed=20260808):
    rng = random.Random(seed)
    aggs = ["SUM(v)", "AVG(v)", "COUNT(*)", "MIN(v)", "MAX(v)",
            "SUM(dbo.Scale(v))"]
    out = []
    for _ in range(n):
        picked = ", ".join(rng.sample(aggs, rng.randint(1, 3)))
        shape = rng.randrange(4)
        if shape == 0:
            lo = rng.randrange(0, ROWS)
            hi = rng.randrange(lo, ROWS + 1)
            out.append(f"SELECT {picked} FROM t "
                       f"WHERE id >= {lo} AND id < {hi}")
        elif shape == 1:
            cut = rng.uniform(-35.0, 50.0)
            out.append(f"SELECT {picked} FROM t WHERE v < {cut!r}")
        elif shape == 2:
            out.append(f"SELECT g, {picked} FROM t GROUP BY g")
        else:
            out.append(f"SELECT {picked} FROM t")
    return out


ALL_QUERIES = FIXED_QUERIES + random_queries()


@pytest.fixture(scope="module")
def reference():
    return make_reference(make_rows())


@pytest.fixture(scope="module", params=[1, 2, 4],
                ids=lambda n: f"shards{n}")
def cluster(request):
    """A live cluster: fleet + router + coordinator + client."""
    shards = request.param
    config = ShardConfig(shards=shards, key_lo=0, key_hi=KEY_HI)
    with ShardFleet(config, session_setup=setup_udfs) as fleet:
        router = ShardRouter(fleet.addresses, config.make_partitioner(),
                             session_setup=setup_udfs)
        router.execute(CREATE)
        assert router.insert_rows("t", make_rows()) == ROWS
        coordinator = ShardServer(router, ServerConfig(
            name=f"coord-{shards}"))
        with ServerThread(server=coordinator) as handle:
            with ShardClient("127.0.0.1", handle.port) as client:
                yield {"shards": shards, "router": router,
                       "client": client}


@pytest.mark.parametrize("sql", ALL_QUERIES)
def test_router_matches_single_node_bitwise(cluster, reference, sql):
    want = normalize(reference.query(sql))
    got = cluster["router"].execute(sql)
    assert bits([tuple(r) for r in got["rows"]]) == bits(want)


@pytest.mark.parametrize("sql", [
    FIXED_QUERIES[0], FIXED_QUERIES[6], FIXED_QUERIES[9],
])
def test_client_through_coordinator_matches_bitwise(cluster, reference,
                                                    sql):
    want = normalize(reference.query(sql))
    result = cluster["client"].query(sql)
    assert bits([tuple(r) for r in result.rows]) == bits(want)


def test_merged_metrics_are_sane(cluster, reference):
    sql = "SELECT SUM(v), COUNT(*) FROM t"
    _, ref_metrics = reference.query(sql)
    result = cluster["client"].query(sql)
    metrics = result.metrics
    assert metrics["engine"] == "sharded"
    assert metrics["workers"] == cluster["shards"]
    # The shards together scan exactly the rows one node scans.
    assert metrics["rows"] == ref_metrics.rows
    assert metrics["io_bytes"] > 0
    assert metrics["physical_reads"] > 0
    assert metrics["sim_exec_seconds"] > 0.0
    assert result.elapsed_seconds >= 0.0


def test_shard_count_surfaces_in_stats(cluster):
    client = cluster["client"]
    assert client.shard_count() == cluster["shards"]
    stats = client.stats()
    assert len(stats["shards"]["addresses"]) == cluster["shards"]


def test_point_delete_routes_and_deletes(cluster, reference):
    router = cluster["router"]
    out = router.execute("DELETE FROM t WHERE id = 1500")
    assert out["rowcount"] == 1
    got = router.execute("SELECT COUNT(*) FROM t")
    assert got["rows"][0][0] == ROWS - 1
    # Put the row back so later parametrizations see the full table.
    row = next(r for r in make_rows() if r[0] == 1500)
    assert router.insert_rows("t", [row]) == 1
    got = router.execute("SELECT COUNT(*) FROM t")
    assert got["rows"][0][0] == ROWS


def test_sql_insert_through_router(cluster):
    router = cluster["router"]
    out = router.execute(
        "INSERT INTO t VALUES (900001, 1.25, 3), (900002, -2.5, 4)")
    assert out["rowcount"] == 2
    got = router.execute(
        "SELECT COUNT(*), SUM(v) FROM t WHERE id >= 900001")
    assert got["rows"][0][0] == 2
    assert got["rows"][0][1] == -1.25
    out = router.execute("DELETE FROM t WHERE id = 900001")
    assert out["rowcount"] == 1
    out = router.execute("DELETE FROM t WHERE id = 900002")
    assert out["rowcount"] == 1
