"""A dead shard is a typed error, never a hang.

One shard is SIGKILLed mid-workload; statements that need it must
fail with ``SHARD_UNAVAILABLE`` within the bounded retry budget, the
client's coordinator connection must survive, and statements routed
entirely to live shards must keep working.
"""

import time

import pytest

from repro.server import RetryPolicy, ShardUnavailableError, protocol
from repro.server.server import ServerConfig, ServerThread
from repro.shard import (ShardClient, ShardConfig, ShardFleet,
                         ShardRouter, ShardServer)

from .conftest import KEY_HI, ROWS, make_rows, setup_udfs

CREATE = "CREATE TABLE t (id BIGINT PRIMARY KEY, v FLOAT, g INT)"


@pytest.fixture(scope="module")
def wounded():
    """A 2-shard cluster whose second shard gets killed mid-module.

    ``kill_shard`` takes down the *whole* replica set, so these tests
    hold under ``REPRO_SHARD_REPLICAS`` too: replica failover can mask
    a single corpse, never a fully dead shard.
    """
    config = ShardConfig(shards=2, key_lo=0, key_hi=KEY_HI)
    with ShardFleet(config, session_setup=setup_udfs) as fleet:
        router = ShardRouter(
            fleet.addresses, config.make_partitioner(),
            retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                              backoff_cap=0.05),
            connect_timeout=2.0, request_timeout=5.0,
            session_setup=setup_udfs)
        router.execute(CREATE)
        assert router.insert_rows("t", make_rows()) == ROWS
        coordinator = ShardServer(router, ServerConfig(name="coord"))
        with ServerThread(server=coordinator) as handle:
            with ShardClient("127.0.0.1", handle.port) as client:
                # Sanity before the injection: the cluster answers.
                assert client.query(
                    "SELECT COUNT(*) FROM t").rows[0][0] == ROWS
                fleet.kill_shard(1)
                yield {"fleet": fleet, "client": client,
                       "router": router}


def test_scan_needing_dead_shard_fails_typed_and_bounded(wounded):
    t0 = time.monotonic()
    with pytest.raises(ShardUnavailableError) as excinfo:
        wounded["client"].query("SELECT SUM(v), COUNT(*) FROM t")
    elapsed = time.monotonic() - t0
    assert elapsed < 20.0, "shard failure must not stall the client"
    assert "shard 1" in str(excinfo.value)


def test_connection_survives_the_failure(wounded):
    client = wounded["client"]
    with pytest.raises(ShardUnavailableError):
        client.query("SELECT COUNT(*) FROM t")
    client.ping()
    stats = client.stats()
    assert stats["shards"]["count"] == 2


def test_statements_on_live_shards_keep_working(wounded):
    client = wounded["client"]
    # Key 100 lives in shard 0's interval [0, 1500): a point statement
    # never touches the corpse.
    result = client.query("SELECT SUM(v), COUNT(*) FROM t WHERE id = 100")
    assert result.rows[0][1] == 1
    # So does a key-range statement entirely inside shard 0.
    result = client.query(
        "SELECT COUNT(*) FROM t WHERE id >= 0 AND id < 1000")
    assert result.rows[0][0] == 1000


def test_fleet_reports_the_corpse(wounded):
    alive = wounded["fleet"].alive()
    assert all(alive[0]), "shard 0's replicas must all be up"
    assert not any(alive[1]), "shard 1's replicas must all be dead"


def test_insert_into_dead_shard_fails_typed(wounded):
    # Called in-process (no coordinator server in between), the router
    # raises the server-side typed error carrying the same code the
    # wire would.
    with pytest.raises(protocol.WireError) as excinfo:
        wounded["router"].insert_rows("t", [(2900, 1.0, 0)])
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    # Nothing committed anywhere: the partial-progress report says so.
    assert excinfo.value.detail == {
        "applied": {}, "applied_shards": [], "failed_shards": [1],
        "partial_rowcount": 0}
    # The live shard still accepts keys it owns (-1 routes to the
    # first interval).
    assert wounded["router"].insert_rows("t", [(-1, 0.5, 0)]) == 1
