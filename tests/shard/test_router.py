"""Unit tests for the shard layer's pure pieces: partitioners,
partial-state packing, routing decisions, and metric merging — no
processes spawned."""

import pytest

from repro.engine import Column, Database
from repro.engine.metrics import QueryMetrics
from repro.engine.sqlfront import SqlSession
from repro.server import protocol
from repro.shard import (HashPartitioner, RangePartitioner, ShardConfig,
                         ShardRouter)
from repro.shard.merge import merge_metrics


# -- partitioners -----------------------------------------------------------

class TestRangePartitioner:
    def test_even_split(self):
        p = RangePartitioner.for_keyspace(4, 0, 100)
        assert p.boundaries == [25, 50, 75]
        assert p.shards == 4

    def test_shard_of_boundaries(self):
        p = RangePartitioner([10, 20])
        assert [p.shard_of(k) for k in (0, 9, 10, 19, 20, 99)] == \
            [0, 0, 1, 1, 2, 2]

    def test_keys_outside_keyspace_still_route(self):
        p = RangePartitioner.for_keyspace(2, 0, 100)
        assert p.shard_of(-5) == 0
        assert p.shard_of(10**9) == 1

    def test_shards_for_range_prunes(self):
        p = RangePartitioner([10, 20])
        assert p.shards_for_range(0, 5) == [0]
        assert p.shards_for_range(5, 15) == [0, 1]
        assert p.shards_for_range(10, 25) == [1, 2]
        assert p.shards_for_range(None, 10) == [0]
        assert p.shards_for_range(20, None) == [2]
        assert p.shards_for_range(None, None) == [0, 1, 2]
        assert p.shards_for_range(7, 7) == []

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            RangePartitioner([10, 10])
        with pytest.raises(ValueError):
            RangePartitioner([20, 10])

    def test_empty_keyspace_rejected(self):
        with pytest.raises(ValueError):
            RangePartitioner.for_keyspace(2, 5, 5)


class TestHashPartitioner:
    def test_deterministic_and_in_range(self):
        p = HashPartitioner(4)
        placed = [p.shard_of(k) for k in range(1000)]
        assert placed == [p.shard_of(k) for k in range(1000)]
        assert set(placed) == {0, 1, 2, 3}

    def test_spread_is_roughly_even(self):
        p = HashPartitioner(4)
        counts = [0, 0, 0, 0]
        for k in range(4000):
            counts[p.shard_of(k)] += 1
        assert min(counts) > 700  # perfect would be 1000

    def test_only_point_ranges_prune(self):
        p = HashPartitioner(4)
        assert p.shards_for_range(7, 8) == [p.shard_of(7)]
        assert p.shards_for_range(7, 9) == [0, 1, 2, 3]
        assert p.shards_for_range(None, 9) == [0, 1, 2, 3]
        assert p.shards_for_range(9, 9) == []


def test_config_builds_partitioners():
    assert ShardConfig(shards=3).make_partitioner().shards == 3
    assert ShardConfig(shards=3, partitioning="hash") \
        .make_partitioner().kind == "hash"
    with pytest.raises(ValueError):
        ShardConfig(partitioning="modulo").make_partitioner()


# -- partial-state packing --------------------------------------------------

class TestPartialPacking:
    def roundtrip(self, partial):
        blobs = []
        packed = protocol.pack_partial(partial, blobs)
        import json
        packed = json.loads(json.dumps(packed))
        return protocol.unpack_partial(packed, blobs)

    def test_int_partial_inline(self):
        assert self.roundtrip(42) == 42

    def test_float_list_via_blob(self):
        values = [1.5, -0.25, 3.0e300, 5e-324]
        got = self.roundtrip(values)
        assert got == values
        assert all(isinstance(v, float) for v in got)

    def test_int_list_via_blob(self):
        assert self.roundtrip([1, -2, 2**40]) == [1, -2, 2**40]

    def test_huge_int_falls_back(self):
        values = [2**100, 1]
        assert self.roundtrip(values) == values

    def test_mixed_list(self):
        values = [1.5, None, 7, b"\x01\x02"]
        assert self.roundtrip(values) == values

    def test_empty_list(self):
        assert self.roundtrip([]) == []

    def test_bool_partial_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.pack_partial(True, [])


# -- routing ----------------------------------------------------------------

def make_router(shards=3, key_hi=300):
    config = ShardConfig(shards=shards, key_lo=0, key_hi=key_hi)
    addresses = [("127.0.0.1", 1 + i) for i in range(shards)]
    router = ShardRouter(addresses, config.make_partitioner())
    router.session.execute(
        "CREATE TABLE t (id BIGINT PRIMARY KEY, v FLOAT, g INT)")
    return router


class TestRouting:
    def test_point_plan_routes_to_owner(self):
        router = make_router()
        plan = router.session.plan_select(
            "SELECT SUM(v) FROM t WHERE id = 150")
        assert plan.kind == "point"
        assert router._route(plan) == [1]

    def test_key_range_prunes(self):
        router = make_router()
        plan = router.session.plan_select(
            "SELECT SUM(v) FROM t WHERE id >= 10 AND id < 90")
        assert router._route(plan) == [0]
        plan = router.session.plan_select(
            "SELECT SUM(v) FROM t WHERE id >= 90 AND id < 210")
        assert router._route(plan) == [0, 1, 2]

    def test_scan_broadcasts(self):
        router = make_router()
        plan = router.session.plan_select("SELECT SUM(v) FROM t")
        assert router._route(plan) == [0, 1, 2]
        plan = router.session.plan_select(
            "SELECT SUM(v) FROM t WHERE v > 1.0")
        assert router._route(plan) == [0, 1, 2]

    def test_grouped_plan_broadcasts(self):
        router = make_router()
        plan = router.session.plan_select(
            "SELECT g, SUM(v) FROM t GROUP BY g")
        assert plan.kind == "grouped"
        assert router._route(plan) == [0, 1, 2]

    def test_point_delete_detected(self):
        from repro.engine.sqlfront import _tokenize
        router = make_router()
        assert router._point_delete_key(
            _tokenize("DELETE FROM t WHERE id = 42")) == 42
        assert router._point_delete_key(
            _tokenize("DELETE FROM t WHERE v = 42")) is None
        assert router._point_delete_key(
            _tokenize("DELETE FROM t WHERE id = 4.5")) is None
        assert router._point_delete_key(
            _tokenize("DELETE FROM t WHERE id > 42")) is None
        assert router._point_delete_key(
            _tokenize("DELETE FROM missing WHERE id = 1")) is None

    def test_address_count_must_match_partitioner(self):
        config = ShardConfig(shards=3)
        with pytest.raises(ValueError):
            ShardRouter([("127.0.0.1", 1)], config.make_partitioner())

    def test_insert_rows_rejects_non_integer_keys(self):
        from repro.engine.sqlfront import SqlSyntaxError
        router = make_router()
        with pytest.raises(SqlSyntaxError):
            router.insert_rows("t", [("oops", 1.0, 0)])
        with pytest.raises(SqlSyntaxError):
            router.insert_rows("t", [(True, 1.0, 0)])


# -- replica bookkeeping (no processes) -------------------------------------

class TestReplicaSets:
    def test_flat_addresses_become_single_replica_sets(self):
        router = make_router()
        assert [len(s) for s in router.replica_sets] == [1, 1, 1]
        assert router.addresses == [[("127.0.0.1", 1 + i)]
                                    for i in range(3)]

    def test_nested_addresses_build_replica_sets(self):
        config = ShardConfig(shards=2, key_lo=0, key_hi=100)
        addresses = [[("127.0.0.1", 1), ("127.0.0.1", 2)],
                     [("127.0.0.1", 3), ("127.0.0.1", 4)]]
        router = ShardRouter(addresses, config.make_partitioner())
        assert [len(s) for s in router.replica_sets] == [2, 2]
        replica = router.replica_sets[1][0]
        assert (replica.shard_id, replica.replica_id,
                replica.port) == (1, 0, 3)
        assert router.health() == {
            "replicas": [2, 2], "failovers": 0, "suspects": 0,
            "stale": 0, "reprobed": 0}

    def test_empty_replica_set_rejected(self):
        config = ShardConfig(shards=1)
        with pytest.raises(ValueError):
            ShardRouter([[]], config.make_partitioner())

    def test_read_candidates_rotate_and_skip_stale(self):
        from repro.shard.router import STALE, SUSPECT
        config = ShardConfig(shards=1, key_lo=0, key_hi=100)
        addresses = [[("127.0.0.1", 1), ("127.0.0.1", 2),
                      ("127.0.0.1", 3)]]
        router = ShardRouter(addresses, config.make_partitioner())
        first = [router._read_candidates(0)[0].replica_id
                 for _ in range(6)]
        assert first == [0, 1, 2, 0, 1, 2]
        # Suspects drop to the back of the order; stale vanishes.
        router.replica_sets[0][0].state = SUSPECT
        router.replica_sets[0][2].state = STALE
        order = [r.replica_id for r in router._read_candidates(0)]
        assert order == [1, 0]

    def test_write_targets_skip_stale_keep_suspect(self):
        from repro.shard.router import STALE, SUSPECT
        config = ShardConfig(shards=1, key_lo=0, key_hi=100)
        addresses = [[("127.0.0.1", 1), ("127.0.0.1", 2),
                      ("127.0.0.1", 3)]]
        router = ShardRouter(addresses, config.make_partitioner())
        router.replica_sets[0][0].state = SUSPECT
        router.replica_sets[0][1].state = STALE
        targets = [r.replica_id for r in router._write_targets(0)]
        assert targets == [0, 2]

    def test_config_replicas_validated(self):
        with pytest.raises(ValueError):
            ShardConfig(shards=2, replicas=0)

    def test_replicas_from_env(self, monkeypatch):
        from repro.shard.config import replicas_from_env
        monkeypatch.setenv("REPRO_SHARD_REPLICAS", "3")
        assert replicas_from_env() == 3
        assert ShardConfig(shards=2).replicas == 3
        monkeypatch.setenv("REPRO_SHARD_REPLICAS", "zero")
        with pytest.raises(ValueError):
            replicas_from_env()


# -- metric merging ---------------------------------------------------------

def test_merge_metrics_sums_and_maxes():
    a = QueryMetrics(label="q", rows=10, io_bytes=100,
                     physical_reads=3, sequential_reads=2,
                     random_reads=1, udf_calls=5,
                     sim_io_seconds=0.5, sim_cpu_core_seconds=0.2,
                     sim_exec_seconds=0.7, wall_seconds=0.01,
                     engine="vector", cores=4)
    b = QueryMetrics(label="q", rows=20, io_bytes=50,
                     physical_reads=1, sequential_reads=1,
                     random_reads=0, udf_calls=2,
                     sim_io_seconds=0.1, sim_cpu_core_seconds=0.6,
                     sim_exec_seconds=0.9, wall_seconds=0.02,
                     engine="vector", cores=4)
    merged = merge_metrics([a.to_dict(), b.to_dict()], "q", shards=2)
    assert merged.rows == 30
    assert merged.io_bytes == 150
    assert merged.physical_reads == 4
    assert merged.udf_calls == 7
    assert merged.sim_io_seconds == pytest.approx(0.6)
    assert merged.sim_exec_seconds == 0.9   # max: shards overlap
    assert merged.wall_seconds == 0.02
    assert merged.engine == "sharded"
    assert merged.workers == 2


def test_catalog_mirror_never_holds_rows():
    router = make_router()
    table = router.session._resolve_table("t")
    assert table.row_count == 0
