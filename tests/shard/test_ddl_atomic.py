"""Cross-shard DDL is atomic-or-rolled-back.

The regression these tests pin down: a shard dying between the
coordinator's catalog-mirror update and the broadcast used to leave
the cluster split-brained — the coordinator (and the shards that got
the broadcast) had the table, the dead shard didn't, and every later
scatter to it failed confusingly.  Now the mirror is rolled back,
compensating DROPs go to the shards that acknowledged, and the client
gets one typed error saying exactly what happened.
"""

import pytest

from repro.server import (ArrayClient, RetryPolicy, ServerError,
                          ShardUnavailableError, protocol)
from repro.server.server import ServerConfig, ServerThread
from repro.shard import (ShardClient, ShardConfig, ShardFleet,
                         ShardRouter, ShardServer)

from .conftest import KEY_HI, setup_udfs

CREATE_T2 = "CREATE TABLE t2 (id BIGINT PRIMARY KEY, x FLOAT)"


@pytest.fixture
def cluster():
    config = ShardConfig(shards=2, key_lo=0, key_hi=KEY_HI)
    with ShardFleet(config, session_setup=setup_udfs) as fleet:
        router = ShardRouter(
            fleet.addresses, config.make_partitioner(),
            retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                              backoff_cap=0.05),
            connect_timeout=2.0, request_timeout=5.0,
            session_setup=setup_udfs)
        try:
            yield {"fleet": fleet, "router": router}
        finally:
            router.shutdown()


def test_create_with_dead_shard_rolls_back_everywhere(cluster):
    """Kill shard 1, CREATE: the typed error must leave the catalog
    mirror *and* the surviving shard agreeing the table does not
    exist — no half-created table anywhere that still answers."""
    fleet, router = cluster["fleet"], cluster["router"]
    fleet.kill_shard(1)
    with pytest.raises(protocol.WireError) as excinfo:
        router.execute(CREATE_T2)
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    assert excinfo.value.detail == {
        "rolled_back": "t2", "applied_shards": [0],
        "failed_shards": [1]}
    # The mirror rolled back: the coordinator cannot plan against t2.
    with pytest.raises(Exception):
        router.prepare("SELECT COUNT(*) FROM t2")
    # The live shard got its compensating DROP: asked directly (not
    # through the router), it has never heard of t2 either.
    host, port = fleet.addresses[0][0]
    with ArrayClient(host, port) as direct:
        with pytest.raises(ServerError):
            direct.query("SELECT COUNT(*) FROM t2")
    # The cluster is not wedged: a retried CREATE on the survivors'
    # keyspace... still fails (shard 1 stays dead) but identically —
    # and after that, statements to shard 0 work.
    with pytest.raises(protocol.WireError):
        router.execute(CREATE_T2)


def test_create_retry_after_rollback_succeeds(cluster):
    """The rollback leaves no debris: with every shard alive again
    (nothing was actually killed here), CREATE + load + query work."""
    router = cluster["router"]
    out = router.execute(CREATE_T2)
    assert out["kind"] == "ok"
    assert router.insert_rows("t2", [(1, 0.5), (2000, 1.5)]) == 2
    got = router.execute("SELECT COUNT(*), SUM(x) FROM t2")
    assert tuple(got["rows"][0]) == (2, 2.0)


def test_wire_client_sees_typed_error_with_detail(cluster):
    """Through the coordinator server, the rollback surfaces as a
    ``ShardUnavailableError`` whose ``detail`` carries the report —
    the wire's ``detail`` key round-trips."""
    fleet, router = cluster["fleet"], cluster["router"]
    coordinator = ShardServer(router, ServerConfig(name="coord-ddl"))
    with ServerThread(server=coordinator) as handle:
        with ShardClient("127.0.0.1", handle.port) as client:
            fleet.kill_shard(1)
            with pytest.raises(ShardUnavailableError) as excinfo:
                client.query(CREATE_T2)
            assert excinfo.value.detail["rolled_back"] == "t2"
            assert excinfo.value.detail["failed_shards"] == [1]
            # The connection survives the failure.
            client.ping()


def test_broadcast_delete_reports_partial_progress(cluster):
    """A broadcast DELETE that loses a shard mid-flight reports how
    many rows the surviving shards already deleted."""
    fleet, router = cluster["fleet"], cluster["router"]
    router.execute(CREATE_T2)
    rows = [(i, float(i)) for i in range(0, KEY_HI, 10)]
    assert router.insert_rows("t2", rows) == len(rows)
    on_shard_0 = sum(1 for i, _ in rows
                     if router.partitioner.shard_of(i) == 0)
    fleet.kill_shard(1)
    with pytest.raises(protocol.WireError) as excinfo:
        router.execute("DELETE FROM t2 WHERE x >= 0.0")
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    detail = excinfo.value.detail
    assert detail["applied_shards"] == [0]
    assert detail["failed_shards"] == [1]
    assert detail["partial_rowcount"] == on_shard_0
    assert detail["applied"] == {"0": on_shard_0}


def test_insert_rows_reports_rows_applied_per_shard(cluster):
    """A bulk load that loses a shard reports the rows each surviving
    shard committed — the fault-injection regression for the old
    silent partial commit."""
    fleet, router = cluster["fleet"], cluster["router"]
    router.execute(CREATE_T2)
    rows = [(i, float(i)) for i in range(0, KEY_HI, 7)]
    on_shard_0 = sum(1 for i, _ in rows
                     if router.partitioner.shard_of(i) == 0)
    fleet.kill_shard(1)
    with pytest.raises(protocol.WireError) as excinfo:
        router.insert_rows("t2", rows)
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    detail = excinfo.value.detail
    assert detail["applied_shards"] == [0]
    assert detail["failed_shards"] == [1]
    assert detail["partial_rowcount"] == on_shard_0
    assert detail["applied"] == {"0": on_shard_0}
    # The committed slice is really there: shard 1 is dead, so count
    # inside shard 0's key interval only.
    hi = router.partitioner.boundaries[0]
    got = router.execute(
        f"SELECT COUNT(*) FROM t2 WHERE id >= 0 AND id < {hi}")
    assert got["rows"][0][0] == on_shard_0


def test_drop_with_dead_shard_reports_partial(cluster):
    """DROP cannot be compensated — the surviving shards' data is
    gone — so a partial broadcast surfaces the applied/failed split
    instead of pretending atomicity."""
    fleet, router = cluster["fleet"], cluster["router"]
    router.execute(CREATE_T2)
    fleet.kill_shard(1)
    with pytest.raises(protocol.WireError) as excinfo:
        router.execute("DROP TABLE t2")
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    assert excinfo.value.detail == {"applied_shards": [0],
                                    "failed_shards": [1]}
