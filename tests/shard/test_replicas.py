"""Replica shards: a dead replica is invisible to clients.

Every test here SIGKILLs a replica (never a whole shard) somewhere in
a live workload and then demands two things at once: the statements
all complete with answers bit-identical to a single-node oracle, and
the router's ``failovers`` counter proves a sibling actually served —
i.e. the failure happened and nobody outside the coordinator saw it.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import SqlArray
from repro.server import ArrayClient, RetryPolicy
from repro.server.server import ServerConfig, ServerThread
from repro.shard import (ShardClient, ShardConfig, ShardFleet,
                         ShardRouter, ShardServer)
from repro.shard.router import LIVE, STALE, SUSPECT

from .conftest import (KEY_HI, ROWS, bits, make_reference, make_rows,
                       normalize, setup_udfs)
from .test_parity import FIXED_QUERIES

CREATE = "CREATE TABLE t (id BIGINT PRIMARY KEY, v FLOAT, g INT)"

FAST_RETRY = dict(retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                                    backoff_cap=0.05),
                  connect_timeout=2.0, request_timeout=10.0)


def build_cluster(shards, replicas, reprobe_interval=0.05):
    """Fleet + router, loaded with the parity data set."""
    config = ShardConfig(shards=shards, replicas=replicas,
                         key_lo=0, key_hi=KEY_HI)
    fleet = ShardFleet(config, session_setup=setup_udfs).start()
    router = ShardRouter(fleet.addresses, config.make_partitioner(),
                         session_setup=setup_udfs,
                         reprobe_interval=reprobe_interval,
                         **FAST_RETRY)
    router.execute(CREATE)
    assert router.insert_rows("t", make_rows()) == ROWS
    return fleet, router


@pytest.fixture(scope="module")
def reference():
    return make_reference(make_rows())


# -- parity: replicated clusters still match single-node bitwise ----------

@pytest.fixture(scope="module", params=[1, 2, 4],
                ids=lambda n: f"shards{n}")
def replicated(request):
    fleet, router = build_cluster(request.param, replicas=2)
    try:
        coordinator = ShardServer(router, ServerConfig(
            name=f"coord-r2-{request.param}"))
        with ServerThread(server=coordinator) as handle:
            with ShardClient("127.0.0.1", handle.port) as client:
                yield {"shards": request.param, "router": router,
                       "fleet": fleet, "client": client}
    finally:
        router.shutdown()
        fleet.stop()


@pytest.mark.parametrize("sql", FIXED_QUERIES)
def test_replicated_cluster_matches_single_node_bitwise(replicated,
                                                        reference, sql):
    want = normalize(reference.query(sql))
    got = replicated["router"].execute(sql)
    assert bits([tuple(r) for r in got["rows"]]) == bits(want)


def test_replica_topology_surfaces_in_stats(replicated):
    stats = replicated["client"].stats()
    shards = stats["shards"]
    assert shards["count"] == replicated["shards"]
    assert len(shards["addresses"]) == replicated["shards"]
    for replica_set in shards["addresses"]:
        assert len(replica_set) == 2
    assert replicated["client"].replica_counts() == \
        [2] * replicated["shards"]
    assert shards["suspects"] == 0
    assert shards["stale"] == 0


def test_reads_rotate_across_replicas(replicated):
    """Round-robin: consecutive reads of the same shard pick
    different replicas (observed through the rotation cursor)."""
    router = replicated["router"]
    first = router._read_candidates(0)[0]
    second = router._read_candidates(0)[0]
    assert first is not second


# -- the kill matrix ------------------------------------------------------

@pytest.fixture
def duo():
    """A fresh 2-shard x 2-replica cluster per test (these tests
    leave corpses behind)."""
    fleet, router = build_cluster(2, replicas=2)
    try:
        yield {"fleet": fleet, "router": router}
    finally:
        router.shutdown()
        fleet.stop()


def test_kill_mid_scatter_statement_completes_on_sibling(duo,
                                                         reference):
    """SIGKILL a replica with warm links, then run the whole query
    corpus: every scatter that lands on the corpse must replay on the
    sibling and still match the oracle bitwise."""
    router = duo["router"]
    for sql in FIXED_QUERIES[:2]:  # warm the links to every replica
        router.execute(sql)
    duo["fleet"].kill(0, replica=0)
    for sql in FIXED_QUERIES:
        want = normalize(reference.query(sql))
        got = router.execute(sql)
        assert bits([tuple(r) for r in got["rows"]]) == bits(want)
    health = router.health()
    assert health["failovers"] >= 1
    assert health["suspects"] >= 1


def test_kill_a_replica_mid_workload_is_client_invisible(duo,
                                                         reference):
    """The acceptance drill: a replica dies *during* a client
    workload; the client sees zero errors, every answer stays
    bit-identical, and the failover counter proves the faulted reads
    were actually replayed."""
    router = duo["router"]
    oracle = {sql: bits(normalize(reference.query(sql)))
              for sql in FIXED_QUERIES}
    coordinator = ShardServer(router, ServerConfig(name="coord-drill"))
    with ServerThread(server=coordinator) as handle:
        with ShardClient("127.0.0.1", handle.port) as client:
            killer = threading.Timer(
                0.05, lambda: duo["fleet"].kill(1, replica=1))
            killer.start()
            try:
                deadline = time.monotonic() + 30.0
                while client.failovers() < 1:
                    for sql in FIXED_QUERIES:
                        result = client.query(sql)  # must never raise
                        got = bits([tuple(r) for r in result.rows])
                        assert got == oracle[sql]
                    assert time.monotonic() < deadline, \
                        "killed replica never triggered a failover"
            finally:
                killer.cancel()
            assert client.stats()["shards"]["failovers"] >= 1


def test_kill_mid_pexec_batch_completes_on_sibling(duo, reference):
    """Pipelined prepared statements keep completing when a replica
    dies between (or under) batched executions."""
    router = duo["router"]
    point = [f"SELECT SUM(v), COUNT(*) FROM t WHERE id = {k}"
             for k in (10, 700, 1600, 2100, 2900)] * 4
    oracle = [bits(normalize(reference.query(sql))) for sql in point]
    coordinator = ShardServer(router, ServerConfig(name="coord-pexec"))
    with ServerThread(server=coordinator) as handle:
        with ShardClient("127.0.0.1", handle.port) as client:
            client.query_pipeline(point[:4])  # warm replica links
            duo["fleet"].kill(0, replica=1)
            results = client.query_pipeline(point)
            got = [bits([tuple(r) for r in result.rows])
                   for result in results]
            assert got == oracle
    assert router.health()["failovers"] >= 1


def test_kill_mid_bquery_stream_resumes_chunk_exact(reference):
    """A replica dying inside a ``bquery`` chunk stream must be
    replaced mid-stream: the sibling replays the request, the chunks
    the client already holds are skipped, and the assembled bytes are
    identical to the blob."""
    config = ShardConfig(shards=2, replicas=2, key_lo=0, key_hi=100)
    blob = np.random.default_rng(7).random((400, 400))  # ~1.2 MiB
    with ShardFleet(config) as fleet:
        router = ShardRouter(fleet.addresses,
                             config.make_partitioner(),
                             **FAST_RETRY)
        try:
            router.execute("CREATE TABLE tb (id BIGINT PRIMARY KEY, "
                           "m VARBINARY(MAX))")
            payload = SqlArray.from_numpy(blob).to_blob()
            assert router.insert_rows("tb", [(5, payload)]) == 1
            want = bytes(payload)
            coordinator = ShardServer(router, ServerConfig(
                name="coord-bq"))
            with ServerThread(server=coordinator) as handle:
                with ArrayClient("127.0.0.1", handle.port) as client:
                    sql = "SELECT MAX(m) FROM tb WHERE id = 5"
                    killer = threading.Timer(
                        0.02, lambda: fleet.kill(0, replica=0))
                    killer.start()
                    try:
                        deadline = time.monotonic() + 30.0
                        while router.health()["failovers"] < 1:
                            got = client.query_blob(sql,
                                                    chunk_bytes=4096)
                            assert got.data == want
                            assert time.monotonic() < deadline, \
                                "bquery streams never hit the corpse"
                    finally:
                        killer.cancel()
        finally:
            router.shutdown()


# -- consistency of the rotation ------------------------------------------

def test_reprobe_returns_recovered_replica_to_rotation(duo):
    """A suspect replica that answers a ping goes back to live (the
    process here never actually died, so the probe succeeds at once)."""
    router = duo["router"]
    replica = router.replica_sets[0][0]
    router._mark_suspect(replica)
    assert replica.state == SUSPECT
    deadline = time.monotonic() + 10.0
    while replica.state != LIVE:
        assert time.monotonic() < deadline, \
            "reprobe never revived a healthy suspect"
        time.sleep(0.02)
    assert router.health()["reprobed"] >= 1


def test_write_failure_marks_replica_stale_forever(duo):
    """A replica that misses a write a sibling committed is stale:
    out of the read rotation permanently, never revived by reprobe —
    serving reads from it would silently drop the write."""
    router = duo["router"]
    duo["fleet"].kill(0, replica=1)
    # The write succeeds (replica 0 acks) and the corpse goes stale.
    out = router.execute("DELETE FROM t WHERE id = 50")
    assert out["rowcount"] == 1
    replica = router.replica_sets[0][1]
    assert replica.state == STALE
    # Reads keep working off the surviving replica...
    got = router.execute("SELECT COUNT(*) FROM t WHERE id = 50")
    assert got["rows"][0][0] == 0
    # ...and several reprobe periods later the corpse is still out.
    time.sleep(max(0.2, router.reprobe_interval * 3))
    assert replica.state == STALE
    assert replica not in router._read_candidates(0)


def test_whole_replica_set_dead_is_typed_unavailable(duo):
    from repro.server import protocol
    router = duo["router"]
    duo["fleet"].kill_shard(1)
    with pytest.raises(protocol.WireError) as excinfo:
        router.execute("SELECT COUNT(*) FROM t")
    assert excinfo.value.code == protocol.SHARD_UNAVAILABLE
    # The other shard still answers point reads it owns.
    got = router.execute("SELECT COUNT(*) FROM t WHERE id = 3")
    assert got["rows"][0][0] == 1
