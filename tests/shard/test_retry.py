"""Client retry-policy regression tests against a scripted server.

The stub speaks just enough of the wire protocol to count requests
and answer from a canned script, so the tests can pin down exactly
how many times a client re-sends: ``SERVER_BUSY`` is retried only
with an explicit :class:`RetryPolicy` and only up to its cap;
``QUERY_TIMEOUT`` is *never* retried (the statement may have run —
re-issuing doubles the damage).
"""

import asyncio
import socket
import threading

import pytest

from repro.server import (ArrayClient, AsyncArrayClient, QueryTimeoutError,
                          RetryPolicy, ServerBusyError, protocol)

BUSY = {"type": "error", "code": protocol.SERVER_BUSY,
        "message": "queue full"}
TIMEOUT = {"type": "error", "code": protocol.QUERY_TIMEOUT,
           "message": "budget exceeded"}
OK = {"type": "result", "kind": "rows", "rows": [[7]], "rowcount": 1,
      "metrics": None, "elapsed_seconds": 0.0}


class ScriptedServer:
    """One-connection stub: sends hello, then answers each query
    frame from the script (repeating the last entry if it runs dry)."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._sock.accept()
        with conn:
            conn.settimeout(10.0)
            protocol.write_frame_sock(conn, {
                "type": "hello", "server": "stub", "protocol":
                protocol.PROTOCOL_VERSION, "session_id": 1})
            position = 0
            while True:
                try:
                    frame = protocol.read_frame_sock(
                        conn, protocol.MAX_FRAME_BYTES)
                except (OSError, protocol.ProtocolError):
                    break
                if frame is None:
                    break
                header, _ = frame
                if header.get("type") == "close":
                    protocol.write_frame_sock(conn, {"type": "goodbye"})
                    break
                self.requests += 1
                reply = self.script[min(position,
                                        len(self.script) - 1)]
                position += 1
                protocol.write_frame_sock(conn, reply)

    def close(self):
        self._sock.close()
        self._thread.join(timeout=5.0)


@pytest.fixture
def serve():
    servers = []

    def factory(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


FAST = RetryPolicy(max_retries=3, backoff_base=0.001, backoff_cap=0.01)


def test_no_policy_fails_fast(serve):
    server = serve([BUSY, OK])
    with ArrayClient("127.0.0.1", server.port) as client:
        with pytest.raises(ServerBusyError):
            client.query("SELECT COUNT(*) FROM t")
    assert server.requests == 1


def test_retry_succeeds_after_busy(serve):
    server = serve([BUSY, BUSY, OK])
    with ArrayClient("127.0.0.1", server.port, retry=FAST) as client:
        result = client.query("SELECT COUNT(*) FROM t")
    assert result.rows == [(7,)]
    assert server.requests == 3


def test_retries_stop_at_the_cap(serve):
    server = serve([BUSY])  # busy forever
    policy = RetryPolicy(max_retries=2, backoff_base=0.001,
                         backoff_cap=0.01)
    with ArrayClient("127.0.0.1", server.port, retry=policy) as client:
        with pytest.raises(ServerBusyError):
            client.query("SELECT COUNT(*) FROM t")
    assert server.requests == 3  # 1 try + 2 retries, then stop


def test_query_timeout_is_never_retried(serve):
    server = serve([TIMEOUT, OK])
    with ArrayClient("127.0.0.1", server.port, retry=FAST) as client:
        with pytest.raises(QueryTimeoutError):
            client.query("SELECT COUNT(*) FROM t")
    assert server.requests == 1


def test_async_client_retries_busy(serve):
    server = serve([BUSY, OK])

    async def run():
        client = await AsyncArrayClient.connect(
            "127.0.0.1", server.port, retry=FAST)
        try:
            return await client.query("SELECT COUNT(*) FROM t")
        finally:
            await client.close()

    result = asyncio.run(run())
    assert result.rows == [(7,)]
    assert server.requests == 2


def test_async_client_timeout_not_retried(serve):
    server = serve([TIMEOUT])

    async def run():
        client = await AsyncArrayClient.connect(
            "127.0.0.1", server.port, retry=FAST)
        try:
            with pytest.raises(QueryTimeoutError):
                await client.query("SELECT COUNT(*) FROM t")
        finally:
            await client.close()

    asyncio.run(run())
    assert server.requests == 1


def test_delay_grows_and_caps():
    policy = RetryPolicy(max_retries=8, backoff_base=0.05,
                         backoff_cap=0.4)
    delays = [policy.delay(i) for i in range(6)]
    assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
    assert delays[4] == delays[5] == 0.4
