"""FFT wrapper tests."""

import numpy as np
import pytest

from repro.core import ShapeError, SqlArray, TypeMismatchError
from repro.mathlib import (
    ALIGNMENT,
    aligned_copy,
    fft_forward,
    fft_inverse,
    power_spectrum,
)


def _arr(values, dtype=None):
    return SqlArray.from_numpy(np.asarray(values), dtype)


class TestForwardInverse:
    def test_roundtrip_1d(self, rng):
        x = rng.standard_normal(32)
        back = fft_inverse(fft_forward(_arr(x))).to_numpy()
        np.testing.assert_allclose(back.real, x, atol=1e-12)
        np.testing.assert_allclose(back.imag, 0, atol=1e-12)

    def test_roundtrip_3d(self, rng):
        x = rng.standard_normal((8, 8, 8))
        back = fft_inverse(fft_forward(_arr(x))).to_numpy()
        np.testing.assert_allclose(back.real, x, atol=1e-12)

    def test_matches_numpy(self, rng):
        x = rng.standard_normal((4, 6))
        ours = fft_forward(_arr(x)).to_numpy()
        np.testing.assert_allclose(ours, np.fft.fftn(x), atol=1e-10)

    def test_single_precision_stays_single(self, rng):
        x = rng.standard_normal(16).astype("f4")
        out = fft_forward(_arr(x, "float32"))
        assert out.dtype.name == "complex64"

    def test_double_gives_complex128(self, rng):
        out = fft_forward(_arr(rng.standard_normal(8)))
        assert out.dtype.name == "complex128"

    def test_complex_input_accepted(self, rng):
        x = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        out = fft_forward(SqlArray.from_numpy(x))
        np.testing.assert_allclose(out.to_numpy(), np.fft.fft(x),
                                   atol=1e-10)

    def test_integer_rejected(self):
        with pytest.raises(TypeMismatchError):
            fft_forward(_arr(np.arange(8), "int32"))

    def test_inverse_requires_complex(self, rng):
        with pytest.raises(TypeMismatchError):
            fft_inverse(_arr(rng.standard_normal(8)))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            fft_forward(SqlArray.from_numpy(np.empty(0)))


class TestAlignedCopy:
    def test_alignment(self, rng):
        for shape in [(17,), (5, 7), (3, 4, 5)]:
            buf = aligned_copy(rng.standard_normal(shape))
            assert buf.ctypes.data % ALIGNMENT == 0
            assert buf.shape == shape

    def test_values_preserved_column_major(self, rng):
        x = np.asfortranarray(rng.standard_normal((4, 5)))
        buf = aligned_copy(x)
        np.testing.assert_array_equal(buf, x)
        assert buf.flags["F_CONTIGUOUS"]

    def test_is_a_copy(self, rng):
        x = rng.standard_normal(8)
        buf = aligned_copy(x)
        buf[0] = 999.0
        assert x[0] != 999.0


class TestPowerSpectrum:
    def test_parseval_consistency(self, rng):
        x = rng.standard_normal(64)
        p = power_spectrum(_arr(x)).to_numpy()
        # Parseval: sum |X_k|^2 = N * sum |x_n|^2.
        np.testing.assert_allclose(p.sum(), 64 * (x ** 2).sum(),
                                   rtol=1e-12)

    def test_real_output(self, rng):
        p = power_spectrum(_arr(rng.standard_normal((4, 4))))
        assert not p.dtype.is_complex
        assert (p.to_numpy() >= 0).all()
