"""PCA pipeline tests."""

import numpy as np
import pytest

from repro.core import AggregateError, ShapeError, SqlArray
from repro.mathlib import PCA


def _vectors(n, dim, seed=0, rank=None):
    """Vectors drawn from a low-rank subspace plus noise."""
    gen = np.random.default_rng(seed)
    rank = rank or dim
    basis = gen.standard_normal((rank, dim))
    coeffs = gen.standard_normal((n, rank))
    data = coeffs @ basis + gen.normal(0, 0.01, (n, dim))
    return [SqlArray.from_numpy(row) for row in data], data


class TestFit:
    def test_components_orthonormal(self):
        vs, _data = _vectors(50, 8, rank=3)
        pca = PCA(4).fit(vs)
        g = pca.components @ pca.components.T
        np.testing.assert_allclose(g, np.eye(4), atol=1e-8)

    def test_explained_variance_descending(self):
        vs, _data = _vectors(50, 8)
        pca = PCA().fit(vs)
        assert (np.diff(pca.explained_variance) <= 1e-12).all()

    def test_low_rank_data_detected(self):
        vs, _data = _vectors(80, 10, rank=2)
        pca = PCA().fit(vs)
        ratio = pca.explained_variance_ratio()
        assert ratio[:2].sum() > 0.99

    def test_matches_numpy_eigendecomposition(self):
        vs, data = _vectors(60, 6)
        pca = PCA().fit(vs)
        cov = np.cov(data.T)
        eigvals = np.sort(np.linalg.eigvalsh(cov))[::-1]
        np.testing.assert_allclose(pca.explained_variance, eigvals,
                                   atol=1e-8)

    def test_needs_two_vectors(self):
        with pytest.raises(AggregateError):
            PCA().fit([SqlArray.from_numpy(np.zeros(3))])

    def test_n_components_out_of_range(self):
        vs, _data = _vectors(10, 4)
        with pytest.raises(ShapeError):
            PCA(5).fit(vs)

    def test_correlation_variant(self):
        vs, _data = _vectors(40, 5)
        pca = PCA(3, use_correlation=True).fit(vs)
        assert pca.components.shape == (3, 5)


class TestTransformReconstruct:
    def test_roundtrip_full_basis(self):
        vs, data = _vectors(30, 5)
        pca = PCA().fit(vs)
        c = pca.transform(vs[0])
        back = pca.reconstruct(c)
        np.testing.assert_allclose(back.to_numpy(), data[0], atol=1e-8)

    def test_truncated_basis_approximates(self):
        vs, data = _vectors(60, 8, rank=2)
        pca = PCA(2).fit(vs)
        back = pca.reconstruct(pca.transform(vs[3])).to_numpy()
        np.testing.assert_allclose(back, data[3], atol=0.1)

    def test_masked_transform_ignores_bad_bins(self):
        vs, data = _vectors(60, 8, rank=3)
        pca = PCA(3).fit(vs)
        clean = pca.transform(vs[0]).to_numpy()
        corrupted = data[0].copy()
        corrupted[2] = 1e5
        mask = np.ones(8, dtype="i2")
        mask[2] = 0
        masked = pca.transform_masked(
            SqlArray.from_numpy(corrupted),
            SqlArray.from_numpy(mask, "int16")).to_numpy()
        np.testing.assert_allclose(masked, clean, atol=0.05)

    def test_unfitted_raises(self):
        with pytest.raises(AggregateError):
            PCA().transform(SqlArray.from_numpy(np.zeros(3)))

    def test_dimension_checks(self):
        vs, _data = _vectors(20, 5)
        pca = PCA(2).fit(vs)
        with pytest.raises(ShapeError):
            pca.transform(SqlArray.from_numpy(np.zeros(7)))
        with pytest.raises(ShapeError):
            pca.reconstruct(SqlArray.from_numpy(np.zeros(5)))
