"""NNLS tests: correctness against the scipy oracle and KKT checks."""

import numpy as np
import pytest
import scipy.optimize
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShapeError, SqlArray
from repro.mathlib import nnls, nnls_arrays


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_problems(self, seed):
        gen = np.random.default_rng(seed)
        m, n = gen.integers(3, 15), gen.integers(2, 8)
        a = gen.standard_normal((m, n))
        b = gen.standard_normal(m)
        x_ours, r_ours = nnls(a, b)
        x_ref, r_ref = scipy.optimize.nnls(a, b)
        np.testing.assert_allclose(x_ours, x_ref, atol=1e-8)
        assert r_ours == pytest.approx(r_ref, abs=1e-8)

    def test_nonnegative_target_recovers_exactly(self, rng):
        a = np.abs(rng.standard_normal((20, 5)))
        x_true = np.array([0.0, 1.5, 0.0, 2.0, 0.3])
        b = a @ x_true
        x, rnorm = nnls(a, b)
        np.testing.assert_allclose(x, x_true, atol=1e-8)
        assert rnorm < 1e-8


class TestKktConditions:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_solution_is_kkt_point(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.standard_normal((10, 4))
        b = gen.standard_normal(10)
        x, _r = nnls(a, b)
        w = a.T @ (b - a @ x)
        scale = max(np.abs(a).max(), 1.0)
        # Primal feasibility.
        assert (x >= 0).all()
        # Dual feasibility: gradient non-positive where x is at bound.
        assert (w[x == 0] <= 1e-6 * scale * 10).all()
        # Complementary slackness: gradient ~0 where x > 0.
        assert np.abs(w[x > 0]).max(initial=0.0) <= 1e-6 * scale * 10


class TestEdgeCases:
    def test_zero_rhs(self):
        a = np.eye(3)
        x, rnorm = nnls(a, np.zeros(3))
        np.testing.assert_array_equal(x, np.zeros(3))
        assert rnorm == 0.0

    def test_all_negative_rhs_gives_zero_solution(self):
        a = np.eye(3)
        x, _r = nnls(a, -np.ones(3))
        np.testing.assert_array_equal(x, np.zeros(3))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            nnls(np.zeros(3), np.zeros(3))
        with pytest.raises(ShapeError):
            nnls(np.zeros((3, 2)), np.zeros(4))

    def test_array_wrapper(self, rng):
        a = np.abs(rng.standard_normal((8, 3)))
        b = a @ np.array([1.0, 0.0, 2.0])
        x, rnorm = nnls_arrays(SqlArray.from_numpy(a),
                               SqlArray.from_numpy(b))
        np.testing.assert_allclose(x.to_numpy(), [1.0, 0.0, 2.0],
                                   atol=1e-8)

    def test_array_wrapper_shape_check(self, rng):
        with pytest.raises(ShapeError):
            nnls_arrays(SqlArray.from_numpy(np.zeros(3)),
                        SqlArray.from_numpy(np.zeros(3)))
