"""LAPACK wrapper tests (SVD, least squares, masked least squares)."""

import numpy as np
import pytest

from repro.core import ShapeError, SqlArray
from repro.mathlib import (
    gesvd,
    masked_lstsq,
    matmul,
    solve_lstsq,
    svd_values,
    transpose,
)


def _arr(values):
    return SqlArray.from_numpy(np.asarray(values, dtype="f8"))


class TestGesvd:
    def test_reconstruction(self, rng):
        m = rng.standard_normal((6, 4))
        u, s, vt = gesvd(_arr(m))
        rebuilt = u.to_numpy() @ np.diag(s.to_numpy()) @ vt.to_numpy()
        np.testing.assert_allclose(rebuilt, m, atol=1e-10)

    def test_singular_values_descending(self, rng):
        _u, s, _vt = gesvd(_arr(rng.standard_normal((5, 5))))
        sv = s.to_numpy()
        assert (np.diff(sv) <= 1e-12).all()
        assert (sv >= 0).all()

    def test_full_matrices_shapes(self, rng):
        m = rng.standard_normal((6, 4))
        u, s, vt = gesvd(_arr(m), full_matrices=True)
        assert u.shape == (6, 6)
        assert vt.shape == (4, 4)
        u, s, vt = gesvd(_arr(m), full_matrices=False)
        assert u.shape == (6, 4)
        assert vt.shape == (4, 4)

    def test_complex_input(self, rng):
        m = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        u, s, vt = gesvd(SqlArray.from_numpy(m))
        rebuilt = u.to_numpy() @ np.diag(s.to_numpy()) @ vt.to_numpy()
        np.testing.assert_allclose(rebuilt, m, atol=1e-10)

    def test_svd_values_match(self, rng):
        m = _arr(rng.standard_normal((5, 3)))
        _u, s, _vt = gesvd(m)
        np.testing.assert_allclose(svd_values(m).to_numpy(),
                                   s.to_numpy())

    def test_vector_rejected(self):
        with pytest.raises(ShapeError):
            gesvd(_arr([1.0, 2.0]))

    def test_matches_scipy_oracle(self, rng):
        import scipy.linalg
        m = rng.standard_normal((7, 5))
        _u, s, _vt = gesvd(_arr(m))
        np.testing.assert_allclose(
            s.to_numpy(), scipy.linalg.svdvals(m), atol=1e-10)


class TestLeastSquares:
    def test_exact_system(self):
        a = _arr([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b = _arr([1.0, 2.0, 3.0])
        x = solve_lstsq(a, b).to_numpy()
        np.testing.assert_allclose(x, [1.0, 2.0], atol=1e-12)

    def test_overdetermined_minimizes_residual(self, rng):
        a = rng.standard_normal((20, 3))
        x_true = np.array([1.0, -2.0, 0.5])
        b = a @ x_true + rng.normal(0, 0.01, 20)
        x = solve_lstsq(_arr(a), _arr(b)).to_numpy()
        np.testing.assert_allclose(x, x_true, atol=0.05)

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            solve_lstsq(_arr([[1.0], [2.0]]), _arr([1.0, 2.0, 3.0]))


class TestMaskedLstsq:
    def test_mask_excludes_corrupted_rows(self, rng):
        a = rng.standard_normal((30, 3))
        x_true = np.array([2.0, -1.0, 0.5])
        b = a @ x_true
        b[5] = 1e6  # corrupted measurement
        b[17] = -1e6
        mask = np.ones(30, dtype="i2")
        mask[[5, 17]] = 0
        x = masked_lstsq(_arr(a), _arr(b),
                         SqlArray.from_numpy(mask, "int16")).to_numpy()
        np.testing.assert_allclose(x, x_true, atol=1e-8)

    def test_all_good_matches_plain(self, rng):
        a = rng.standard_normal((10, 2))
        b = rng.standard_normal(10)
        mask = SqlArray.from_numpy(np.ones(10, dtype="i2"), "int16")
        np.testing.assert_allclose(
            masked_lstsq(_arr(a), _arr(b), mask).to_numpy(),
            solve_lstsq(_arr(a), _arr(b)).to_numpy())

    def test_too_few_unmasked_rows(self, rng):
        a = rng.standard_normal((5, 4))
        b = rng.standard_normal(5)
        mask = SqlArray.from_numpy(
            np.array([1, 1, 0, 0, 0], dtype="i2"), "int16")
        with pytest.raises(ShapeError):
            masked_lstsq(_arr(a), _arr(b), mask)


class TestMatmulTranspose:
    def test_matmul(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        np.testing.assert_allclose(
            matmul(_arr(a), _arr(b)).to_numpy(), a @ b)

    def test_matvec_gives_vector(self, rng):
        a = rng.standard_normal((3, 4))
        v = rng.standard_normal(4)
        out = matmul(_arr(a), _arr(v))
        assert out.shape == (3,)

    def test_incompatible(self, rng):
        with pytest.raises(ShapeError):
            matmul(_arr(rng.standard_normal((3, 4))),
                   _arr(rng.standard_normal((3, 4))))

    def test_transpose(self, rng):
        m = rng.standard_normal((2, 5))
        np.testing.assert_array_equal(
            transpose(_arr(m)).to_numpy(), m.T)
        with pytest.raises(ShapeError):
            transpose(_arr([1.0, 2.0]))
