"""Cross-module integration tests: the library working end to end.

Each test exercises a full paper workflow across several subpackages —
array format + storage engine + T-SQL surface + math layer + science
code — where unit tests only cover the pieces.
"""

import numpy as np
import pytest

from repro.core import SqlArray, ops
from repro.core.partial import read_subarray
from repro.engine import (
    Column,
    Database,
    Executor,
    ReadBlob,
    Col,
    ScalarUdf,
    SqlSession,
    Sum,
)
from repro.sqlbind import connect
from repro.tsql import FloatArray, FloatArrayMax, IntArray


class TestArrayThroughEngine:
    """Arrays stored in the engine, subset through partial reads,
    processed by the math layer — the §2.1 path end to end."""

    def test_stored_cube_fft_pipeline(self):
        db = Database()
        t = db.create_table("cubes", [Column("id", "bigint"),
                                      Column("data", "varbinary_max")])
        rng = np.random.default_rng(0)
        cube = rng.standard_normal((24, 24, 24))
        t.insert((1, SqlArray.from_numpy(cube).to_blob()))

        # Partial-read a window straight out of the stored blob.
        handle = t.get(1, db.pool)[1]
        stream = handle.open_stream(db.pool)
        window = read_subarray(stream, (4, 4, 4), (8, 8, 8))
        np.testing.assert_allclose(window.to_numpy(),
                                   cube[4:12, 4:12, 4:12])

        # Run the math layer on the window via the T-SQL surface.
        spectrum = FloatArrayMax.FFTForward(ops.to_max(window).to_blob())
        power = np.abs(SqlArray.from_blob(spectrum).to_numpy()) ** 2
        assert power.shape == (8, 8, 8)
        # Parseval ties the SQL-side FFT back to the raw data.
        assert power.sum() == pytest.approx(
            8 ** 3 * (cube[4:12, 4:12, 4:12] ** 2).sum(), rel=1e-9)

    def test_udf_query_over_stored_max_arrays(self):
        db = Database()
        t = db.create_table("vecs", [Column("id", "bigint"),
                                     Column("v", "varbinary_max")])
        rng = np.random.default_rng(1)
        rows = [rng.standard_normal(1200) for _ in range(40)]
        for i, values in enumerate(rows):
            t.insert((i, SqlArray.from_numpy(values).to_blob()))

        def first(blob):
            return FloatArrayMax.Item_1(blob, 0)

        (total,), m = Executor(db).run(
            t, [Sum(ScalarUdf(first, ReadBlob(Col("v")),
                              body_cost="item"))])
        assert total == pytest.approx(sum(v[0] for v in rows))
        assert m.stream_calls >= 40  # each blob went through the wrapper


class TestSqlFrontToTsqlToMath:
    """The five-layer stack: SQL text -> parser -> executor -> array
    UDF -> math wrapper."""

    def test_norm_query(self):
        db = Database()
        t = db.create_table("m", [Column("id", "bigint"),
                                  Column("v", "varbinary", cap=200)])
        rng = np.random.default_rng(2)
        data = [rng.standard_normal(6) for _ in range(25)]
        for i, values in enumerate(data):
            t.insert((i, SqlArray.from_numpy(values).to_blob()))
        session = SqlSession(db)
        (total,), _m = session.query(
            "SELECT SUM(FloatArray.Dot(v, v)) FROM m")
        assert total == pytest.approx(sum((v ** 2).sum() for v in data))


class TestSqliteRoundtrips:
    """Every element type survives SQL storage and the UDF path."""

    @pytest.mark.parametrize("dtype", ["int8", "int16", "int32",
                                       "int64", "float32", "float64",
                                       "complex64", "complex128"])
    def test_store_query_load(self, dtype):
        conn = connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v BLOB)")
        rng = np.random.default_rng(3)
        if dtype.startswith("complex"):
            values = (rng.standard_normal(7)
                      + 1j * rng.standard_normal(7)).astype(dtype)
        elif dtype.startswith("int"):
            values = rng.integers(-100, 100, 7).astype(dtype)
        else:
            values = rng.standard_normal(7).astype(dtype)
        conn.execute("INSERT INTO t VALUES (1, ?)",
                     (conn.store_array(values, dtype),))
        blob = conn.execute("SELECT v FROM t").fetchone()[0]
        np.testing.assert_array_equal(conn.load_array(blob), values)
        arr = SqlArray.from_blob(blob)
        assert arr.dtype.name == dtype
        # The right schema accepts it; the wrong one refuses.
        from repro.tsql import namespace_for
        ns = namespace_for(dtype, arr.storage)
        assert ns.Count(blob) == 7

    def test_spectra_in_engine_tables(self):
        """Spectrum vectors stored as engine rows and aggregated."""
        from repro.science.spectra import SpectrumGenerator
        db = Database()
        t = db.create_table("spectra", [
            Column("id", "bigint"),
            Column("flux", "varbinary", cap=3000)])
        gen = SpectrumGenerator(n_bins=64, seed=4)
        spectra = [gen.make(class_id=0, bad_fraction=0.0)
                   for _ in range(10)]
        for i, s in enumerate(spectra):
            t.insert((i, s.flux.to_blob()))
        session = SqlSession(db)
        (max_flux,), _m = session.query(
            "SELECT MAX(FloatArray.Max(flux)) FROM spectra")
        expected = max(s.flux.to_numpy().max() for s in spectra)
        assert max_flux == pytest.approx(expected)


class TestParserToNamespaces:
    def test_sugar_evaluates_like_sql(self):
        """The Section 8 pre-parser and the SQLite UDFs agree."""
        from repro.tsql.parser import evaluate
        conn = connect()
        a = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)
        via_sugar = evaluate("sum(a[1:4])", {"a": a})
        via_sql = conn.execute(
            "SELECT FloatArray_Sum(FloatArray_Subarray(?, "
            "IntArray_Vector_1(1), IntArray_Vector_1(3), 0))",
            (a,)).fetchone()[0]
        assert via_sugar == via_sql == 9.0
