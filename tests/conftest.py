"""Shared fixtures and hypothesis strategies for the test suite."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core import ALL_DTYPES


@pytest.fixture
def rng():
    """A deterministic RNG, fresh per test."""
    return np.random.default_rng(12345)


def small_shapes(max_rank=4, max_side=6):
    """Hypothesis strategy for small array shapes (at least 1 element
    per dimension keeps most operations meaningful)."""
    return st.lists(st.integers(1, max_side), min_size=1,
                    max_size=max_rank).map(tuple)


def dtype_strategy():
    """Strategy over every registered element type."""
    return st.sampled_from(ALL_DTYPES)


def values_for(dtype, shape, seed):
    """Deterministic values of a given dtype and shape."""
    gen = np.random.default_rng(seed)
    count = int(np.prod(shape))
    if dtype.is_complex:
        data = gen.standard_normal(count) + 1j * gen.standard_normal(count)
    elif dtype.is_integer:
        info = np.iinfo(dtype.numpy_dtype)
        data = gen.integers(info.min, info.max, size=count, dtype=np.int64)
    else:
        data = gen.standard_normal(count)
    return data.astype(dtype.numpy_dtype).reshape(shape, order="F")
