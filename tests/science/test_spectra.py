"""Spectrum use-case tests (Section 2.2)."""

import numpy as np
import pytest

from repro.core import ShapeError
from repro.science.spectra import (
    SpectrumBasis,
    extract_slit_spectrum,
    slit_spatial_profile,
    SpectrumGenerator,
    SpectrumSearchService,
    apply_correction,
    classify_nearest_centroid,
    collapse_cube,
    common_grid,
    integrate_flux,
    make_composite,
    normalize,
    overlap_matrix,
    resample_flux,
    resample_spectrum,
)


@pytest.fixture(scope="module")
def gen():
    return SpectrumGenerator(n_bins=128, n_classes=3, seed=11)


@pytest.fixture(scope="module")
def training_set(gen):
    return [gen.make(class_id=i % 3, redshift=0.01) for i in range(60)]


class TestGenerator:
    def test_vectors_have_matching_lengths(self, gen):
        s = gen.make()
        assert s.wave.shape == s.flux.shape == s.error.shape == \
            s.flags.shape

    def test_flags_are_int16(self, gen):
        assert gen.make().flags.dtype.name == "int16"

    def test_bad_fraction_controls_flags(self, gen):
        clean = gen.make(bad_fraction=0.0)
        assert clean.good_mask().all()
        dirty = gen.make(bad_fraction=0.3)
        assert (~dirty.good_mask()).sum() > 0

    def test_wavelengths_increase(self, gen):
        w = gen.make().wave.to_numpy()
        assert (np.diff(w) > 0).all()

    def test_class_id_validation(self, gen):
        with pytest.raises(ValueError):
            gen.make(class_id=99)

    def test_slit_and_cube_shapes(self, gen):
        wave, pos, flux2d = gen.make_slit(n_positions=10)
        assert flux2d.shape == (wave.shape[0], 10)
        wave, cube = gen.make_ifu_cube(n_side=5)
        assert cube.shape == (wave.shape[0], 5, 5)


class TestResample:
    def test_overlap_matrix_rows_sum_to_one_when_covered(self):
        src = np.linspace(0, 10, 21)
        dst = np.linspace(1, 9, 9)
        w = overlap_matrix(src, dst)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_flux_conservation_exact(self, rng):
        """The paper's requirement: "the integrated flux in any
        wavelength range remains the same"."""
        src = np.sort(rng.uniform(0, 10, 30))
        src[0], src[-1] = 0.0, 10.0
        flux = rng.random(29)
        dst = np.linspace(0, 10, 13)
        out = resample_flux(src, flux, dst)
        total_in = (flux * np.diff(src)).sum()
        total_out = (out * np.diff(dst)).sum()
        assert total_out == pytest.approx(total_in, rel=1e-12)

    def test_identity_grid_is_identity(self, rng):
        edges = np.linspace(0, 5, 11)
        flux = rng.random(10)
        np.testing.assert_allclose(resample_flux(edges, flux, edges),
                                   flux)

    def test_constant_field_preserved(self):
        src = np.linspace(0, 1, 11)
        dst = np.linspace(0.1, 0.9, 7)
        out = resample_flux(src, np.full(10, 3.0), dst)
        np.testing.assert_allclose(out, 3.0)

    def test_order_1_also_conserves(self, rng):
        src = np.linspace(0, 10, 31)
        flux = np.sin(np.linspace(0, 3, 30)) + 2
        dst = np.linspace(0, 10, 11)
        out0 = resample_flux(src, flux, dst, order=0)
        out1 = resample_flux(src, flux, dst, order=1)
        total_in = (flux * np.diff(src)).sum()
        assert (out1 * np.diff(dst)).sum() == \
            pytest.approx(total_in, rel=1e-10)
        # Higher order tracks a smooth signal at least as well.
        fine = np.sin(np.linspace(0, 3, 30)) + 2
        assert np.abs(out1 - out0).max() < 1.0

    def test_uncovered_target_bins_are_zero(self):
        src = np.linspace(2, 4, 5)
        out = resample_flux(src, np.ones(4), np.linspace(0, 1, 3))
        np.testing.assert_allclose(out, 0.0)

    def test_edge_validation(self):
        with pytest.raises(ShapeError):
            resample_flux([3, 2, 1], [1, 1], [0, 1])
        with pytest.raises(ShapeError):
            resample_flux([0, 1, 2], [1.0], [0, 1])

    def test_resample_spectrum_wrapper(self, gen):
        s = gen.make(bad_fraction=0.0)
        edges = common_grid([s], 64)
        out = resample_spectrum(s.wave, s.flux, edges)
        assert out.shape == (64,)

    def test_common_grid_intersection(self, gen):
        spectra = [gen.make() for _ in range(5)]
        edges = common_grid(spectra)
        for s in spectra:
            w = s.wave.to_numpy()
            assert edges[0] >= w[0] - 1e-9
            assert edges[-1] <= w[-1] + 1e-9


class TestProcessing:
    def test_normalize_unit_integral(self, gen):
        s = gen.make(bad_fraction=0.0)
        w = s.wave.to_numpy()
        lo, hi = w[10], w[-10]
        n = normalize(s, lo, hi)
        assert integrate_flux(n.wave, n.flux, lo, hi) == \
            pytest.approx(1.0, rel=1e-9)

    def test_normalize_error_scales(self, gen):
        s = gen.make(bad_fraction=0.0)
        w = s.wave.to_numpy()
        n = normalize(s, w[10], w[-10])
        ratio_f = n.flux.to_numpy()[50] / s.flux.to_numpy()[50]
        ratio_e = n.error.to_numpy()[50] / s.error.to_numpy()[50]
        assert ratio_e == pytest.approx(abs(ratio_f), rel=1e-9)

    def test_integration_window_validation(self, gen):
        s = gen.make()
        with pytest.raises(ShapeError):
            integrate_flux(s.wave, s.flux, 5000.0, 5000.0)
        with pytest.raises(ShapeError):
            integrate_flux(s.wave, s.flux, 1.0, 2.0)  # outside range

    def test_apply_correction(self, gen):
        s = gen.make(bad_fraction=0.0)
        doubled = apply_correction(s, lambda w: np.full_like(w, 2.0))
        np.testing.assert_allclose(doubled.flux.to_numpy(),
                                   2 * s.flux.to_numpy())

    def test_correction_shape_checked(self, gen):
        with pytest.raises(ShapeError):
            apply_correction(gen.make(), lambda w: np.zeros(3))

    def test_collapse_cube_sums_spatial_axes(self, gen):
        _wave, cube = gen.make_ifu_cube(4)
        total = collapse_cube(cube, 0)
        np.testing.assert_allclose(
            total.to_numpy(), cube.to_numpy().sum(axis=(1, 2)),
            rtol=1e-9)

    def test_composite_improves_snr(self, gen):
        noisy = [gen.make(class_id=0, redshift=0.0, snr=5.0,
                          bad_fraction=0.0) for _ in range(40)]
        edges, comp = make_composite(noisy, 64)
        centers = 0.5 * (edges[:-1] + edges[1:])
        template = gen.template_flux(0, 0.0, centers)
        # Normalize both before comparing shapes.
        comp_v = comp.to_numpy()
        comp_v /= comp_v.mean()
        template /= template.mean()
        one = noisy[0]
        one_r = resample_spectrum(one.wave, one.flux, edges).to_numpy()
        one_r /= one_r.mean()
        err_comp = np.abs(comp_v - template).mean()
        err_one = np.abs(one_r - template).mean()
        assert err_comp < err_one


class TestClassification:
    def test_accuracy_on_held_out(self, gen, training_set):
        basis = SpectrumBasis(n_components=4, n_bins=64)
        basis.fit(training_set)
        coeffs = basis.expand_many(training_set)
        labels = [s.class_id for s in training_set]
        test = [gen.make(class_id=i % 3, redshift=0.01)
                for i in range(30)]
        pred = classify_nearest_centroid(
            coeffs, labels, basis.expand_many(test))
        accuracy = (pred == np.array([t.class_id for t in test])).mean()
        assert accuracy >= 0.7

    def test_masked_expansion_robust_to_flags(self, gen, training_set):
        basis = SpectrumBasis(n_components=4, n_bins=64)
        basis.fit(training_set)
        clean = gen.make(class_id=1, redshift=0.01, bad_fraction=0.0)
        c_clean = basis.expand(clean).to_numpy()
        # Corrupt some bins but flag them.
        flagged = gen.make(class_id=1, redshift=0.01, bad_fraction=0.15)
        c_flagged = basis.expand(flagged).to_numpy()
        assert np.isfinite(c_flagged).all()
        # Same class: coefficients land near the clean ones.
        assert np.linalg.norm(c_flagged - c_clean) < \
            3 * np.linalg.norm(c_clean)

    def test_reconstruct_shape(self, training_set):
        basis = SpectrumBasis(n_components=3, n_bins=64)
        basis.fit(training_set)
        flux = basis.reconstruct(basis.expand(training_set[0]))
        assert flux.shape == (64,)


class TestSearch:
    def test_self_search_finds_self(self, training_set):
        svc = SpectrumSearchService(SpectrumBasis(4, 64))
        svc.build(training_set)
        results = svc.search(training_set[7], k=1)
        assert results[0][0] == 7

    def test_neighbours_share_class(self, gen, training_set):
        svc = SpectrumSearchService(SpectrumBasis(4, 64))
        svc.build(training_set)
        query = gen.make(class_id=2, redshift=0.01)
        top = svc.search(query, k=5)
        classes = [s.class_id for _i, _d, s in top]
        assert classes.count(2) >= 3

    def test_sqlite_storage_agrees_with_kdtree(self, gen, training_set):
        from repro.sqlbind import connect
        svc = SpectrumSearchService(SpectrumBasis(4, 64),
                                    conn=connect())
        svc.build(training_set)
        query = gen.make(class_id=0, redshift=0.01)
        via_tree = [i for i, _d, _s in svc.search(query, k=4)]
        via_sql = [i for i, _d in svc.search_stored(query, k=4)]
        assert via_tree == via_sql

    def test_unbuilt_search_rejected(self, training_set):
        from repro.core import AggregateError
        with pytest.raises(AggregateError):
            SpectrumSearchService().search(training_set[0])


class TestSlitProcessing:
    def test_extract_slit_spectrum(self, gen):
        _wave, _pos, flux2d = gen.make_slit(n_positions=10)
        col = extract_slit_spectrum(flux2d, 4)
        assert col.shape == (flux2d.shape[0],)
        np.testing.assert_allclose(col.to_numpy(),
                                   flux2d.to_numpy()[:, 4])

    def test_extract_position_out_of_range(self, gen):
        _wave, _pos, flux2d = gen.make_slit(n_positions=6)
        with pytest.raises(ShapeError):
            extract_slit_spectrum(flux2d, 6)

    def test_spatial_profile(self, gen):
        _wave, _pos, flux2d = gen.make_slit(n_positions=12)
        profile = slit_spatial_profile(flux2d)
        assert profile.shape == (12,)
        np.testing.assert_allclose(profile.to_numpy(),
                                   flux2d.to_numpy().sum(axis=0))
        # The synthetic source is centered: flux peaks mid-slit.
        peak = int(np.argmax(profile.to_numpy()))
        assert 3 <= peak <= 8

    def test_rank_validation(self, gen):
        s = gen.make()
        with pytest.raises(ShapeError):
            extract_slit_spectrum(s.flux, 0)
        with pytest.raises(ShapeError):
            slit_spatial_profile(s.flux)


class TestResampleProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), n_src=st.integers(4, 40),
           n_dst=st.integers(2, 40))
    def test_conservation_property(self, seed, n_src, n_dst):
        """Flux conservation holds for arbitrary grids covering the
        same range (the paper's hard requirement, fuzzed)."""
        gen = np.random.default_rng(seed)
        src = np.concatenate([[0.0], np.sort(gen.uniform(0, 10, n_src)),
                              [10.0]])
        src = np.unique(src)
        if len(src) < 2:
            return
        dst = np.linspace(0.0, 10.0, n_dst + 1)
        flux = gen.uniform(-5, 5, len(src) - 1)
        out = resample_flux(src, flux, dst)
        np.testing.assert_allclose(
            (out * np.diff(dst)).sum(),
            (flux * np.diff(src)).sum(), rtol=1e-9, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_output_within_input_range(self, seed):
        """Order-0 rebinning is an average: no new extrema."""
        gen = np.random.default_rng(seed)
        src = np.linspace(0, 1, 21)
        dst = np.sort(gen.uniform(0, 1, 8))
        if len(np.unique(dst)) < 2:
            return
        dst = np.unique(dst)
        flux = gen.uniform(-3, 3, 20)
        out = resample_flux(src, flux, dst)
        assert out.min() >= flux.min() - 1e-12
        assert out.max() <= flux.max() + 1e-12
