"""Tests for time-dependent turbulence queries (positions AND times)."""

import numpy as np
import pytest

from repro.science.turbulence import (
    BlobPartitioner,
    ParticleQueryService,
    SnapshotSeries,
    TemporalQueryService,
    make_field,
)

GRID = 16


def _series(n_snaps=4):
    series = SnapshotSeries(BlobPartitioner(GRID, 8, 4))
    for step in range(n_snaps):
        series.add_snapshot(float(step), make_field(GRID, seed=step))
    return series


@pytest.fixture(scope="module")
def series():
    return _series()


class TestSnapshotSeries:
    def test_times_must_increase(self):
        s = SnapshotSeries(BlobPartitioner(GRID, 8, 4))
        s.add_snapshot(0.0, make_field(GRID, seed=0))
        with pytest.raises(ValueError):
            s.add_snapshot(0.0, make_field(GRID, seed=1))

    def test_bracketing(self, series):
        assert series.bracketing(0.0) == (0, 0, 0.0)
        assert series.bracketing(3.0) == (3, 3, 0.0)
        i0, i1, w = series.bracketing(1.25)
        assert (i0, i1) == (1, 2)
        assert w == pytest.approx(0.25)

    def test_out_of_range_rejected(self, series):
        with pytest.raises(ValueError):
            series.bracketing(-0.1)
        with pytest.raises(ValueError):
            series.bracketing(3.1)

    def test_empty_series_rejected(self):
        s = SnapshotSeries(BlobPartitioner(GRID, 8, 4))
        with pytest.raises(ValueError):
            s.bracketing(0.0)
        with pytest.raises(ValueError):
            TemporalQueryService(s)


class TestLinearTime:
    def test_exact_at_snapshot_times(self, series):
        svc = TemporalQueryService(series, "lagrange4")
        rng = np.random.default_rng(0)
        field = make_field(GRID, seed=2)
        pos = rng.random((20, 3)) * field.box_size
        v, _s = svc.query(pos, np.full(20, 2.0))
        spatial = ParticleQueryService(series.store_at(2), "lagrange4")
        ref, _s = spatial.query(pos)
        np.testing.assert_allclose(v, ref, rtol=1e-6)

    def test_midpoint_is_average(self, series):
        svc = TemporalQueryService(series, "lagrange4")
        pos = np.array([[1.0, 2.0, 3.0]])
        v_mid, _s = svc.query(pos, [1.5])
        v0, _s = svc.query(pos, [1.0])
        v1, _s = svc.query(pos, [2.0])
        np.testing.assert_allclose(v_mid, 0.5 * (v0 + v1), rtol=1e-6)

    def test_continuous_in_time(self, series):
        svc = TemporalQueryService(series, "lagrange4")
        pos = np.array([[2.0, 2.0, 2.0]])
        v_a, _s = svc.query(pos, [1.999])
        v_b, _s = svc.query(pos, [2.001])
        assert np.abs(v_a - v_b).max() < 0.05

    def test_mixed_times_batched(self, series):
        svc = TemporalQueryService(series, "lagrange4")
        rng = np.random.default_rng(1)
        pos = rng.random((30, 3)) * series.store_at(0).box_size
        times = rng.uniform(0.0, 3.0, 30)
        v, stats = svc.query(pos, times)
        assert v.shape == (30, 3)
        assert np.isfinite(v).all()
        assert stats.particles == 30
        # Cross-check each particle individually.
        for i in (0, 7, 29):
            vi, _s = svc.query(pos[i:i + 1], times[i:i + 1])
            np.testing.assert_allclose(vi[0], v[i], rtol=1e-9)

    def test_one_time_per_position_required(self, series):
        svc = TemporalQueryService(series, "lagrange4")
        with pytest.raises(ValueError):
            svc.query(np.zeros((3, 3)), [0.0, 1.0])


class TestPchipTime:
    def test_needs_four_snapshots(self):
        with pytest.raises(ValueError):
            TemporalQueryService(_series(3), time_interp="pchip")

    def test_exact_at_interior_snapshot_times(self, series):
        svc = TemporalQueryService(series, "lagrange4",
                                   time_interp="pchip")
        pos = np.array([[1.0, 1.0, 1.0], [3.0, 2.0, 1.0]])
        v, _s = svc.query(pos, [1.0, 2.0])
        lin = TemporalQueryService(series, "lagrange4")
        ref, _s = lin.query(pos, [1.0, 2.0])
        np.testing.assert_allclose(v, ref, atol=1e-9)

    def test_no_overshoot_between_steps(self, series):
        """PCHIP in time stays within the bracketing snapshot values."""
        svc = TemporalQueryService(series, "lagrange4",
                                   time_interp="pchip")
        lin = TemporalQueryService(series, "lagrange4")
        pos = np.array([[2.5, 2.5, 2.5]])
        v0, _ = lin.query(pos, [1.0])
        v1, _ = lin.query(pos, [2.0])
        lo = np.minimum(v0, v1) - 1e-9
        hi = np.maximum(v0, v1) + 1e-9
        for t in np.linspace(1.0, 2.0, 9):
            v, _ = svc.query(pos, [t])
            assert ((v >= lo) & (v <= hi)).all()

    def test_invalid_mode(self, series):
        with pytest.raises(ValueError):
            TemporalQueryService(series, time_interp="spline")


class TestPersistentBackends:
    def test_sqlite_backed_series(self):
        """Each snapshot step in its own SQLite blob table — the
        (time step, z-index) storage layout of the paper's database."""
        from repro.science.turbulence import SqliteBlobBackend
        from repro.sqlbind import connect

        conn = connect()
        counter = [0]

        def factory():
            counter[0] += 1
            return SqliteBlobBackend(conn, f"turb_step{counter[0]}")

        series = SnapshotSeries(BlobPartitioner(GRID, 8, 4), factory)
        for step in range(3):
            series.add_snapshot(float(step), make_field(GRID, seed=step))
        svc = TemporalQueryService(series, "lagrange4")
        pos = np.random.default_rng(0).random((10, 3)) \
            * series.store_at(0).box_size
        v, stats = svc.query(pos, np.full(10, 1.5))
        assert np.isfinite(v).all()
        assert stats.bytes_read > 0
        # Three blob tables really exist in SQLite.
        names = [r[0] for r in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name LIKE 'turb_step%'")]
        assert len(names) == 3

    def test_engine_backed_series(self):
        from repro.engine import Database
        from repro.science.turbulence import EngineBlobBackend

        db = Database()
        counter = [0]

        def factory():
            counter[0] += 1
            return EngineBlobBackend(db, f"turb_step{counter[0]}")

        series = SnapshotSeries(BlobPartitioner(GRID, 8, 4), factory)
        for step in range(2):
            series.add_snapshot(float(step), make_field(GRID, seed=step))
        svc = TemporalQueryService(series, "lagrange4")
        pos = np.random.default_rng(1).random((5, 3)) \
            * series.store_at(0).box_size
        v, _stats = svc.query(pos, np.full(5, 0.5))
        assert np.isfinite(v).all()
        assert db.pool.counters.logical_reads > 0
