"""Spectrum archive tests (the SQL-backed Spectrum Services)."""

import numpy as np
import pytest

from repro.core import AggregateError
from repro.science.spectra import SpectrumArchive, SpectrumGenerator
from repro.sqlbind import connect


@pytest.fixture(scope="module")
def archive():
    gen = SpectrumGenerator(n_bins=96, n_classes=3, seed=21)
    arch = SpectrumArchive(connect())
    spectra = []
    for i in range(90):
        s = gen.make(class_id=i % 3, redshift=0.02 + 0.02 * (i % 5))
        spectra.append(s)
    ids = arch.add_many(spectra)
    return gen, arch, spectra, ids


class TestStorage:
    def test_size(self, archive):
        _gen, arch, spectra, _ids = archive
        assert arch.size == len(spectra)

    def test_roundtrip(self, archive):
        _gen, arch, spectra, ids = archive
        got = arch.get(ids[7])
        want = spectra[7]
        np.testing.assert_array_equal(got.flux.to_numpy(),
                                      want.flux.to_numpy())
        np.testing.assert_array_equal(got.flags.to_numpy(),
                                      want.flags.to_numpy())
        assert got.redshift == want.redshift
        assert got.class_id == want.class_id

    def test_missing_id(self, archive):
        _gen, arch, _s, _ids = archive
        with pytest.raises(KeyError):
            arch.get(10 ** 9)

    def test_by_redshift(self, archive):
        _gen, arch, spectra, _ids = archive
        got = arch.by_redshift(0.03, 0.07)
        want = [s for s in spectra if 0.03 <= s.redshift < 0.07]
        assert len(got) == len(want)
        assert all(0.03 <= s.redshift < 0.07 for s in got)


class TestSqlProcessing:
    def test_composites_by_redshift_bin(self, archive):
        _gen, arch, spectra, _ids = archive
        rows = arch.sql_composites_by_redshift(0.02)
        assert sum(count for _b, count, _c in rows) == len(spectra)
        for zbin, count, composite in rows:
            members = [s for s in spectra
                       if int(s.redshift / 0.02) == zbin]
            assert count == len(members)
            expected = np.mean([m.flux.to_numpy() for m in members],
                               axis=0)
            np.testing.assert_allclose(composite.to_numpy(), expected,
                                       rtol=1e-12)

    def test_bin_width_validation(self, archive):
        _gen, arch, _s, _ids = archive
        with pytest.raises(AggregateError):
            arch.sql_composites_by_redshift(0.0)

    def test_flux_statistics(self, archive):
        _gen, arch, spectra, _ids = archive
        stats = arch.sql_flux_statistics()
        assert stats["count"] == len(spectra)
        lo = min(s.flux.to_numpy().min() for s in spectra)
        hi = max(s.flux.to_numpy().max() for s in spectra)
        assert stats["min_flux"] == pytest.approx(lo)
        assert stats["max_flux"] == pytest.approx(hi)


class TestSearch:
    def test_requires_index(self, archive):
        gen, arch, _s, _ids = archive
        fresh = SpectrumArchive(connect())
        fresh.add(gen.make())
        with pytest.raises(AggregateError):
            fresh.find_similar(gen.make())

    def test_similarity_search(self, archive):
        gen, arch, _spectra, _ids = archive
        arch.build_search_index(n_components=4, n_bins=64)
        query = gen.make(class_id=1, redshift=0.03)
        results = arch.find_similar(query, k=5)
        assert len(results) == 5
        classes = [s.class_id for _i, _d, s in results]
        assert classes.count(1) >= 3
