"""N-body use-case tests (Section 2.3)."""

import numpy as np
import pytest

from repro.science.nbody import (
    MergerTree,
    UnionFind,
    ZeldovichSimulation,
    bucketize,
    build_lightcone,
    cic_density,
    density_contrast,
    density_fourier_modes,
    find_halos,
    friends_of_friends,
    link_halos,
    pair_counts,
    power_spectrum,
    three_point_counts,
    two_point_correlation,
)

BOX = 100.0


@pytest.fixture(scope="module")
def sim():
    return ZeldovichSimulation(particles_per_axis=16, box_size=BOX,
                               spectral_index=-3.0, seed=5)


@pytest.fixture(scope="module")
def snap(sim):
    return sim.snapshot(2.5)


class TestSnapshots:
    def test_particles_stay_in_box(self, sim):
        for g in (0.0, 1.0, 5.0):
            s = sim.snapshot(g)
            assert (s.positions >= 0).all()
            assert (s.positions < BOX).all()

    def test_growth_zero_is_uniform_grid(self, sim):
        s = sim.snapshot(0.0)
        assert np.allclose(s.velocities, 0.0)
        spacing = BOX / 16
        np.testing.assert_allclose(np.sort(np.unique(s.positions[:, 0])),
                                   (np.arange(16) + 0.5) * spacing)

    def test_ids_stable_across_snapshots(self, sim):
        a, b = sim.snapshot(0.5), sim.snapshot(1.5)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_velocities_proportional_to_displacement_rate(self, sim):
        s1 = sim.snapshot(1.0, growth_rate=1.0)
        s2 = sim.snapshot(1.0, growth_rate=2.0)
        np.testing.assert_allclose(s2.velocities, 2 * s1.velocities)

    def test_clustering_grows(self, sim):
        """Later epochs are more clustered: CIC density variance
        rises."""
        early = sim.snapshot(0.5)
        late = sim.snapshot(2.5)
        var_early = cic_density(early.positions, BOX, 8).var()
        var_late = cic_density(late.positions, BOX, 8).var()
        assert var_late > var_early

    def test_bucketize_partitions_all(self, snap):
        buckets = bucketize(snap, 4)
        assert sum(b.n_particles for b in buckets) == snap.n_particles
        ids = np.concatenate([b.ids.to_numpy() for b in buckets])
        assert len(np.unique(ids)) == snap.n_particles
        # Bucket ids ascend along the z-curve.
        bids = [b.bucket_id for b in buckets]
        assert bids == sorted(bids)

    def test_bucket_arrays_roundtrip(self, snap):
        b = bucketize(snap, 2)[0]
        pos = b.positions.to_numpy()
        assert pos.shape[1] == 3
        assert b.ids.dtype.name == "int64"


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(1)
        assert uf.find(3) == uf.find(4)
        assert uf.find(0) != uf.find(3)

    def test_transitive(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(2, 3)
        labels = uf.labels()
        assert len(set(labels[:4])) == 1
        assert labels[4] != labels[0]


class TestFof:
    def test_two_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = 20 + rng.normal(0, 0.5, (50, 3))
        b = 70 + rng.normal(0, 0.5, (50, 3))
        pts = np.concatenate([a, b])
        labels = friends_of_friends(pts, BOX, 5.0)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_matches_brute_force(self, rng):
        pts = rng.random((120, 3)) * BOX
        b = 8.0
        labels = friends_of_friends(pts, BOX, b)
        # Brute-force connected components via repeated expansion.
        diff = np.abs(pts[:, None, :] - pts[None])
        diff = np.minimum(diff, BOX - diff)
        adj = (diff ** 2).sum(axis=2) <= b * b
        reach = adj.copy()
        for _ in range(len(pts)):
            newr = reach @ adj
            if (newr == reach).all():
                break
            reach = newr
        for i in range(len(pts)):
            for j in range(len(pts)):
                assert (labels[i] == labels[j]) == bool(reach[i, j])

    def test_periodic_wrap_links_across_boundary(self):
        pts = np.array([[0.5, 50.0, 50.0], [99.5, 50.0, 50.0]])
        labels = friends_of_friends(pts, BOX, 2.0)
        assert labels[0] == labels[1]

    def test_linking_length_validation(self, rng):
        pts = rng.random((10, 3)) * BOX
        with pytest.raises(ValueError):
            friends_of_friends(pts, BOX, 0.0)
        with pytest.raises(ValueError):
            friends_of_friends(pts, BOX, 50.0)

    def test_empty_input(self):
        assert len(friends_of_friends(np.empty((0, 3)), BOX, 1.0)) == 0

    def test_find_halos_filters_and_sorts(self, snap):
        halos = find_halos(snap.positions, snap.ids, BOX,
                           BOX / 16 * 0.4, min_members=8)
        assert len(halos) > 0
        sizes = [h.n_members for h in halos]
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 8 for s in sizes)

    def test_halo_center_inside_box(self, snap):
        halos = find_halos(snap.positions, snap.ids, BOX,
                           BOX / 16 * 0.4, min_members=8)
        for h in halos:
            assert ((h.center >= 0) & (h.center < BOX)).all()


class TestMergerTree:
    @pytest.fixture(scope="class")
    def halo_lists(self, sim):
        return [find_halos(s.positions, s.ids, BOX, BOX / 16 * 0.4,
                           min_members=6)
                for s in sim.snapshots([1.5, 2.0, 2.5])]

    def test_links_by_shared_ids(self, halo_lists):
        links = link_halos(halo_lists[0], halo_lists[1],
                           min_fraction=0.3)
        assert links, "expected at least one progenitor link"
        for link in links:
            earlier = set(halo_lists[0][link.progenitor].member_ids)
            later = set(halo_lists[1][link.descendant].member_ids)
            assert len(earlier & later) == link.shared
            assert link.fraction >= 0.3

    def test_tree_progenitors_and_descendants(self, halo_lists):
        tree = MergerTree.from_halo_lists(halo_lists, min_fraction=0.3)
        assert tree.n_steps == 3
        for link in tree.links_per_step[0]:
            assert link.progenitor in \
                tree.progenitors(1, link.descendant)
            assert tree.descendant(0, link.progenitor) == \
                link.descendant

    def test_main_branch_walks_back(self, halo_lists):
        tree = MergerTree.from_halo_lists(halo_lists, min_fraction=0.3)
        if tree.halos_per_step[2]:
            branch = tree.main_branch(2, 0)
            steps = [s for s, _i in branch]
            assert steps == sorted(steps, reverse=True)

    def test_min_fraction_validation(self, halo_lists):
        with pytest.raises(ValueError):
            link_halos(halo_lists[0], halo_lists[1], min_fraction=0.0)


class TestCic:
    def test_mass_conservation(self, snap):
        d = cic_density(snap.positions, BOX, 12)
        assert d.sum() == pytest.approx(snap.n_particles, rel=1e-12)

    def test_single_particle_at_cell_center(self):
        # A particle exactly at a cell center puts all mass there.
        g = 8
        pos = np.array([[(2 + 0.5) * BOX / g, (3 + 0.5) * BOX / g,
                         (4 + 0.5) * BOX / g]])
        d = cic_density(pos, BOX, g)
        assert d[2, 3, 4] == pytest.approx(1.0)

    def test_particle_between_cells_splits_mass(self):
        g = 8
        cell = BOX / g
        pos = np.array([[3 * cell, 0.5 * cell, 0.5 * cell]])
        d = cic_density(pos, BOX, g)
        assert d[2, 0, 0] == pytest.approx(0.5)
        assert d[3, 0, 0] == pytest.approx(0.5)

    def test_periodic_wrap(self):
        g = 8
        pos = np.array([[BOX - 1e-9, BOX / g * 0.5, BOX / g * 0.5]])
        d = cic_density(pos, BOX, g)
        assert d.sum() == pytest.approx(1.0)
        # Mass split between the last and first cell on axis 0.
        assert d[7, 0, 0] + d[0, 0, 0] == pytest.approx(1.0)

    def test_weights(self):
        pos = np.array([[50.0, 50.0, 50.0]])
        d = cic_density(pos, BOX, 4, weights=np.array([2.5]))
        assert d.sum() == pytest.approx(2.5)

    def test_density_contrast_zero_mean(self, snap):
        delta = density_contrast(cic_density(snap.positions, BOX, 8))
        assert delta.mean() == pytest.approx(0.0, abs=1e-12)


class TestPowerSpectrum:
    def test_uniform_grid_has_no_power(self, sim):
        s = sim.snapshot(0.0)
        delta = density_contrast(cic_density(s.positions, BOX, 16))
        _k, pk, _n = power_spectrum(delta, BOX)
        assert np.abs(pk).max() < 1e-20

    def test_clustered_field_has_power(self, snap):
        delta = density_contrast(cic_density(snap.positions, BOX, 16))
        _k, pk, counts = power_spectrum(delta, BOX)
        assert pk[counts > 0].max() > 0

    def test_single_mode_lands_in_right_bin(self):
        g = 32
        x = np.arange(g) * (BOX / g)
        delta = np.cos(2 * np.pi * 4 * x / BOX)[:, None, None] \
            * np.ones((1, g, g))
        k, pk, _c = power_spectrum(delta, BOX, n_bins=16)
        k_expected = 2 * np.pi * 4 / BOX
        assert abs(k[np.argmax(pk)] - k_expected) < 2 * np.pi / BOX

    def test_fourier_modes_cube_truncation(self, snap):
        delta = density_contrast(cic_density(snap.positions, BOX, 16))
        modes = density_fourier_modes(delta, keep=8)
        assert modes.shape == (8, 8, 8)
        assert modes.dtype.is_complex

    def test_validation(self):
        with pytest.raises(ValueError):
            power_spectrum(np.zeros((4, 5, 4)), BOX)


class TestCorrelation:
    def test_uniform_points_have_no_correlation(self, rng):
        pts = rng.random((600, 3)) * BOX
        edges = np.linspace(3, 15, 5)
        _r, xi = two_point_correlation(pts, BOX, edges, n_random=1200,
                                       seed=2)
        assert np.abs(xi).max() < 0.5

    def test_clustered_points_positive_at_small_r(self, rng):
        centers = rng.random((25, 3)) * BOX
        pts = (centers[:, None, :] +
               rng.normal(0, 1.0, (25, 20, 3))).reshape(-1, 3) % BOX
        edges = np.array([0.5, 2.0, 10.0, 20.0])
        _r, xi = two_point_correlation(pts, BOX, edges, n_random=1000,
                                       seed=3)
        assert xi[0] > 1.0          # strong clustering at small r
        assert xi[0] > xi[-1]       # decreasing with separation

    def test_pair_counts_match_brute_force(self, rng):
        pts = rng.random((80, 3)) * BOX
        edges = np.linspace(2, 20, 4)
        got = pair_counts(pts, edges, BOX)
        diff = np.abs(pts[:, None] - pts[None])
        diff = np.minimum(diff, BOX - diff)
        d = np.sqrt((diff ** 2).sum(axis=2))
        iu = np.triu_indices(len(pts), k=1)
        want = np.histogram(d[iu], bins=edges)[0]
        np.testing.assert_array_equal(got, want)

    def test_separation_limit_enforced(self, rng):
        with pytest.raises(ValueError):
            pair_counts(rng.random((10, 3)) * BOX,
                        np.array([1.0, 60.0]), BOX)

    def test_three_point_counts_positive_for_triangles(self):
        # An equilateral triangle of side 5 plus isolated points.
        base = np.array([[50.0, 50.0, 50.0],
                         [55.0, 50.0, 50.0],
                         [52.5, 50.0 + 5 * np.sqrt(3) / 2, 50.0]])
        pts = np.concatenate([base, [[10.0, 10.0, 10.0]]])
        n = three_point_counts(pts, BOX, 5.0, 5.0, tolerance=0.1)
        assert n == 3  # one triangle counted once per vertex


class TestLightcone:
    def test_shells_use_corresponding_snapshots(self, sim):
        snaps = sim.snapshots([2.5, 2.0, 1.5, 1.0])  # latest first
        entries = build_lightcone(snaps, [50, 50, 50], [1, 0, 0],
                                  0.6, 48.0)
        assert entries
        shell = 48.0 / 4
        for e in entries:
            assert e.step == min(int(e.distance // shell), 3)

    def test_entries_sorted_and_in_cone(self, sim):
        snaps = sim.snapshots([2.0, 1.0])
        axis = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        entries = build_lightcone(snaps, [50, 50, 50], axis, 0.5, 40.0)
        dists = [e.distance for e in entries]
        assert dists == sorted(dists)
        for e in entries[:50]:
            cosang = (e.position @ axis) / e.distance
            assert cosang >= np.cos(0.5) - 1e-9

    def test_redshift_includes_doppler(self, sim):
        snaps = sim.snapshots([2.0])
        entries = build_lightcone(snaps, [50, 50, 50], [1, 0, 0],
                                  0.8, 40.0, hubble=0.1)
        from repro.science.nbody.lightcone import SPEED_OF_LIGHT
        snap = snaps[0]
        for e in entries[:20]:
            radial = e.position / e.distance
            idx = int(np.nonzero(snap.ids == e.particle_id)[0][0])
            v_los = snap.velocities[idx] @ radial
            expected = 0.1 * e.distance / SPEED_OF_LIGHT \
                + v_los / SPEED_OF_LIGHT
            assert e.redshift == pytest.approx(expected, rel=1e-9)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            build_lightcone([], [0, 0, 0], [1, 0, 0], 0.5, 10.0)
        with pytest.raises(ValueError):
            build_lightcone(sim.snapshots([1.0]), [0, 0, 0],
                            [0, 0, 0], 0.5, 10.0)
