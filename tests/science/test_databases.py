"""Tests for the storage-facing science layers: the N-body particle
database and turbulence sub-domain retrieval."""

import numpy as np
import pytest

from repro.science.nbody import ParticleDatabase, ZeldovichSimulation
from repro.science.turbulence import (
    BlobPartitioner,
    MemoryBlobBackend,
    TurbulenceStore,
    extract_subdomain,
    make_field,
)
from repro.sqlbind import connect

BOX = 100.0


@pytest.fixture(scope="module")
def pdb():
    sim = ZeldovichSimulation(particles_per_axis=12, box_size=BOX,
                              spectral_index=-3.0, seed=7)
    db = ParticleDatabase(connect(), cells_per_axis=4)
    snaps = sim.snapshots([1.0, 1.5, 2.0])
    for s in snaps:
        db.store_snapshot(s)
    return db, snaps


class TestParticleDatabase:
    def test_bucket_rows_created(self, pdb):
        db, snaps = pdb
        assert db.bucket_count(0, 0) == 4 ** 3
        assert db.snapshots(0) == [0, 1, 2]

    def test_meta(self, pdb):
        db, snaps = pdb
        meta = db.meta(0, 1)
        assert meta["growth"] == snaps[1].growth
        assert meta["n_particles"] == snaps[1].n_particles
        with pytest.raises(KeyError):
            db.meta(0, 99)

    def test_load_snapshot_roundtrip(self, pdb):
        db, snaps = pdb
        ids, pos, vel = db.load_snapshot(0, 2)
        snap = snaps[2]
        order = np.argsort(ids)
        ref_order = np.argsort(snap.ids)
        np.testing.assert_array_equal(ids[order], snap.ids[ref_order])
        np.testing.assert_allclose(pos[order],
                                   snap.positions[ref_order])
        np.testing.assert_allclose(vel[order],
                                   snap.velocities[ref_order])

    def test_box_query_matches_brute_force(self, pdb):
        db, snaps = pdb
        lo, hi = np.array([20.0, 5.0, 50.0]), np.array([70.0, 60.0,
                                                        95.0])
        ids, pos, _vel = db.particles_in_box(0, 1, lo, hi)
        snap = snaps[1]
        mask = ((snap.positions >= lo) & (snap.positions < hi)).all(
            axis=1)
        assert sorted(ids) == sorted(snap.ids[mask])
        assert ((pos >= lo) & (pos < hi)).all()

    def test_box_query_touches_few_buckets(self, pdb):
        db, _snaps = pdb
        touched = db.buckets_touched_by_box(
            0, 0, (0.0, 0.0, 0.0), (30.0, 30.0, 30.0))
        assert 0 < touched < db.bucket_count(0, 0) / 4

    def test_empty_box(self, pdb):
        db, _snaps = pdb
        ids, pos, vel = db.particles_in_box(
            0, 0, (50.0, 50.0, 50.0), (50.0, 50.0, 50.0))
        assert len(ids) == 0

    def test_particle_track(self, pdb):
        db, snaps = pdb
        steps, track = db.particle_track(0, 100)
        assert list(steps) == [0, 1, 2]
        for step, position in zip(steps, track):
            snap = snaps[step]
            idx = int(np.nonzero(snap.ids == 100)[0][0])
            np.testing.assert_allclose(position, snap.positions[idx])

    def test_missing_particle(self, pdb):
        db, _snaps = pdb
        with pytest.raises(KeyError):
            db.particle_track(0, 10 ** 9)


@pytest.fixture(scope="module")
def turb_store():
    field = make_field(32, seed=3)
    store = TurbulenceStore(BlobPartitioner(32, 16, 4),
                            MemoryBlobBackend())
    store.load_field(field)
    return field, store


class TestSubdomain:
    def test_matches_source_field(self, turb_store):
        field, store = turb_store
        data, _stats = extract_subdomain(store, (5, 10, 3),
                                         (25, 20, 30))
        np.testing.assert_allclose(data,
                                   field.data[:, 5:25, 10:20, 3:30])

    def test_full_domain(self, turb_store):
        field, store = turb_store
        data, _stats = extract_subdomain(store, (0, 0, 0),
                                         (32, 32, 32))
        np.testing.assert_allclose(data, field.data)

    def test_single_voxel(self, turb_store):
        field, store = turb_store
        data, stats = extract_subdomain(store, (7, 8, 9), (8, 9, 10))
        np.testing.assert_allclose(data[:, 0, 0, 0],
                                   field.data[:, 7, 8, 9])
        assert stats.blobs_opened == 1

    def test_component_subset(self, turb_store):
        field, store = turb_store
        data, _stats = extract_subdomain(store, (0, 0, 0), (8, 8, 8),
                                         components=(3,))
        np.testing.assert_allclose(data[0], field.data[3, :8, :8, :8])

    def test_partial_reads_save_io(self, turb_store):
        _field, store = turb_store
        _data, stats = extract_subdomain(store, (2, 2, 2), (10, 10, 10))
        assert stats.savings_factor > 5

    def test_validation(self, turb_store):
        _field, store = turb_store
        with pytest.raises(ValueError):
            extract_subdomain(store, (0, 0, 0), (0, 0, 0))
        with pytest.raises(ValueError):
            extract_subdomain(store, (0, 0, 0), (40, 8, 8))
        with pytest.raises(ValueError):
            extract_subdomain(store, (0, 0), (8, 8))
        with pytest.raises(ValueError):
            extract_subdomain(store, (0, 0, 0), (8, 8, 8),
                              components=(4,))
