"""Turbulence use-case tests (Section 2.1)."""

import numpy as np
import pytest

from repro.science.turbulence import (
    BlobPartitioner,
    EngineBlobBackend,
    MemoryBlobBackend,
    ParticleQueryService,
    SqliteBlobBackend,
    TurbulenceStore,
    interpolate_neighborhood,
    kernel_width,
    lagrange_weights,
    make_field,
    neighborhood_origin,
    pchip_interpolate_1d,
)


@pytest.fixture(scope="module")
def field():
    return make_field(grid_size=32, seed=7)


@pytest.fixture(scope="module")
def store(field):
    s = TurbulenceStore(BlobPartitioner(32, 16, 4), MemoryBlobBackend())
    s.load_field(field)
    return s


class TestField:
    def test_shape_and_dtype(self, field):
        assert field.data.shape == (4, 32, 32, 32)
        assert field.data.dtype == np.float32

    def test_reproducible(self):
        a = make_field(16, seed=3)
        b = make_field(16, seed=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_velocity_is_divergence_free_spectrally(self, field):
        # The projection is exact in Fourier space: k . u_k ~ 0.
        u = field.data[:3].astype("f8")
        k1 = np.fft.fftfreq(32, d=1.0 / 32)
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        uk = np.fft.fftn(u, axes=(1, 2, 3))
        div_k = kx * uk[0] + ky * uk[1] + kz * uk[2]
        assert np.abs(div_k).max() < 1e-5 * np.abs(uk).max()

    def test_unit_rms_velocity(self, field):
        assert field.data[:3].std() == pytest.approx(1.0, rel=0.05)

    def test_spectrum_slope_is_negative(self, field):
        # Energy must fall with k (Kolmogorov-ish).
        u = field.data[0].astype("f8")
        uk = np.abs(np.fft.fftn(u)) ** 2
        k1 = np.fft.fftfreq(32, d=1 / 32)
        kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
        kmag = np.sqrt(kx ** 2 + ky ** 2 + kz ** 2)
        low = uk[(kmag > 1) & (kmag < 3)].mean()
        high = uk[(kmag > 6) & (kmag < 10)].mean()
        assert high < low

    def test_grid_size_validation(self):
        with pytest.raises(ValueError):
            make_field(4)


class TestPartitioner:
    def test_paper_geometry(self):
        # The (64+8)^3 layout: 64 core, 4 ghost per face.
        p = BlobPartitioner(1024, 64, 4)
        assert p.blob_edge == 72
        assert p.cubes_per_axis == 16

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            BlobPartitioner(100, 64, 4)

    def test_ghost_range(self):
        with pytest.raises(ValueError):
            BlobPartitioner(64, 16, 16)

    def test_blob_contains_core_and_ghosts(self, field):
        p = BlobPartitioner(32, 16, 4)
        blob = p.extract_blob(field, 1, 0, 1)
        cube = blob.to_numpy()
        assert cube.shape == (4, 24, 24, 24)
        # Core voxel (0,0,0) of cube (1,0,1) is field voxel (16,0,16);
        # in the blob it sits at ghost offset (4,4,4).
        np.testing.assert_allclose(cube[:, 4, 4, 4],
                                   field.data[:, 16, 0, 16], rtol=1e-6)
        # Ghost voxel below the core wraps periodically.
        np.testing.assert_allclose(cube[:, 0, 4, 4],
                                   field.data[:, 12, 0, 16], rtol=1e-6)

    def test_store_load_count(self, store):
        assert len(store.backend.keys()) == 8
        assert len(store.cube_coordinates()) == 8


class TestInterpolationKernels:
    def test_lagrange_weights_sum_to_one(self):
        for m in (4, 6, 8):
            for t in (m / 2 - 1, m / 2 - 0.5, m / 2):
                assert lagrange_weights(m, t).sum() == \
                    pytest.approx(1.0)

    def test_lagrange_exact_on_polynomials(self):
        # m-point Lagrange reproduces degree m-1 polynomials exactly.
        for m in (4, 6, 8):
            nodes = np.arange(m, dtype="f8")
            poly = 0.3 * nodes ** (m - 1) - nodes + 2
            t = m / 2 - 0.3
            w = lagrange_weights(m, t)
            expected = 0.3 * t ** (m - 1) - t + 2
            assert w @ poly == pytest.approx(expected, rel=1e-9)

    def test_lagrange_at_node_is_exact(self):
        w = lagrange_weights(4, 1.0)
        np.testing.assert_allclose(w, [0, 1, 0, 0], atol=1e-12)

    def test_pchip_interpolates_endpoints(self):
        y = np.array([0.0, 1.0, 3.0, 2.0])
        assert pchip_interpolate_1d(y, 1.0) == pytest.approx(1.0)
        assert pchip_interpolate_1d(y, 2.0) == pytest.approx(3.0)

    def test_pchip_no_overshoot(self):
        # The monotone property: values stay within [y1, y2].
        y = np.array([0.0, 0.0, 1.0, 1.0])
        for t in np.linspace(1.0, 2.0, 21):
            v = pchip_interpolate_1d(y, t)
            assert -1e-12 <= v <= 1.0 + 1e-12

    def test_pchip_monotone_data_monotone_interp(self):
        y = np.array([0.0, 1.0, 2.0, 10.0])
        vals = [pchip_interpolate_1d(y, t)
                for t in np.linspace(1.0, 2.0, 11)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_neighborhood_shape_validation(self):
        with pytest.raises(ValueError):
            interpolate_neighborhood(np.zeros((4, 4, 3)), "lagrange4",
                                     1.5, 1.5, 1.5)
        with pytest.raises(ValueError):
            interpolate_neighborhood(np.zeros((4, 4, 4)), "spline",
                                     1.5, 1.5, 1.5)

    def test_kernel_width(self):
        assert kernel_width("lagrange8") == 8
        assert kernel_width("nearest") == 1
        with pytest.raises(ValueError):
            kernel_width("cubic")

    def test_neighborhood_origin_centered(self):
        # Query exactly at a voxel center: stencil centered around it.
        i0, t = neighborhood_origin(5.5, 1.0, 4)
        assert i0 == 4
        assert t == pytest.approx(1.0)


class TestService:
    def test_voxel_center_exact_for_all_kernels(self, field, store):
        vox = (np.array([5, 9, 13]) + 0.5) * field.voxel_size
        truth = field.data[:3, 5, 9, 13]
        for kernel in ("nearest", "lagrange4", "lagrange6", "lagrange8",
                       "pchip"):
            svc = ParticleQueryService(store, kernel)
            out, _stats = svc.query(vox[None])
            np.testing.assert_allclose(out[0], truth, atol=1e-5)

    def test_partial_equals_full_read(self, field, store, rng):
        svc = ParticleQueryService(store, "lagrange8")
        pos = rng.random((50, 3)) * field.box_size
        a, stats_a = svc.query(pos)
        b, stats_b = svc.query_full_read(pos)
        np.testing.assert_allclose(a, b, rtol=1e-6)
        assert stats_a.bytes_read < stats_b.bytes_read

    def test_positions_wrap_periodically(self, field, store):
        svc = ParticleQueryService(store, "lagrange4")
        p = np.array([[1.0, 2.0, 3.0]])
        a, _s = svc.query(p)
        b, _s = svc.query(p + field.box_size)
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_include_pressure(self, field, store):
        svc = ParticleQueryService(store, "lagrange4")
        out, _s = svc.query(np.array([[1.0, 1.0, 1.0]]),
                            include_pressure=True)
        assert out.shape == (1, 4)

    def test_ghost_too_thin_rejected(self, field):
        thin = TurbulenceStore(BlobPartitioner(32, 16, 2),
                               MemoryBlobBackend())
        thin.load_field(field)
        with pytest.raises(ValueError):
            ParticleQueryService(thin, "lagrange8")
        # 4-point kernel only needs ghost 2.
        ParticleQueryService(thin, "lagrange4")

    def test_stats_accounting(self, field, store, rng):
        svc = ParticleQueryService(store, "lagrange8")
        pos = rng.random((20, 3)) * field.box_size
        _out, stats = svc.query(pos)
        assert stats.particles == 20
        assert stats.blobs_opened <= 8
        assert stats.bytes_read > 0
        assert stats.savings_factor > 0

    def test_smoothness_between_voxels(self, field, store):
        """Interpolated value between two voxel centers lies near the
        local field values (no wild oscillation)."""
        svc = ParticleQueryService(store, "lagrange8")
        i, j, k = 8, 8, 8
        h = field.voxel_size
        between = np.array([[(i + 1.0) * h, (j + 0.5) * h,
                             (k + 0.5) * h]])
        out, _s = svc.query(between)
        lo = field.data[:3, i - 2:i + 4, j, k].min(axis=1)
        hi = field.data[:3, i - 2:i + 4, j, k].max(axis=1)
        span = hi - lo
        assert ((out[0] > lo - span) & (out[0] < hi + span)).all()


class TestBackends:
    def test_engine_backend_roundtrip(self, field, rng):
        from repro.engine import Database
        db = Database()
        backend = EngineBlobBackend(db)
        s = TurbulenceStore(BlobPartitioner(32, 16, 4), backend)
        s.load_field(field)
        svc = ParticleQueryService(s, "lagrange4")
        pos = rng.random((10, 3)) * field.box_size
        out, stats = svc.query(pos)
        ref_store = TurbulenceStore(BlobPartitioner(32, 16, 4),
                                    MemoryBlobBackend())
        ref_store.load_field(field)
        ref, _ = ParticleQueryService(ref_store, "lagrange4").query(pos)
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_sqlite_backend_roundtrip(self, field, rng):
        from repro.sqlbind import connect
        backend = SqliteBlobBackend(connect())
        s = TurbulenceStore(BlobPartitioner(32, 16, 4), backend)
        s.load_field(field)
        svc = ParticleQueryService(s, "lagrange4")
        pos = rng.random((10, 3)) * field.box_size
        out, stats = svc.query(pos)
        assert np.isfinite(out).all()
        assert stats.bytes_read < stats.full_blob_bytes


class TestMhd:
    def test_mhd_field_has_eight_components(self):
        from repro.science.turbulence import make_mhd_field
        f = make_mhd_field(16, seed=2)
        assert f.data.shape == (8, 16, 16, 16)
        assert f.n_components == 8
        # Magnetic pressure (component 7) is |B|^2 / 2 of components 4-6.
        b2 = (f.data[4:7].astype("f8") ** 2).sum(axis=0) / 2
        np.testing.assert_allclose(f.data[7], b2, rtol=1e-4, atol=1e-6)

    def test_service_interpolates_all_components(self, rng):
        from repro.science.turbulence import make_mhd_field
        f = make_mhd_field(16, seed=4)
        store = TurbulenceStore(BlobPartitioner(16, 8, 4),
                                MemoryBlobBackend())
        store.load_field(f)
        svc = ParticleQueryService(store, "lagrange4")
        pos = rng.random((15, 3)) * f.box_size
        values, _stats = svc.query(pos, n_components=8)
        assert values.shape == (15, 8)
        assert np.isfinite(values).all()
        # Voxel-center exactness holds for the magnetic components too.
        vox = (np.array([3, 5, 7]) + 0.5) * f.voxel_size
        out, _s = svc.query(vox[None], n_components=8)
        np.testing.assert_allclose(out[0], f.data[:, 3, 5, 7],
                                   atol=1e-5)

    def test_component_count_validation(self, rng):
        from repro.science.turbulence import make_mhd_field
        f = make_mhd_field(16, seed=4)
        store = TurbulenceStore(BlobPartitioner(16, 8, 4),
                                MemoryBlobBackend())
        store.load_field(f)
        svc = ParticleQueryService(store, "lagrange4")
        with pytest.raises(ValueError):
            svc.query(np.zeros((1, 3)), n_components=9)
        hydro_store = TurbulenceStore(BlobPartitioner(32, 16, 4),
                                      MemoryBlobBackend())
        hydro_store.load_field(make_field(32, seed=1))
        with pytest.raises(ValueError):
            ParticleQueryService(hydro_store, "lagrange4").query(
                np.zeros((1, 3)), n_components=8)

    def test_subdomain_bfield_extraction(self):
        from repro.science.turbulence import extract_subdomain, \
            make_mhd_field
        f = make_mhd_field(16, seed=6)
        store = TurbulenceStore(BlobPartitioner(16, 8, 4),
                                MemoryBlobBackend())
        store.load_field(f)
        data, _stats = extract_subdomain(store, (2, 2, 2), (10, 10, 10),
                                         components=(4, 5, 6))
        np.testing.assert_allclose(data, f.data[4:7, 2:10, 2:10, 2:10])
