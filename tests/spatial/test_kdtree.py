"""kd-tree tests against brute force and the scipy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import KdTree


def _brute_knn(points, q, k):
    d = np.linalg.norm(points - q, axis=1)
    idx = np.argsort(d, kind="stable")[:k]
    return d[idx], idx


class TestKnn:
    def test_self_query(self, rng):
        pts = rng.random((100, 3))
        tree = KdTree(pts)
        d, i = tree.query(pts[17], k=1)
        assert i[0] == 17
        assert d[0] == pytest.approx(0.0, abs=1e-12)

    def test_matches_brute_force(self, rng):
        pts = rng.random((300, 4))
        tree = KdTree(pts)
        for q in rng.random((20, 4)):
            d, i = tree.query(q, k=5)
            bd, _bi = _brute_knn(pts, q, 5)
            np.testing.assert_allclose(d, bd, atol=1e-12)

    def test_matches_scipy_oracle(self, rng):
        from scipy.spatial import cKDTree
        pts = rng.random((500, 3))
        ours = KdTree(pts)
        ref = cKDTree(pts)
        for q in rng.random((10, 3)):
            d, _i = ours.query(q, k=8)
            rd, _ri = ref.query(q, k=8)
            np.testing.assert_allclose(d, rd, atol=1e-12)

    def test_k_equals_n(self, rng):
        pts = rng.random((10, 2))
        d, i = KdTree(pts).query(pts[0], k=10)
        assert len(i) == 10
        assert sorted(i) == list(range(10))

    def test_distances_sorted(self, rng):
        pts = rng.random((200, 3))
        d, _i = KdTree(pts).query(rng.random(3), k=20)
        assert (np.diff(d) >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), n=st.integers(2, 80),
           dim=st.integers(1, 5), k=st.integers(1, 5))
    def test_knn_property(self, seed, n, dim, k):
        gen = np.random.default_rng(seed)
        pts = gen.random((n, dim))
        k = min(k, n)
        q = gen.random(dim)
        d, _i = KdTree(pts, leaf_size=4).query(q, k=k)
        bd, _bi = _brute_knn(pts, q, k)
        np.testing.assert_allclose(d, bd, atol=1e-12)


class TestRadius:
    def test_matches_brute_force(self, rng):
        pts = rng.random((300, 3))
        tree = KdTree(pts)
        for q in rng.random((10, 3)):
            got = sorted(tree.query_radius(q, 0.2))
            want = sorted(np.nonzero(
                np.linalg.norm(pts - q, axis=1) <= 0.2)[0])
            assert got == want

    def test_zero_radius(self, rng):
        pts = rng.random((50, 2))
        got = KdTree(pts).query_radius(pts[3], 0.0)
        assert 3 in got

    def test_negative_radius_rejected(self, rng):
        with pytest.raises(ValueError):
            KdTree(rng.random((5, 2))).query_radius([0, 0], -1.0)

    def test_empty_result(self, rng):
        pts = rng.random((20, 2))
        out = KdTree(pts).query_radius([50.0, 50.0], 0.1)
        assert len(out) == 0


class TestValidation:
    def test_empty_points(self):
        with pytest.raises(ValueError):
            KdTree(np.empty((0, 3)))

    def test_wrong_rank(self):
        with pytest.raises(ValueError):
            KdTree(np.zeros(5))

    def test_dim_mismatch_on_query(self, rng):
        tree = KdTree(rng.random((10, 3)))
        with pytest.raises(ValueError):
            tree.query([0.0, 0.0], k=1)

    def test_k_out_of_range(self, rng):
        tree = KdTree(rng.random((10, 3)))
        with pytest.raises(ValueError):
            tree.query(np.zeros(3), k=11)
        with pytest.raises(ValueError):
            tree.query(np.zeros(3), k=0)

    def test_duplicate_points(self):
        pts = np.ones((40, 2))
        tree = KdTree(pts, leaf_size=4)
        d, _i = tree.query([1.0, 1.0], k=5)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)
