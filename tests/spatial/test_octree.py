"""Octree tests against brute force."""

import numpy as np
import pytest

from repro.spatial import Octree


@pytest.fixture
def cloud(rng):
    # Clustered + uniform mix so the tree is genuinely unbalanced.
    uniform = rng.random((300, 3))
    cluster = 0.5 + rng.normal(0, 0.02, (200, 3)).clip(-0.4, 0.4)
    return np.concatenate([uniform, cluster])


class TestBuild:
    def test_partition_is_complete(self, cloud):
        tree = Octree(cloud, 1.0, max_points=20)
        total = sum(n.count for n in tree.leaf_nodes())
        assert total == len(cloud)

    def test_leaves_respect_max_points_or_depth(self, cloud):
        tree = Octree(cloud, 1.0, max_points=20, max_depth=12)
        for leaf in tree.leaf_nodes():
            assert leaf.count <= 20 or leaf.depth == 12

    def test_unbalanced_on_clustered_data(self, cloud):
        tree = Octree(cloud, 1.0, max_points=10)
        depths = [n.depth for n in tree.leaf_nodes()]
        assert max(depths) > min(depths)

    def test_points_inside_their_cells(self, cloud):
        tree = Octree(cloud, 1.0, max_points=20)
        for node in tree.leaf_nodes():
            block = tree._points[node.start:node.stop]
            lo = node.center - node.half - 1e-9
            hi = node.center + node.half + 1e-9
            assert ((block >= lo) & (block <= hi)).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Octree(rng.random((5, 2)), 1.0)
        with pytest.raises(ValueError):
            Octree(rng.random((5, 3)) + 2.0, 1.0)
        with pytest.raises(ValueError):
            Octree(rng.random((5, 3)), -1.0)
        with pytest.raises(ValueError):
            Octree(rng.random((5, 3)), 1.0, max_points=0)

    def test_empty_tree(self):
        tree = Octree(np.empty((0, 3)), 1.0)
        assert tree.size == 0
        assert list(tree.leaf_nodes()) == []


class TestQueries:
    def test_box_matches_brute(self, cloud):
        tree = Octree(cloud, 1.0, max_points=16)
        lo, hi = np.array([0.2, 0.3, 0.1]), np.array([0.7, 0.6, 0.9])
        got = sorted(tree.query_box(lo, hi))
        want = sorted(np.nonzero(
            ((cloud >= lo) & (cloud < hi)).all(axis=1))[0])
        assert got == want

    def test_sphere_matches_brute(self, cloud):
        tree = Octree(cloud, 1.0, max_points=16)
        for center, r in [((0.5, 0.5, 0.5), 0.15), ((0.1, 0.9, 0.2),
                                                    0.3)]:
            got = sorted(tree.query_sphere(center, r))
            want = sorted(np.nonzero(
                np.linalg.norm(cloud - center, axis=1) <= r)[0])
            assert got == want

    def test_cone_matches_brute(self, cloud):
        tree = Octree(cloud, 1.0, max_points=16)
        apex = np.zeros(3)
        axis = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
        half = 0.4
        got = sorted(tree.query_cone(apex, [1, 1, 1], half))
        v = cloud - apex
        dist = np.linalg.norm(v, axis=1)
        cosp = (v @ axis) / dist
        want = sorted(np.nonzero(cosp >= np.cos(half))[0])
        assert got == want

    def test_truncated_cone(self, cloud):
        tree = Octree(cloud, 1.0, max_points=16)
        got = tree.query_cone([0, 0, 0], [1, 1, 1], 0.4,
                              max_distance=0.5)
        dist = np.linalg.norm(cloud[got], axis=1)
        assert (dist <= 0.5).all()

    def test_cone_validation(self, cloud):
        tree = Octree(cloud, 1.0)
        with pytest.raises(ValueError):
            tree.query_cone([0, 0, 0], [0, 0, 0], 0.3)
        with pytest.raises(ValueError):
            tree.query_cone([0, 0, 0], [1, 0, 0], 0.0)

    def test_sphere_validation(self, cloud):
        with pytest.raises(ValueError):
            Octree(cloud, 1.0).query_sphere([0, 0, 0], -0.1)


class TestDecimation:
    def test_weights_sum_to_particle_count(self, cloud):
        tree = Octree(cloud, 1.0, max_points=8)
        for depth in (0, 1, 2, 3):
            pts, weights = tree.decimate(depth)
            assert weights.sum() == len(cloud)
            assert len(pts) == len(weights)

    def test_deeper_levels_have_more_representatives(self, cloud):
        tree = Octree(cloud, 1.0, max_points=8)
        sizes = [len(tree.decimate(d)[0]) for d in range(4)]
        assert sizes == sorted(sizes)

    def test_depth_zero_is_single_representative(self, cloud):
        tree = Octree(cloud, 1.0, max_points=8)
        pts, weights = tree.decimate(0)
        assert len(pts) == 1
        assert weights[0] == len(cloud)

    def test_representatives_are_real_points(self, cloud):
        tree = Octree(cloud, 1.0, max_points=8)
        pts, _w = tree.decimate(2)
        # Every representative must be one of the input points.
        for p in pts:
            assert (np.linalg.norm(cloud - p, axis=1) < 1e-12).any()

    def test_negative_depth_rejected(self, cloud):
        with pytest.raises(ValueError):
            Octree(cloud, 1.0).decimate(-1)


class TestMortonBuild:
    def test_equivalent_to_direct_build(self, cloud):
        direct = Octree(cloud, 1.0, max_points=16)
        morton = Octree.from_morton(cloud, 1.0, max_points=16)
        assert morton.size == direct.size
        # Same query answers on boxes, spheres and cones.
        for center, r in [((0.5, 0.5, 0.5), 0.2), ((0.2, 0.8, 0.4),
                                                   0.3)]:
            assert sorted(morton.query_sphere(center, r)) == \
                sorted(direct.query_sphere(center, r))
        lo, hi = np.array([0.1, 0.2, 0.3]), np.array([0.6, 0.9, 0.7])
        assert sorted(morton.query_box(lo, hi)) == \
            sorted(direct.query_box(lo, hi))

    def test_same_leaf_structure(self, cloud):
        direct = Octree(cloud, 1.0, max_points=16)
        morton = Octree.from_morton(cloud, 1.0, max_points=16)

        def leaf_signature(tree):
            return sorted(
                (tuple(np.round(n.center, 9)), n.count)
                for n in tree.leaf_nodes())

        assert leaf_signature(morton) == leaf_signature(direct)

    def test_partition_complete(self, cloud):
        tree = Octree.from_morton(cloud, 1.0, max_points=8)
        assert sum(n.count for n in tree.leaf_nodes()) == len(cloud)
        got = np.sort(tree._index)
        np.testing.assert_array_equal(got, np.arange(len(cloud)))

    def test_decimate_works_on_morton_tree(self, cloud):
        tree = Octree.from_morton(cloud, 1.0, max_points=8)
        _pts, weights = tree.decimate(2)
        assert weights.sum() == len(cloud)

    def test_empty_input(self):
        tree = Octree.from_morton(np.empty((0, 3)), 1.0)
        assert tree.size == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Octree.from_morton(rng.random((5, 2)), 1.0)
        with pytest.raises(ValueError):
            Octree.from_morton(rng.random((5, 3)) + 2.0, 1.0)
