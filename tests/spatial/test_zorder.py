"""Morton code tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    cell_of_point,
    decode2,
    decode3,
    decode3_array,
    encode2,
    encode2_array,
    encode3,
    encode3_array,
    points_to_codes,
)


class TestScalar:
    @given(x=st.integers(0, 2 ** MAX_BITS_3D - 1),
           y=st.integers(0, 2 ** MAX_BITS_3D - 1),
           z=st.integers(0, 2 ** MAX_BITS_3D - 1))
    def test_encode3_roundtrip(self, x, y, z):
        assert decode3(encode3(x, y, z)) == (x, y, z)

    @given(x=st.integers(0, 2 ** MAX_BITS_2D - 1),
           y=st.integers(0, 2 ** MAX_BITS_2D - 1))
    def test_encode2_roundtrip(self, x, y):
        assert decode2(encode2(x, y)) == (x, y)

    def test_known_values(self):
        # Interleave pattern: x gets bit 0, y bit 1, z bit 2.
        assert encode3(1, 0, 0) == 0b001
        assert encode3(0, 1, 0) == 0b010
        assert encode3(0, 0, 1) == 0b100
        assert encode3(1, 1, 1) == 0b111
        assert encode2(1, 0) == 0b01
        assert encode2(0, 1) == 0b10

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode3(2 ** MAX_BITS_3D, 0, 0)
        with pytest.raises(ValueError):
            encode3(-1, 0, 0)
        with pytest.raises(ValueError):
            encode2(2 ** MAX_BITS_2D, 0)

    def test_monotone_within_octant(self):
        # Doubling every coordinate shifts the code by 3 bits.
        assert encode3(2, 2, 2) == encode3(1, 1, 1) << 3


class TestVectorized:
    def test_matches_scalar(self, rng):
        coords = rng.integers(0, 2 ** 16, size=(200, 3))
        codes = encode3_array(coords)
        for c, code in zip(coords[:20], codes[:20]):
            assert encode3(*map(int, c)) == int(code)

    def test_decode_roundtrip(self, rng):
        coords = rng.integers(0, 2 ** MAX_BITS_3D, size=(500, 3),
                              dtype=np.uint64)
        np.testing.assert_array_equal(
            decode3_array(encode3_array(coords)), coords)

    def test_2d_matches_scalar(self, rng):
        coords = rng.integers(0, 2 ** 20, size=(50, 2))
        codes = encode2_array(coords)
        for c, code in zip(coords, codes):
            assert encode2(*map(int, c)) == int(code)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode3_array(np.zeros((3, 2), dtype=np.uint64))


class TestSpatialLocality:
    def test_z_order_clusters_neighbours(self, rng):
        """The property the paper's partitioning relies on: points close
        in space have nearby codes much more often than random pairs."""
        points = rng.random((400, 3))
        codes = points_to_codes(points, 1.0, 64).astype(np.int64)
        order = np.argsort(codes)
        ordered = points[order]
        consecutive = np.linalg.norm(
            np.diff(ordered, axis=0), axis=1).mean()
        shuffled = points[rng.permutation(400)]
        random_pairs = np.linalg.norm(
            shuffled[:-1] - shuffled[1:], axis=1).mean()
        assert consecutive < random_pairs / 2

    def test_cell_of_point_clamps(self):
        assert cell_of_point((0.999, 0.0, 0.5), 1.0, 8) == (7, 0, 4)
        assert cell_of_point((1.5, -0.1, 0.0), 1.0, 8) == (7, 0, 0)

    def test_points_to_codes_validation(self):
        with pytest.raises(ValueError):
            points_to_codes(np.zeros((5, 2)), 1.0, 8)
