"""Zero-copy data-plane tests: streamed partial-blob reads (bquery),
prepared statements, and pipelined execution.

The parity contract under test: every byte served by a ``bquery``
stream is bit-identical to reading the whole blob and slicing
client-side — across random offsets, zero-length blobs, zero-length
slices, chunk-boundary-straddling slices, windowed array reads, and
slices raced against concurrent DELETEs.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core import SqlArray
from repro.engine import Column, Database
from repro.server import (
    ArrayClient,
    AsyncArrayClient,
    ServerError,
    ServerThread,
    protocol,
)

#: id -> blob payload size for the Tblob parity table.
BLOB_SIZES = {0: 0, 1: 1, 2: 100, 3: 4096, 4: 65536, 5: 300_000}

ARR_SHAPE = (24, 24, 24)

NUM_ROWS = 16


def make_blob(blob_id: int) -> bytes:
    rng = np.random.default_rng(1000 + blob_id)
    return rng.integers(0, 256, BLOB_SIZES[blob_id],
                        dtype=np.uint8).tobytes()


def make_array() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.standard_normal(ARR_SHAPE)


def make_del_payload(row_id: int) -> bytes:
    rng = np.random.default_rng(5000 + row_id)
    return rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()


def make_db() -> Database:
    db = Database()
    tblob = db.create_table(
        "Tblob", [Column("id", "bigint"),
                  Column("v", "varbinary_max")])
    for blob_id in BLOB_SIZES:
        tblob.insert((blob_id, make_blob(blob_id)))
    tarr = db.create_table(
        "Tarr", [Column("id", "bigint"),
                 Column("v", "varbinary_max")])
    tarr.insert((1, SqlArray.from_numpy(make_array()).to_blob()))
    tnum = db.create_table(
        "Tnum", [Column("id", "bigint"), Column("x", "float"),
                 Column("g", "int")])
    for i in range(NUM_ROWS):
        tnum.insert((i, float(i) * 0.5, i % 4))
    tdel = db.create_table(
        "Tdel", [Column("id", "bigint"),
                 Column("v", "varbinary_max")])
    for i in range(12):
        tdel.insert((i, make_del_payload(i)))
    return db


@pytest.fixture(scope="module")
def server():
    with ServerThread(make_db()) as handle:
        yield handle


@pytest.fixture
def client(server):
    with ArrayClient("127.0.0.1", server.port) as c:
        yield c


def blob_sql(blob_id: int, table: str = "Tblob") -> str:
    return f"SELECT MAX(v) FROM {table} WHERE id = {blob_id}"


# -- bquery: byte-range parity ----------------------------------------------

class TestBqueryParity:
    @pytest.mark.parametrize("blob_id", sorted(BLOB_SIZES))
    def test_full_read_matches_scalar(self, client, blob_id):
        full = client.query(blob_sql(blob_id)).scalar()
        result = client.query_blob(blob_sql(blob_id))
        assert bytes(result.data) == bytes(full)
        assert result.blob_len == BLOB_SIZES[blob_id]
        assert result.offset == 0
        assert result.wire_bytes == len(result.data)

    def test_randomized_slices_bit_identical(self, client):
        full = make_blob(5)
        rng = np.random.default_rng(7)
        for _ in range(25):
            offset = int(rng.integers(0, len(full)))
            length = int(rng.integers(0, len(full) - offset + 1))
            result = client.query_blob(blob_sql(5), offset=offset,
                                       length=length)
            assert result.data == full[offset:offset + length]
            assert result.blob_len == len(full)
            assert result.offset == offset

    def test_open_ended_slice_reads_to_eof(self, client):
        full = make_blob(4)
        result = client.query_blob(blob_sql(4), offset=1234)
        assert result.data == full[1234:]

    def test_zero_length_blob(self, client):
        result = client.query_blob(blob_sql(0))
        assert result.data == b""
        assert result.blob_len == 0
        assert result.chunks == 1

    def test_zero_length_slice(self, client):
        result = client.query_blob(blob_sql(5), offset=77, length=0)
        assert result.data == b""
        assert result.blob_len == BLOB_SIZES[5]
        assert result.chunks == 1

    def test_chunk_boundary_straddling_slices(self, client):
        """Small prime chunk size so nearly every slice straddles a
        chunk boundary; reassembly must still be bit-identical."""
        full = make_blob(5)
        rng = np.random.default_rng(11)
        for _ in range(10):
            offset = int(rng.integers(0, len(full) - 1))
            length = int(rng.integers(1, len(full) - offset + 1))
            result = client.query_blob(blob_sql(5), offset=offset,
                                       length=length, chunk_bytes=997)
            assert result.data == full[offset:offset + length]
            assert result.chunks == max(1, -(-length // 997))

    def test_wire_bytes_bounded_by_slice(self, client):
        """The acceptance bound: a partial read moves at most
        slice_bytes + one chunk of payload, never the whole blob."""
        chunk = 8192
        length = 50_000
        result = client.query_blob(blob_sql(5), offset=100_000,
                                   length=length, chunk_bytes=chunk)
        assert result.wire_bytes <= length + chunk
        assert result.wire_bytes < BLOB_SIZES[5]

    def test_out_of_range_slice_is_bad_frame(self, client):
        with pytest.raises(ServerError) as err:
            client.query_blob(blob_sql(5), offset=BLOB_SIZES[5] + 1)
        assert err.value.code == protocol.BAD_FRAME
        # Connection stays usable: errors are sent instead of chunk 0.
        assert client.query_blob(blob_sql(2)).data == make_blob(2)

    def test_overlong_slice_is_bad_frame(self, client):
        with pytest.raises(ServerError) as err:
            client.query_blob(blob_sql(3), offset=4000, length=4096)
        assert err.value.code == protocol.BAD_FRAME

    def test_grouped_select_rejected(self, client):
        with pytest.raises(ServerError) as err:
            client.query_blob(
                "SELECT g, COUNT(*) FROM Tnum GROUP BY g")
        assert err.value.code == protocol.SQL_ERROR

    def test_bad_chunk_bytes_rejected(self, client):
        with pytest.raises(ServerError) as err:
            client.query_blob(blob_sql(2), chunk_bytes=0)
        assert err.value.code == protocol.BAD_FRAME

    def test_eof_frame_carries_metrics(self, client):
        result = client.query_blob(blob_sql(4), offset=5, length=100)
        assert result.metrics["stream_calls"] >= 0
        assert result.elapsed_seconds is not None


# -- bquery: windowed array reads -------------------------------------------

class TestBqueryWindow:
    def test_window_matches_numpy_slice(self, client):
        arr = make_array()
        got = client.query_array(blob_sql(1, "Tarr"),
                                 slice=((5, 3, 2), (8, 8, 8)))
        np.testing.assert_array_equal(got, arr[5:13, 3:11, 2:10])

    def test_randomized_windows(self, client):
        arr = make_array()
        rng = np.random.default_rng(3)
        for _ in range(10):
            offset = [int(rng.integers(0, d)) for d in ARR_SHAPE]
            size = [int(rng.integers(1, d - o + 1))
                    for d, o in zip(ARR_SHAPE, offset)]
            got = client.query_array(blob_sql(1, "Tarr"),
                                     slice=(offset, size))
            want = arr[tuple(slice(o, o + s)
                             for o, s in zip(offset, size))]
            np.testing.assert_array_equal(got, want)

    def test_window_is_standalone_blob(self, client):
        """Window mode re-encodes the slice as a complete array blob,
        bit-identical to slicing the decoded array and re-encoding."""
        arr = make_array()
        header = {"type": "bquery", "sql": blob_sql(1, "Tarr"),
                  "cold": True,
                  "window": {"offset": [0, 0, 0], "size": [4, 4, 4]}}
        got = client._read_bquery(header)
        decoded = SqlArray.from_blob(got.data).to_numpy()
        np.testing.assert_array_equal(decoded, arr[:4, :4, :4])

    def test_window_out_of_bounds_is_bad_frame(self, client):
        with pytest.raises(ServerError) as err:
            client.query_array(blob_sql(1, "Tarr"),
                               slice=((0, 0, 20), (4, 4, 8)))
        assert err.value.code == protocol.BAD_FRAME

    def test_window_on_raw_bytes_is_bad_frame(self, client):
        """A window read of a non-array blob fails header validation
        cleanly (BAD_FRAME), not with a stream teardown."""
        with pytest.raises(ServerError) as err:
            client.query_array(blob_sql(5), slice=((0,), (4,)))
        assert err.value.code == protocol.BAD_FRAME


# -- bquery under concurrent DELETE -----------------------------------------

class TestBqueryUnderDelete:
    def test_slices_stay_bit_identical_under_delete(self, server):
        """Readers slice one blob while a writer deletes its
        neighbours: freed pages must never bleed into a served slice
        (the finalize-under-latch guarantee)."""
        expected = make_del_payload(0)
        stop = threading.Event()
        errors: list = []

        def reader():
            with ArrayClient("127.0.0.1", server.port) as c:
                r = np.random.default_rng(23)
                while not stop.is_set():
                    offset = int(r.integers(0, 19_000))
                    length = int(r.integers(1, 20_000 - offset + 1))
                    try:
                        result = c.query_blob(blob_sql(0, "Tdel"),
                                              offset=offset,
                                              length=length,
                                              chunk_bytes=3001)
                    except ServerError as exc:
                        errors.append(exc)
                        return
                    if result.data != \
                            expected[offset:offset + length]:
                        errors.append(AssertionError(
                            f"slice mismatch at {offset}+{length}"))
                        return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            with ArrayClient("127.0.0.1", server.port) as writer:
                for i in range(1, 12):
                    writer.query(f"DELETE FROM Tdel WHERE id = {i}")
        finally:
            stop.set()
            thread.join()
        assert errors == []
        with ArrayClient("127.0.0.1", server.port) as c:
            result = c.query_blob(blob_sql(0, "Tdel"))
            assert result.data == expected


# -- prepared statements and pipelining -------------------------------------

class TestPrepare:
    def test_prepare_returns_plan_shape(self, client):
        info = client.prepare("SELECT COUNT(*) FROM Tnum "
                              "WITH (NOLOCK)")
        assert info["table"] == "Tnum"
        assert info["kind"] in ("scan", "point", "index", "grouped")

    def test_prepare_bad_sql_is_sql_error(self, client):
        with pytest.raises(ServerError) as err:
            client.prepare("SELECT FROM nowhere")
        assert err.value.code == protocol.SQL_ERROR

    def test_prepare_counts_in_stats(self, client):
        before = client.stats()["prepares"]
        client.prepare("SELECT SUM(x) FROM Tnum WITH (NOLOCK)")
        assert client.stats()["prepares"] == before + 1


class TestPipeline:
    def test_replies_in_statement_order(self, client):
        statements = [f"SELECT SUM(x) FROM Tnum WHERE id = {i}"
                      for i in range(NUM_ROWS)]
        results = client.query_pipeline(statements)
        for i, result in enumerate(results):
            assert result.scalar() == pytest.approx(i * 0.5)

    def test_batch_recorded_in_stats(self, client):
        before = client.stats()["pipeline"]
        client.query_pipeline(
            ["SELECT COUNT(*) FROM Tnum WITH (NOLOCK)"] * 5)
        after = client.stats()["pipeline"]
        assert after["statements"] >= before["statements"] + 5
        assert after["batches"] > before["batches"]
        assert after["depth_max"] >= 2

    def test_error_slot_preserves_order(self, client):
        results = client.query_pipeline(
            ["SELECT COUNT(*) FROM Tnum WITH (NOLOCK)",
             "SELECT FROM nowhere",
             "SELECT COUNT(*) FROM Tnum WITH (NOLOCK)"],
            return_exceptions=True)
        assert results[0].scalar() == NUM_ROWS
        assert isinstance(results[1], ServerError)
        assert results[1].code == protocol.SQL_ERROR
        assert results[2].scalar() == NUM_ROWS
        # Connection survives the failed slot.
        assert client.query("SELECT COUNT(*) FROM Tnum "
                            "WITH (NOLOCK)").scalar() == NUM_ROWS

    def test_first_error_raised_after_drain(self, client):
        with pytest.raises(ServerError) as err:
            client.query_pipeline(["SELECT FROM nowhere",
                                   "SELECT COUNT(*) FROM Tnum "
                                   "WITH (NOLOCK)"])
        assert err.value.code == protocol.SQL_ERROR
        assert client.query("SELECT COUNT(*) FROM Tnum "
                            "WITH (NOLOCK)").scalar() == NUM_ROWS

    def test_write_statements_pipeline(self, client):
        results = client.query_pipeline(
            ["CREATE TABLE Tpipe (id BIGINT PRIMARY KEY, x FLOAT)",
             "INSERT INTO Tpipe VALUES (1, 2.0), (2, 3.0)",
             "SELECT SUM(x) FROM Tpipe WITH (NOLOCK)"])
        assert results[0].kind == "ok"
        assert results[1].rowcount == 2
        assert results[2].scalar() == pytest.approx(5.0)

    def test_empty_pipeline(self, client):
        assert client.query_pipeline([]) == []

    def test_wire_mode_env_is_transparent(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "prepared")
        with ArrayClient("127.0.0.1", server.port) as c:
            assert c.query("SELECT COUNT(*) FROM Tnum "
                           "WITH (NOLOCK)").scalar() == NUM_ROWS
            with pytest.raises(ServerError):
                c.query("SELECT FROM nowhere")
            assert c.query("SELECT COUNT(*) FROM Tnum "
                           "WITH (NOLOCK)").scalar() == NUM_ROWS


# -- asyncio twins ----------------------------------------------------------

class TestAsyncDataplane:
    def test_async_blob_pipeline_and_prepare(self, server):
        full = make_blob(5)

        async def run():
            client = await AsyncArrayClient.connect("127.0.0.1",
                                                    server.port)
            try:
                info = await client.prepare(
                    "SELECT COUNT(*) FROM Tnum WITH (NOLOCK)")
                results = await client.query_pipeline(
                    [f"SELECT SUM(x) FROM Tnum WHERE id = {i}"
                     for i in range(4)])
                blob = await client.query_blob(
                    blob_sql(5), offset=1000, length=5000)
                arr = await client.query_array(
                    blob_sql(1, "Tarr"), slice=((1, 1, 1), (3, 3, 3)))
                return info, results, blob, arr
            finally:
                await client.close()

        info, results, blob, arr = asyncio.run(run())
        assert info["table"] == "Tnum"
        for i, result in enumerate(results):
            assert result.scalar() == pytest.approx(i * 0.5)
        assert blob.data == full[1000:6000]
        np.testing.assert_array_equal(
            arr, make_array()[1:4, 1:4, 1:4])

    def test_async_pipeline_error_slots(self, server):
        async def run():
            client = await AsyncArrayClient.connect("127.0.0.1",
                                                    server.port)
            try:
                return await client.query_pipeline(
                    ["SELECT COUNT(*) FROM Tnum WITH (NOLOCK)",
                     "SELECT FROM nowhere"],
                    return_exceptions=True)
            finally:
                await client.close()

        results = asyncio.run(run())
        assert results[0].scalar() == NUM_ROWS
        assert isinstance(results[1], ServerError)
