"""Wire-protocol tests: round-trips for every message type, value
packing, and malformed-frame rejection."""

import asyncio
import socket
import struct

import pytest

from repro.server import protocol
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    pack_rows,
    read_frame,
    read_frame_sock,
    unpack_rows,
    write_frame_sock,
)

# Every message type both sides of the conversation use.
MESSAGES = [
    {"type": "query", "sql": "SELECT COUNT(*) FROM T", "cold": True,
     "timeout": None},
    {"type": "query", "sql": "SELECT 1", "cold": False, "timeout": 2.5},
    {"type": "stats"},
    {"type": "ping"},
    {"type": "close"},
    {"type": "hello", "server": "repro-array-server", "protocol": 1,
     "session_id": 7},
    {"type": "result", "kind": "rows", "rows": [[1, 2.5, None]],
     "rowcount": 1, "metrics": {"rows": 10, "udf_calls": 0}},
    {"type": "result", "kind": "ok", "rows": [], "rowcount": 3,
     "metrics": None},
    {"type": "error", "code": protocol.SERVER_BUSY,
     "message": "queue full"},
    {"type": "error", "code": protocol.QUERY_TIMEOUT, "message": "slow"},
    {"type": "pong"},
    {"type": "goodbye"},
    {"type": "stats", "queries_ok": 5, "latency_p95": 0.25,
     "io_totals": {"io_bytes": 8192}},
]


class TestFrameRoundTrip:
    @pytest.mark.parametrize("header", MESSAGES,
                             ids=lambda h: h["type"])
    def test_every_message_type(self, header):
        payload = encode_frame(header)
        total = struct.unpack("!I", payload[:4])[0]
        assert total == len(payload) - 4
        decoded, blobs = decode_frame(payload[4:])
        assert decoded == header
        assert blobs == []

    def test_frame_with_blobs(self):
        blobs_in = [b"\x00" * 100, b"hello", b""]
        payload = encode_frame({"type": "result", "rows": []}, blobs_in)
        header, blobs = decode_frame(payload[4:])
        assert blobs == blobs_in
        assert header["blobs"] == [100, 5, 0]

    def test_round_trip_through_socketpair(self):
        a, b = socket.socketpair()
        try:
            write_frame_sock(a, {"type": "ping"})
            write_frame_sock(a, {"type": "result", "rows": []},
                             [b"abc"])
            assert read_frame_sock(b) == ({"type": "ping"}, [])
            header, blobs = read_frame_sock(b)
            assert header["type"] == "result"
            assert blobs == [b"abc"]
            a.close()
            assert read_frame_sock(b) is None  # clean EOF
        finally:
            b.close()


class TestValuePacking:
    def test_mixed_row(self):
        rows = [(1, 2.5, None, True, "txt", b"\x01\x02"),
                (2, -1.0, b"zz", False, "s", b"")]
        packed, blobs = pack_rows(rows)
        assert blobs == [b"\x01\x02", b"zz", b""]
        assert packed[0][5] == {"$blob": 0}
        assert unpack_rows(packed, blobs) == rows

    def test_numpy_scalars_coerced(self):
        np = pytest.importorskip("numpy")
        packed, blobs = pack_rows([(np.int64(3), np.float64(1.5))])
        assert packed == [[3, 1.5]]
        assert isinstance(packed[0][0], int)
        assert isinstance(packed[0][1], float)

    def test_nested_lists(self):
        rows = [([1, 2, [3, b"x"]],)]
        packed, blobs = pack_rows(rows)
        assert unpack_rows(packed, blobs) == [(([1, 2, [3, b"x"]]),)]

    def test_unencodable_value_rejected(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            pack_rows([(object(),)])

    def test_bad_blob_reference(self):
        with pytest.raises(ProtocolError, match="out of range"):
            unpack_rows([[{"$blob": 5}]], [b"only-one"])

    def test_unexpected_object_cell(self):
        with pytest.raises(ProtocolError, match="unexpected object"):
            unpack_rows([[{"x": 1}]], [])


class TestMalformedFrames:
    def test_missing_type_key(self):
        with pytest.raises(ProtocolError, match="'type'"):
            encode_frame({"sql": "SELECT 1"})

    def test_short_payload(self):
        with pytest.raises(ProtocolError, match="shorter"):
            decode_frame(b"\x00\x01")

    def test_header_length_beyond_frame(self):
        payload = struct.pack("!I", 4096) + b"{}"
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(payload)

    def test_bad_json(self):
        body = b"{not json!"
        with pytest.raises(ProtocolError, match="bad JSON"):
            decode_frame(struct.pack("!I", len(body)) + body)

    def test_header_not_object(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="not an object"):
            decode_frame(struct.pack("!I", len(body)) + body)

    def test_blob_lengths_mismatch(self):
        body = b'{"type":"result","blobs":[10]}'
        payload = struct.pack("!I", len(body)) + body + b"abc"
        with pytest.raises(ProtocolError, match="do not cover"):
            decode_frame(payload)

    def test_negative_blob_length(self):
        body = b'{"type":"result","blobs":[-1]}'
        with pytest.raises(ProtocolError, match="bad blob length"):
            decode_frame(struct.pack("!I", len(body)) + body)

    def test_oversized_frame_rejected_before_read(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="limit"):
                read_frame_sock(b)
        finally:
            a.close()
            b.close()

    def test_undersized_total_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("!I", 2) + b"xx")
            with pytest.raises(ProtocolError, match="too short"):
                read_frame_sock(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_sock(self):
        a, b = socket.socketpair()
        try:
            payload = encode_frame({"type": "ping"})
            a.sendall(payload[:-2])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                read_frame_sock(b)
        finally:
            b.close()


class TestWriteSideLimit:
    """Regression: the frame-size limit used to be read-side only — a
    writer could emit a frame its peer was bound to refuse, killing the
    connection with an undiagnosable ProtocolError at the *receiver*."""

    def test_frame_too_large_is_a_protocol_error(self):
        assert issubclass(protocol.FrameTooLargeError, ProtocolError)

    def test_oversized_write_raises_before_sending(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(protocol.FrameTooLargeError,
                               match="exceeds"):
                write_frame_sock(a, {"type": "result", "rows": []},
                                 [b"x" * 2048], max_frame=1024)
            # Not a single byte hit the wire: the stream stays framed.
            b.setblocking(False)
            with pytest.raises(BlockingIOError):
                b.recv(1)
        finally:
            a.close()
            b.close()

    def test_frame_exactly_at_limit_is_sent(self):
        header = {"type": "ping"}
        limit = len(encode_frame(header)) - 4   # total excludes prefix
        a, b = socket.socketpair()
        try:
            write_frame_sock(a, header, max_frame=limit)
            assert read_frame_sock(b) == (header, [])
            with pytest.raises(protocol.FrameTooLargeError):
                write_frame_sock(a, header, max_frame=limit - 1)
        finally:
            a.close()
            b.close()

    def test_async_write_frame_enforces_limit(self):
        class _Writer:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        writer = _Writer()

        async def run():
            await protocol.write_frame(
                writer, {"type": "result", "rows": []},
                [b"x" * 2048], max_frame=1024)

        with pytest.raises(protocol.FrameTooLargeError):
            asyncio.run(run())
        assert writer.chunks == []


class TestAsyncFrameIO:
    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_clean_eof_returns_none(self):
        async def run():
            return await read_frame(self._reader_with(b""))
        assert asyncio.run(run()) is None

    def test_round_trip(self):
        payload = encode_frame({"type": "ping"})

        async def run():
            return await read_frame(self._reader_with(payload))
        assert asyncio.run(run()) == ({"type": "ping"}, [])

    def test_truncated_prefix(self):
        async def run():
            return await read_frame(self._reader_with(b"\x00\x00"))
        with pytest.raises(ProtocolError, match="mid-prefix"):
            asyncio.run(run())

    def test_truncated_body(self):
        payload = encode_frame({"type": "ping"})[:-3]

        async def run():
            return await read_frame(self._reader_with(payload))
        with pytest.raises(ProtocolError, match="mid-frame"):
            asyncio.run(run())

    def test_oversized_rejected(self):
        data = struct.pack("!I", MAX_FRAME_BYTES + 1) + b"x" * 16

        async def run():
            return await read_frame(self._reader_with(data))
        with pytest.raises(ProtocolError, match="limit"):
            asyncio.run(run())
