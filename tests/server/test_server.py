"""End-to-end server tests: an in-process server, concurrent clients,
admission control, timeouts, and fault injection."""

import asyncio
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.engine import Column, Database
from repro.server import (
    NO_TIMEOUT,
    ArrayClient,
    AsyncArrayClient,
    QueryTimeoutError,
    ResultTooLargeError,
    ServerBusyError,
    ServerConfig,
    ServerError,
    ServerThread,
    protocol,
)
from repro.server.protocol import read_frame_sock, write_frame_sock
from repro.tsql import FloatArray

ROWS = 300


def make_db() -> Database:
    """The two Table 1 evaluation tables at test scale."""
    db = Database()
    tscalar = db.create_table(
        "Tscalar", [Column("id", "bigint")] +
        [Column(f"v{i}", "float") for i in range(1, 6)])
    tvector = db.create_table(
        "Tvector", [Column("id", "bigint"),
                    Column("v", "varbinary", cap=100)])
    rng = np.random.default_rng(0)
    values = rng.standard_normal((ROWS, 5))
    for i in range(ROWS):
        tscalar.insert((i, *values[i]))
        tvector.insert((i, FloatArray.Vector_5(*values[i])))
    db.expected_sum_v1 = float(values[:, 0].sum())
    db.expected_vector_7 = values[7]
    return db


@pytest.fixture(scope="module")
def server():
    with ServerThread(make_db()) as handle:
        yield handle


@pytest.fixture
def client(server):
    with ArrayClient("127.0.0.1", server.port) as c:
        yield c


class TestBasicConversation:
    def test_hello_carries_identity(self, server):
        with ArrayClient("127.0.0.1", server.port) as c:
            assert c.server_name == "repro-array-server"
            assert isinstance(c.session_id, int)

    def test_ping(self, client):
        client.ping()

    def test_scalar_query_with_metrics(self, client):
        result = client.query(
            "SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
        assert result.scalar() == ROWS
        m = result.metrics
        assert m["rows"] == ROWS
        assert m["physical_reads"] > 0
        assert m["sim_exec_seconds"] > 0
        assert result.metrics_obj().rows == ROWS

    def test_array_udf_query_returns_blob(self, client, server):
        """A Table 1-style UDF query whose result is an array blob."""
        blob = client.query(
            "SELECT MAX(v) FROM Tvector WHERE id = 7").scalar()
        assert isinstance(blob, bytes)
        assert FloatArray.Item_1(blob, 0) == pytest.approx(
            server.server.db.expected_vector_7[0])

    def test_query_array_decodes_to_numpy(self, client, server):
        arr = client.query_array("SELECT MAX(v) FROM Tvector "
                                 "WHERE id = 7")
        np.testing.assert_allclose(
            arr, server.server.db.expected_vector_7)

    def test_sql_error_keeps_connection(self, client):
        with pytest.raises(ServerError) as err:
            client.query("SELECT FROM nowhere")
        assert err.value.code == protocol.SQL_ERROR
        # Still usable afterwards.
        assert client.query("SELECT COUNT(*) FROM Tscalar "
                            "WITH (NOLOCK)").scalar() == ROWS

    def test_ddl_dml_round_trip(self, client):
        created = client.query(
            "CREATE TABLE Twire (id BIGINT PRIMARY KEY, x FLOAT)")
        assert created.kind == "ok"
        inserted = client.query(
            "INSERT INTO Twire VALUES (1, 1.5), (2, 2.5)")
        assert inserted.rowcount == 2
        total = client.query(
            "SELECT SUM(x) FROM Twire WITH (NOLOCK)").scalar()
        assert total == pytest.approx(4.0)
        deleted = client.query("DELETE FROM Twire WHERE x > 2.0")
        assert deleted.rowcount == 1

    def test_unknown_message_type_is_answered(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port))
        try:
            assert read_frame_sock(sock)[0]["type"] == "hello"
            write_frame_sock(sock, {"type": "bogus"})
            header, _ = read_frame_sock(sock)
            assert header["type"] == "error"
            assert header["code"] == protocol.BAD_FRAME
            # Connection survives an unknown type.
            write_frame_sock(sock, {"type": "ping"})
            assert read_frame_sock(sock)[0]["type"] == "pong"
        finally:
            sock.close()


class TestStats:
    def test_snapshot_shape(self, client):
        client.query("SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
        s = client.stats()
        assert s["queries_ok"] >= 1
        assert s["sessions_active"] >= 1
        assert s["latency_p50"] is not None
        assert s["latency_p95"] >= s["latency_p50"] * 0.0
        assert s["io_totals"]["physical_reads"] > 0
        assert s["pool_counters"]["physical_reads"] > 0
        assert s["pool_counters"]["physical_reads"] == \
            s["pool_counters"]["sequential_reads"] + \
            s["pool_counters"]["random_reads"]
        assert s["admission"]["max_workers"] == 4
        assert str(client.session_id) in s["per_session_queries"] or \
            client.session_id in s["per_session_queries"]

    def test_closed_sessions_pruned_from_per_session_map(self, server):
        """per_session_queries only tracks live sessions; closed ones
        fold into closed_session_queries so the map (and the stats
        frame) cannot grow without bound."""
        with ArrayClient("127.0.0.1", server.port) as c:
            c.query("SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
            closed_id = c.session_id
        with ArrayClient("127.0.0.1", server.port) as c2:
            # The close is processed asynchronously server-side.
            deadline = time.time() + 10
            while time.time() < deadline:
                s = c2.stats()
                ids = {int(k) for k in s["per_session_queries"]}
                if closed_id not in ids:
                    break
                time.sleep(0.05)
            assert closed_id not in ids
            assert s["closed_session_queries"] >= 1
            assert c2.session_id in ids


class TestConcurrentClients:
    def test_parallel_table1_queries(self, server):
        """Acceptance path: >= 2 concurrent clients issuing Table
        1-style queries (one returning an array blob) all get correct
        results and populated metrics."""
        expected_sum = server.server.db.expected_sum_v1
        errors = []
        outcomes = []

        def worker(n):
            try:
                with ArrayClient("127.0.0.1", server.port) as c:
                    for _ in range(5):
                        count = c.query(
                            "SELECT COUNT(*) FROM Tscalar "
                            "WITH (NOLOCK)")
                        total = c.query(
                            "SELECT SUM(v1) FROM Tscalar "
                            "WITH (NOLOCK)")
                        blob = c.query(
                            "SELECT MAX(v) FROM Tvector "
                            "WHERE id = 7").scalar()
                        outcomes.append(
                            (count.scalar(), total.scalar(), blob,
                             count.metrics["rows"]))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert len(outcomes) == 20
        for count, total, blob, mrows in outcomes:
            assert count == ROWS
            assert total == pytest.approx(expected_sum)
            assert isinstance(blob, bytes) and len(blob) > 0
            assert mrows == ROWS

    def test_async_clients_gather(self, server):
        async def one_client():
            client = await AsyncArrayClient.connect("127.0.0.1",
                                                    server.port)
            try:
                result = await client.query(
                    "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")
                return result.scalar()
            finally:
                await client.close()

        async def run():
            return await asyncio.gather(*[one_client()
                                          for _ in range(3)])

        assert asyncio.run(run()) == [ROWS, ROWS, ROWS]


class SlowServer:
    """A 1-worker, 0-queue server with a sleeping UDF for saturation
    and timeout tests."""

    def __init__(self):
        self.query_started = threading.Event()
        db = Database()
        t = db.create_table("Tone", [Column("id", "bigint"),
                                     Column("x", "float")])
        t.insert((1, 1.0))
        self.db = db

    def session_setup(self, session):
        def sleep_udf(seconds):
            self.query_started.set()
            time.sleep(float(seconds))
            return 0.0
        session.register_function("dbo.Sleep", sleep_udf,
                                  body_cost="empty")

    def config(self, **overrides):
        defaults = dict(max_workers=1, queue_limit=0,
                        query_timeout=30.0)
        defaults.update(overrides)
        return ServerConfig(**defaults)


@pytest.fixture
def slow():
    return SlowServer()


class TestAdmissionControl:
    SLEEP_SQL = "SELECT SUM(dbo.Sleep(0.6)) FROM Tone WITH (NOLOCK)"

    def test_server_busy_when_saturated(self, slow):
        """With one worker and no queue, a second concurrent query is
        rejected with SERVER_BUSY — and admission recovers after."""
        with ServerThread(slow.db, slow.config(),
                          session_setup=slow.session_setup) as handle:
            background = []

            def run_slow():
                with ArrayClient("127.0.0.1", handle.port) as c:
                    background.append(c.query(self.SLEEP_SQL))

            t = threading.Thread(target=run_slow)
            t.start()
            assert slow.query_started.wait(timeout=10)
            with ArrayClient("127.0.0.1", handle.port) as c2:
                with pytest.raises(ServerBusyError):
                    c2.query("SELECT COUNT(*) FROM Tone WITH (NOLOCK)")
                t.join(timeout=30)
                # Slot released: the same connection now succeeds.
                assert c2.query("SELECT COUNT(*) FROM Tone "
                                "WITH (NOLOCK)").scalar() == 1
                s = c2.stats()
            assert s["rejected_busy"] == 1
            assert s["admission"]["rejected_total"] == 1
            assert len(background) == 1
            assert background[0].scalar() == pytest.approx(0.0)

    def test_queue_admits_beyond_workers(self, slow):
        """queue_limit=1 lets a second query wait instead of bouncing."""
        with ServerThread(slow.db, slow.config(queue_limit=1),
                          session_setup=slow.session_setup) as handle:
            results = []

            def run_query():
                with ArrayClient("127.0.0.1", handle.port) as c:
                    results.append(c.query(self.SLEEP_SQL).scalar())

            threads = [threading.Thread(target=run_query)
                       for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert results == [pytest.approx(0.0)] * 2

    def test_null_timeout_on_wire_uses_server_default(self, slow):
        """A frame carrying ``"timeout": null`` (what a client whose
        parameter defaults to None used to send) must get the server's
        configured budget, not an infinite one."""
        with ServerThread(slow.db, slow.config(query_timeout=0.15),
                          session_setup=slow.session_setup) as handle:
            sock = socket.create_connection(("127.0.0.1", handle.port))
            try:
                assert read_frame_sock(sock)[0]["type"] == "hello"
                write_frame_sock(sock, {
                    "type": "query", "cold": True, "timeout": None,
                    "sql": self.SLEEP_SQL})
                header, _ = read_frame_sock(sock)
                assert header["type"] == "error"
                assert header["code"] == protocol.QUERY_TIMEOUT
            finally:
                sock.close()

    def test_client_default_timeout_is_server_default(self, slow):
        """Library clients that never mention a timeout still run
        under the server's query_timeout."""
        with ServerThread(slow.db, slow.config(query_timeout=0.15),
                          session_setup=slow.session_setup) as handle:
            with ArrayClient("127.0.0.1", handle.port) as c:
                with pytest.raises(QueryTimeoutError):
                    c.query(self.SLEEP_SQL)

    def test_no_timeout_sentinel_disables_budget(self, slow):
        """NO_TIMEOUT opts out of even a short server default."""
        with ServerThread(slow.db, slow.config(query_timeout=0.15),
                          session_setup=slow.session_setup) as handle:
            with ArrayClient("127.0.0.1", handle.port) as c:
                result = c.query(self.SLEEP_SQL, timeout=NO_TIMEOUT)
                assert result.scalar() == pytest.approx(0.0)

    def test_invalid_timeouts_rejected(self, slow):
        """Garbage timeout values are answered with BAD_FRAME and the
        connection survives."""
        with ServerThread(slow.db, slow.config(),
                          session_setup=slow.session_setup) as handle:
            with ArrayClient("127.0.0.1", handle.port) as c:
                for bad in (-1, 0, "soon", True, [1]):
                    with pytest.raises(ServerError) as err:
                        c.query("SELECT COUNT(*) FROM Tone "
                                "WITH (NOLOCK)", timeout=bad)
                    assert err.value.code == protocol.BAD_FRAME
                assert c.query("SELECT COUNT(*) FROM Tone "
                               "WITH (NOLOCK)").scalar() == 1

    def test_query_timeout(self, slow):
        with ServerThread(slow.db, slow.config(),
                          session_setup=slow.session_setup) as handle:
            with ArrayClient("127.0.0.1", handle.port) as c:
                with pytest.raises(QueryTimeoutError):
                    c.query(self.SLEEP_SQL, timeout=0.1)
                # The abandoned worker finishes in the background and
                # returns its admission slot.
                deadline = time.time() + 10
                while time.time() < deadline:
                    s = c.stats()
                    if s["admission"]["in_flight"] == 0:
                        break
                    time.sleep(0.05)
                assert s["admission"]["in_flight"] == 0
                assert s["timeouts"] == 1
                assert c.query("SELECT COUNT(*) FROM Tone "
                               "WITH (NOLOCK)").scalar() == 1


class TestFaultInjection:
    def test_malformed_frame_rejected_then_closed(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port))
        try:
            assert read_frame_sock(sock)[0]["type"] == "hello"
            # A frame whose header length points past its end.
            sock.sendall(struct.pack("!I", 8) + struct.pack("!I", 4096)
                         + b"{}xx")
            header, _ = read_frame_sock(sock)
            assert header["type"] == "error"
            assert header["code"] == protocol.BAD_FRAME
            assert read_frame_sock(sock) is None  # server hung up
        finally:
            sock.close()

    def test_oversized_frame_rejected(self, slow):
        config = slow.config(max_frame=1024)
        with ServerThread(slow.db, config,
                          session_setup=slow.session_setup) as handle:
            sock = socket.create_connection(("127.0.0.1", handle.port))
            try:
                assert read_frame_sock(sock)[0]["type"] == "hello"
                sock.sendall(struct.pack("!I", 1 << 20))
                header, _ = read_frame_sock(sock)
                assert header["code"] == protocol.BAD_FRAME
            finally:
                sock.close()

    def test_disconnect_mid_query_leaves_server_healthy(self, slow):
        """A client that vanishes while its query runs must not take
        the server (or its admission slot) with it."""
        with ServerThread(slow.db, slow.config(),
                          session_setup=slow.session_setup) as handle:
            sock = socket.create_connection(("127.0.0.1", handle.port))
            assert read_frame_sock(sock)[0]["type"] == "hello"
            write_frame_sock(sock, {
                "type": "query", "cold": True, "timeout": None,
                "sql": "SELECT SUM(dbo.Sleep(0.6)) FROM Tone "
                       "WITH (NOLOCK)"})
            assert slow.query_started.wait(timeout=10)
            sock.close()  # goodbye mid-flight

            # Server stays serviceable once the worker drains.
            deadline = time.time() + 15
            while time.time() < deadline:
                with ArrayClient("127.0.0.1", handle.port) as c:
                    if c.stats()["admission"]["in_flight"] == 0:
                        break
                time.sleep(0.05)
            with ArrayClient("127.0.0.1", handle.port) as c:
                assert c.query("SELECT COUNT(*) FROM Tone "
                               "WITH (NOLOCK)").scalar() == 1
                assert c.stats()["admission"]["in_flight"] == 0

    def test_disconnect_between_frames(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port))
        assert read_frame_sock(sock)[0]["type"] == "hello"
        sock.close()
        # The server must keep answering others.
        with ArrayClient("127.0.0.1", server.port) as c:
            c.ping()


class TestResultTooLarge:
    """Regression: the frame-size limit was read-side only, so a query
    whose result outgrew ``max_frame`` made the *client* kill the
    connection with a bare ProtocolError.  The server now refuses to
    send the frame and answers RESULT_TOO_LARGE instead."""

    @pytest.fixture
    def big_blob_server(self):
        db = Database()
        t = db.create_table(
            "Tbig", [Column("id", "bigint"),
                     Column("v", "varbinary", cap=8000)])
        t.insert((1, FloatArray.Vector([float(i) for i in range(900)])))
        with ServerThread(db, ServerConfig(max_frame=2048)) as handle:
            yield handle

    def test_oversized_result_answered_with_error(self, big_blob_server):
        with ArrayClient("127.0.0.1", big_blob_server.port) as c:
            with pytest.raises(ResultTooLargeError) as err:
                c.query("SELECT MAX(v) FROM Tbig WITH (NOLOCK)")
            assert err.value.code == protocol.RESULT_TOO_LARGE
            assert "max_frame" in err.value.message
            # Nothing of the oversized frame was sent: the connection
            # survives and keeps serving.
            c.ping()
            assert c.query("SELECT COUNT(*) FROM Tbig "
                           "WITH (NOLOCK)").scalar() == 1

    def test_small_results_unaffected_by_the_limit(self, big_blob_server):
        with ArrayClient("127.0.0.1", big_blob_server.port) as c:
            assert c.query("SELECT COUNT(*) FROM Tbig "
                           "WITH (NOLOCK)").scalar() == 1


class TestServerThreadCrashSurfaced:
    """Regression: a serving-loop crash after startup was stored in
    ``_startup_error`` and never read — the daemon thread died silently
    and ``stop()`` reported success."""

    def test_loop_death_mid_serve_raises_from_stop(self):
        handle = ServerThread(Database()).start()
        try:
            assert handle.port is not None
            # Kill the event loop out from under asyncio.run: the
            # serving coroutine is still pending, so the loop runner
            # raises and the thread dies mid-serve.
            handle._loop.call_soon_threadsafe(handle._loop.stop)
            handle._thread.join(timeout=10)
            assert not handle._thread.is_alive()
        finally:
            with pytest.raises(RuntimeError):
                handle.stop()

    def test_context_manager_surfaces_the_crash(self):
        with pytest.raises(RuntimeError):
            with ServerThread(Database()) as handle:
                handle._loop.call_soon_threadsafe(handle._loop.stop)
                handle._thread.join(timeout=10)

    def test_clean_stop_raises_nothing(self):
        handle = ServerThread(Database()).start()
        handle.stop()


class TestEngineToggle:
    """Served queries run on the vectorized engine by default; the
    per-query ``engine`` frame key toggles the row path end to end."""

    SQL = "SELECT SUM(FloatArray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)"

    def test_default_path_is_vectorized(self, client):
        result = client.query(self.SQL)
        assert result.metrics["engine"] == "vector"
        assert result.metrics["udf_calls"] == ROWS

    def test_row_toggle_round_trips(self, client):
        vec = client.query(self.SQL, engine="vector")
        row = client.query(self.SQL, engine="row")
        assert row.metrics["engine"] == "row"
        assert vec.metrics["engine"] == "vector"
        # Bit-identical values and identical IO accounting.
        assert struct.pack("<d", row.scalar()) == \
            struct.pack("<d", vec.scalar())
        for key in ("rows", "io_bytes", "physical_reads",
                    "sequential_reads", "random_reads", "stream_calls",
                    "udf_calls"):
            assert row.metrics[key] == vec.metrics[key], key

    def test_bad_engine_value_is_a_bad_frame(self, client):
        with pytest.raises(ServerError) as caught:
            client.query(self.SQL, engine="columnar")
        assert caught.value.code == protocol.BAD_FRAME
        client.ping()  # connection survives

    def test_stats_count_queries_per_engine(self, client):
        before = client.stats()["engine_queries"]
        client.query(self.SQL)
        client.query(self.SQL, engine="row")
        after = client.stats()["engine_queries"]
        assert after.get("vector", 0) - before.get("vector", 0) >= 1
        assert after.get("row", 0) - before.get("row", 0) == 1

    def test_async_client_engine_param(self, server):
        async def go():
            client = await AsyncArrayClient.connect(
                "127.0.0.1", server.port)
            try:
                row = await client.query(self.SQL, engine="row")
                vec = await client.query(self.SQL)
                return row.metrics["engine"], vec.metrics["engine"]
            finally:
                await client.close()
        assert asyncio.run(go()) == ("row", "vector")
